#include "store/lsm/sst.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "compress/crc32.h"
#include "fault/fault.h"
#include "store/fs_util.h"
#include "store/lsm/bloom.h"

namespace dstore {
namespace lsm {

// --- SstWriter --------------------------------------------------------------

SstWriter::SstWriter(std::filesystem::path dir, uint64_t number,
                     SstOptions options)
    : dir_(std::move(dir)), number_(number), options_(options) {}

void SstWriter::Add(const std::string& key, uint64_t seq, EntryType type,
                    const ValuePtr& value) {
  // Cut the current block once it is full, but never between two entries of
  // the same user key — a point lookup reads exactly one block.
  if (!block_.empty() && block_.size() >= options_.block_bytes &&
      key != block_last_key_) {
    FinishBlock();
  }
  if (num_entries_ == 0) smallest_ = key;
  largest_ = key;
  if (block_.empty() || key != block_last_key_) {
    key_hashes_.push_back(BloomFilter::HashKey(key));
  }
  PutLengthPrefixed(&block_, key);
  PutVarint64(&block_, (seq << 1) | static_cast<uint64_t>(type));
  if (value != nullptr) {
    PutLengthPrefixed(&block_, *value);
  } else {
    PutLengthPrefixed(&block_, Bytes{});
  }
  block_last_key_ = key;
  ++num_entries_;
  max_seq_ = std::max(max_seq_, seq);
}

void SstWriter::FinishBlock() {
  if (block_.empty()) return;
  PendingIndex entry;
  entry.last_key = block_last_key_;
  entry.offset = file_.size();
  entry.length = static_cast<uint32_t>(block_.size());
  entry.crc = Crc32(block_);
  index_.push_back(std::move(entry));
  file_.insert(file_.end(), block_.begin(), block_.end());
  block_.clear();
}

StatusOr<SstProperties> SstWriter::Finish() {
  FinishBlock();

  Bytes index_block;
  PutLengthPrefixed(&index_block, smallest_);
  for (const auto& entry : index_) {
    PutLengthPrefixed(&index_block, entry.last_key);
    PutFixed64(&index_block, entry.offset);
    PutFixed32(&index_block, entry.length);
    PutFixed32(&index_block, entry.crc);
  }
  const Bytes filter =
      BloomFilter::Build(key_hashes_, options_.bloom_bits_per_key);

  const uint64_t index_off = file_.size();
  file_.insert(file_.end(), index_block.begin(), index_block.end());
  const uint64_t filter_off = file_.size();
  file_.insert(file_.end(), filter.begin(), filter.end());

  Bytes footer;
  PutFixed64(&footer, index_off);
  PutFixed32(&footer, static_cast<uint32_t>(index_block.size()));
  PutFixed32(&footer, Crc32(index_block));
  PutFixed64(&footer, filter_off);
  PutFixed32(&footer, static_cast<uint32_t>(filter.size()));
  PutFixed32(&footer, Crc32(filter));
  PutFixed64(&footer, num_entries_);
  PutFixed64(&footer, max_seq_);
  PutFixed64(&footer, kSstMagic);
  PutFixed32(&footer, Crc32(footer));
  file_.insert(file_.end(), footer.begin(), footer.end());

  const std::filesystem::path temp = dir_ / TempFileName(number_);
  const std::filesystem::path final_path = dir_ / SstFileName(number_);
  const bool torn = fault::CrashPointFires("lsm.sst.torn_write");
  const size_t limit = torn ? file_.size() / 2 : file_.size();
  DSTORE_RETURN_IF_ERROR(WriteFileDurably(temp, file_, limit));
  if (torn) return fault::CrashedStatus("lsm.sst.torn_write");
  if (fault::CrashPointFires("lsm.sst.before_rename")) {
    // Fully written temp file, never published; open-time cleanup removes it.
    return fault::CrashedStatus("lsm.sst.before_rename");
  }
  std::error_code ec;
  std::filesystem::rename(temp, final_path, ec);
  if (ec) {
    return Status::IOError("rename " + temp.string() + ": " + ec.message());
  }
  DSTORE_RETURN_IF_ERROR(SyncDir(dir_));

  SstProperties props;
  props.number = number_;
  props.file_size = file_.size();
  props.entries = num_entries_;
  props.max_seq = max_seq_;
  props.smallest = smallest_;
  props.largest = largest_;
  return props;
}

// --- Block decoding ---------------------------------------------------------

StatusOr<std::vector<SstEntry>> ParseDataBlock(const Bytes& block) {
  std::vector<SstEntry> entries;
  size_t pos = 0;
  while (pos < block.size()) {
    SstEntry entry;
    DSTORE_ASSIGN_OR_RETURN(Bytes key, GetLengthPrefixed(block, &pos));
    entry.key.assign(key.begin(), key.end());
    DSTORE_ASSIGN_OR_RETURN(const uint64_t packed, GetVarint64(block, &pos));
    entry.seq = packed >> 1;
    entry.type = (packed & 1) ? EntryType::kDelete : EntryType::kPut;
    DSTORE_ASSIGN_OR_RETURN(Bytes value, GetLengthPrefixed(block, &pos));
    if (entry.type == EntryType::kPut) {
      entry.value = MakeValue(std::move(value));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

// --- SstReader --------------------------------------------------------------

StatusOr<std::shared_ptr<SstReader>> SstReader::Open(
    const std::filesystem::path& dir, uint64_t number,
    std::shared_ptr<Cache> block_cache) {
  const std::filesystem::path path = dir / SstFileName(number);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("open sst " + path.string());
  std::shared_ptr<SstReader> reader(
      new SstReader(fd, number, std::move(block_cache)));

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IOError("stat sst " + path.string());
  }
  reader->file_size_ = static_cast<uint64_t>(st.st_size);
  if (reader->file_size_ < kSstFooterSize) {
    return Status::Corruption("sst too small: " + path.string());
  }

  Bytes footer(kSstFooterSize);
  const ssize_t n =
      ::pread(fd, footer.data(), kSstFooterSize,
              static_cast<off_t>(reader->file_size_ - kSstFooterSize));
  if (n != static_cast<ssize_t>(kSstFooterSize)) {
    return Status::IOError("read sst footer " + path.string());
  }
  const uint32_t footer_crc = DecodeFixed32(footer.data() + 56);
  Bytes footer_body(footer.begin(), footer.begin() + 56);
  if (Crc32(footer_body) != footer_crc) {
    return Status::Corruption("sst footer CRC mismatch: " + path.string());
  }
  if (DecodeFixed64(footer.data() + 48) != kSstMagic) {
    return Status::Corruption("sst bad magic: " + path.string());
  }
  const uint64_t index_off = DecodeFixed64(footer.data());
  const uint32_t index_len = DecodeFixed32(footer.data() + 8);
  const uint32_t index_crc = DecodeFixed32(footer.data() + 12);
  const uint64_t filter_off = DecodeFixed64(footer.data() + 16);
  const uint32_t filter_len = DecodeFixed32(footer.data() + 24);
  const uint32_t filter_crc = DecodeFixed32(footer.data() + 28);
  reader->entries_ = DecodeFixed64(footer.data() + 32);
  reader->max_seq_ = DecodeFixed64(footer.data() + 40);

  DSTORE_ASSIGN_OR_RETURN(Bytes index_block,
                          reader->ReadRegion(index_off, index_len, index_crc));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(Bytes smallest, GetLengthPrefixed(index_block, &pos));
  reader->smallest_.assign(smallest.begin(), smallest.end());
  while (pos < index_block.size()) {
    BlockHandle handle;
    DSTORE_ASSIGN_OR_RETURN(Bytes last_key,
                            GetLengthPrefixed(index_block, &pos));
    handle.last_key.assign(last_key.begin(), last_key.end());
    if (pos + 16 > index_block.size()) {
      return Status::Corruption("sst index truncated: " + path.string());
    }
    handle.offset = DecodeFixed64(index_block.data() + pos);
    handle.length = DecodeFixed32(index_block.data() + pos + 8);
    handle.crc = DecodeFixed32(index_block.data() + pos + 12);
    pos += 16;
    reader->index_.push_back(std::move(handle));
  }
  if (!reader->index_.empty()) {
    reader->largest_ = reader->index_.back().last_key;
  }

  DSTORE_ASSIGN_OR_RETURN(
      reader->filter_, reader->ReadRegion(filter_off, filter_len, filter_crc));
  return reader;
}

SstReader::~SstReader() { ::close(fd_); }

StatusOr<Bytes> SstReader::ReadRegion(uint64_t offset, uint32_t length,
                                      uint32_t expected_crc) const {
  if (offset + length > file_size_) {
    return Status::Corruption("sst region out of bounds");
  }
  Bytes region(length);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd_, region.data() + done, length - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread sst");
    }
    if (n == 0) return Status::Corruption("sst short read");
    done += static_cast<size_t>(n);
  }
  if (Crc32(region) != expected_crc) {
    return Status::Corruption("sst block CRC mismatch");
  }
  return region;
}

StatusOr<ValuePtr> SstReader::ReadRawBlock(size_t index) const {
  const BlockHandle& handle = index_[index];
  std::string cache_key;
  if (block_cache_ != nullptr) {
    cache_key = std::to_string(number_) + ":" + std::to_string(index);
    StatusOr<ValuePtr> hit = block_cache_->Get(cache_key);
    if (hit.ok()) return std::move(hit).value();
  }
  DSTORE_ASSIGN_OR_RETURN(
      Bytes block, ReadRegion(handle.offset, handle.length, handle.crc));
  ValuePtr cached = MakeValue(std::move(block));
  if (block_cache_ != nullptr) {
    (void)block_cache_->Put(cache_key, cached);
  }
  return cached;
}

StatusOr<std::vector<SstEntry>> SstReader::ReadBlock(size_t index) const {
  DSTORE_ASSIGN_OR_RETURN(const ValuePtr block, ReadRawBlock(index));
  return ParseDataBlock(*block);
}

StatusOr<SstReader::LookupResult> SstReader::Get(const std::string& key,
                                                 uint64_t snapshot) const {
  LookupResult result;
  if (!BloomFilter::MayContain(filter_, BloomFilter::HashKey(key))) {
    result.kind = LookupResult::Kind::kBloomNegative;
    return result;
  }
  // First block whose last key is >= key is the only one that can hold it.
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const BlockHandle& h, const std::string& k) { return h.last_key < k; });
  if (it == index_.end()) return result;  // kNotFound
  DSTORE_ASSIGN_OR_RETURN(
      const ValuePtr raw, ReadRawBlock(static_cast<size_t>(it - index_.begin())));
  // Scan the block in place — entries are in internal-key order (seq
  // descending within a key), so the first entry matching `key` at or below
  // the snapshot is the visible version. Nothing is materialized until a
  // match: non-matching keys and values are skipped as raw slices.
  const Bytes& block = *raw;
  const std::string_view target(key);
  size_t pos = 0;
  while (pos < block.size()) {
    DSTORE_ASSIGN_OR_RETURN(const uint64_t key_len, GetVarint64(block, &pos));
    if (pos + key_len > block.size()) {
      return Status::Corruption("sst entry key truncated");
    }
    const std::string_view entry_key(
        reinterpret_cast<const char*>(block.data() + pos),
        static_cast<size_t>(key_len));
    pos += key_len;
    DSTORE_ASSIGN_OR_RETURN(const uint64_t packed, GetVarint64(block, &pos));
    DSTORE_ASSIGN_OR_RETURN(const uint64_t value_len, GetVarint64(block, &pos));
    if (pos + value_len > block.size()) {
      return Status::Corruption("sst entry value truncated");
    }
    const size_t value_pos = pos;
    pos += value_len;
    if (entry_key < target) continue;
    if (entry_key > target) break;
    if ((packed >> 1) > snapshot) continue;
    result.kind = LookupResult::Kind::kFound;
    result.type = (packed & 1) ? EntryType::kDelete : EntryType::kPut;
    result.seq = packed >> 1;
    if (result.type == EntryType::kPut) {
      result.value = MakeValue(
          Bytes(block.begin() + static_cast<ptrdiff_t>(value_pos),
                block.begin() + static_cast<ptrdiff_t>(value_pos + value_len)));
    }
    return result;
  }
  return result;  // kNotFound
}

// --- SstIterator ------------------------------------------------------------

SstIterator::SstIterator(const SstReader* reader) : reader_(reader) {
  LoadBlock(0);
}

void SstIterator::LoadBlock(size_t block) {
  entries_.clear();
  pos_ = 0;
  block_ = block;
  while (block_ < reader_->index_.size()) {
    StatusOr<std::vector<SstEntry>> loaded = reader_->ReadBlock(block_);
    if (!loaded.ok()) {
      status_ = loaded.status();
      return;
    }
    if (!loaded.value().empty()) {
      entries_ = std::move(loaded).value();
      return;
    }
    ++block_;  // defensive: skip empty blocks
  }
}

void SstIterator::Next() {
  if (++pos_ < entries_.size()) return;
  LoadBlock(block_ + 1);
}

}  // namespace lsm
}  // namespace dstore
