#ifndef DSTORE_STORE_LSM_VERSION_H_
#define DSTORE_STORE_LSM_VERSION_H_

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/lsm/sst.h"

namespace dstore {
namespace lsm {

// The LSM's view of "which SSTs exist at which level" — an immutable value
// object. Flush and compaction build a *new* Version (copy-on-edit) and swap
// the store's shared_ptr; readers that pinned the old one keep a fully
// consistent tree (the shared_ptr in each FileMeta keeps obsolete readers
// open until the last pinned Version drops them).
//
// The MANIFEST file persists the current version plus the file-number and
// sequence counters. It is small, so instead of a log of incremental edits
// (LevelDB-style) we atomically rewrite the whole snapshot on every edit:
// temp write -> fsync -> rename over MANIFEST -> directory fsync. Either the
// old or the new version is on disk, never a mix.
//
// Crash points: lsm.manifest.torn_write, lsm.manifest.before_rename,
// lsm.manifest.after_rename.

inline constexpr int kNumLevels = 7;

// One SST, as referenced by a Version and by the manifest.
struct FileMeta {
  uint64_t number = 0;
  uint64_t size = 0;
  uint64_t entries = 0;
  uint64_t max_seq = 0;
  std::string smallest;
  std::string largest;
  // Open read handle; not serialized. Populated by LsmStore for files in
  // live versions.
  std::shared_ptr<SstReader> reader;

  bool OverlapsRange(const std::string& lo, const std::string& hi) const {
    return !(largest < lo || hi < smallest);
  }
  bool ContainsKey(const std::string& key) const {
    return smallest <= key && key <= largest;
  }
};

struct Version {
  // levels[0]: overlap-tolerant, sorted by file number ascending (oldest
  // first) — readers must scan newest-first. levels[1..]: key-disjoint,
  // sorted by smallest key.
  std::vector<std::vector<FileMeta>> levels{kNumLevels};

  uint64_t LevelBytes(int level) const;
  size_t TotalFiles() const;

  // Files in `level` whose key range intersects [lo, hi].
  std::vector<const FileMeta*> Overlapping(int level, const std::string& lo,
                                           const std::string& hi) const;

  // The single file in a key-disjoint level (1+) that can contain `key`,
  // or null. Binary search on the sorted level.
  const FileMeta* FindFile(int level, const std::string& key) const;

  // True when no level deeper than `level` has a file whose range covers
  // `key` — the compaction output is then the bottom level for that key and
  // its tombstones can be dropped instead of rewritten.
  bool IsBaseLevelForKey(int level, const std::string& key) const;
};

// What the MANIFEST persists. FileMeta::reader is left null by LoadManifest;
// LsmStore opens the readers afterwards.
struct ManifestState {
  uint64_t next_file_number = 1;
  uint64_t last_sequence = 0;
  // WAL segments numbered below this are fully represented by SSTs and are
  // deleted at open.
  uint64_t wal_floor = 0;
  std::vector<std::vector<FileMeta>> levels{kNumLevels};
};

// Atomically replaces the MANIFEST with `state`.
Status SaveManifest(const std::filesystem::path& dir,
                    const ManifestState& state);

// Loads the MANIFEST; a missing file yields the defaults (fresh store).
StatusOr<ManifestState> LoadManifest(const std::filesystem::path& dir);

}  // namespace lsm
}  // namespace dstore

#endif  // DSTORE_STORE_LSM_VERSION_H_
