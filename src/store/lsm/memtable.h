#ifndef DSTORE_STORE_LSM_MEMTABLE_H_
#define DSTORE_STORE_LSM_MEMTABLE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/sync.h"
#include "store/lsm/format.h"

namespace dstore {
namespace lsm {

// The in-memory write buffer: a sorted multi-version map in internal-key
// order (user key ascending, sequence descending). Every mutation lands
// here right after its WAL append; once the table reaches the configured
// size it is frozen (becomes the immutable memtable) and flushed to an L0
// SST by the background thread.
//
// Thread-safe: writers are serialized by LsmStore's lock, but readers pin a
// shared_ptr to the table and read *outside* that lock while new entries
// are still being inserted, so lookups take a reader lock internally.
// Multi-versioning is what makes snapshot reads work before a flush: an
// overwrite inserts a second entry under a higher sequence instead of
// replacing the first.
class MemTable {
 public:
  struct Entry {
    EntryType type = EntryType::kPut;
    ValuePtr value;  // null for tombstones
  };

  struct GetResult {
    bool found = false;  // an entry (put or tombstone) <= snapshot exists
    Entry entry;
  };

  MemTable() = default;
  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(uint64_t seq, EntryType type, const std::string& key,
           ValuePtr value);

  // The newest entry for `key` with sequence <= snapshot, if any.
  GetResult Get(const std::string& key, uint64_t snapshot) const;

  // Visits every entry in internal-key order (flush, merged listings).
  void ForEach(const std::function<void(const std::string& key, uint64_t seq,
                                        const Entry& entry)>& fn) const;

  size_t entries() const;

  // Keys + values + per-entry overhead; drives the flush trigger. Lock-free
  // so the write path can consult it cheaply.
  size_t ApproximateBytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct InternalKey {
    std::string user;
    uint64_t seq;

    bool operator<(const InternalKey& other) const {
      return InternalKeyBefore(user, seq, other.user, other.seq);
    }
  };

  mutable SharedMutex mu_;
  std::map<InternalKey, Entry> map_ GUARDED_BY(mu_);
  std::atomic<size_t> bytes_{0};
};

}  // namespace lsm
}  // namespace dstore

#endif  // DSTORE_STORE_LSM_MEMTABLE_H_
