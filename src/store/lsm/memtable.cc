#include "store/lsm/memtable.h"

namespace dstore {
namespace lsm {

namespace {
// Rough per-entry bookkeeping cost (map node, key object, shared_ptr).
constexpr size_t kEntryOverhead = 64;
}  // namespace

void MemTable::Add(uint64_t seq, EntryType type, const std::string& key,
                   ValuePtr value) {
  const size_t added =
      key.size() + (value ? value->size() : 0) + kEntryOverhead;
  WriterLock lock(mu_);
  map_[InternalKey{key, seq}] = Entry{type, std::move(value)};
  bytes_.fetch_add(added, std::memory_order_relaxed);
}

MemTable::GetResult MemTable::Get(const std::string& key,
                                  uint64_t snapshot) const {
  ReaderLock lock(mu_);
  // Internal order puts higher sequences first, so lower_bound on
  // (key, snapshot) lands on the newest entry with seq <= snapshot.
  auto it = map_.lower_bound(InternalKey{key, snapshot});
  if (it == map_.end() || it->first.user != key) return {};
  return {true, it->second};
}

void MemTable::ForEach(
    const std::function<void(const std::string& key, uint64_t seq,
                             const Entry& entry)>& fn) const {
  ReaderLock lock(mu_);
  for (const auto& [ikey, entry] : map_) {
    fn(ikey.user, ikey.seq, entry);
  }
}

size_t MemTable::entries() const {
  ReaderLock lock(mu_);
  return map_.size();
}

}  // namespace lsm
}  // namespace dstore
