#ifndef DSTORE_STORE_LSM_FORMAT_H_
#define DSTORE_STORE_LSM_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace dstore {
namespace lsm {

// Shared on-disk vocabulary of the LSM engine (store/lsm/): internal keys,
// file naming, and the record framing used by both the write-ahead log and
// the manifest.
//
// Every stored mutation is an *entry*: (user key, sequence number, type,
// value). Sequence numbers are assigned by LsmStore in write order and are
// what make snapshots work — a reader at snapshot S sees, for each user
// key, the entry with the largest sequence <= S. Entries are ordered by
// (user key ascending, sequence DESCENDING), so the first entry at or below
// a snapshot is the visible one.

// Entry type. Deletions are real entries (tombstones) so they can shadow
// older puts in lower levels until compaction reaches the bottom.
enum class EntryType : uint8_t {
  kPut = 0,
  kDelete = 1,
};

// A sequence number that compares above every assignable one.
inline constexpr uint64_t kMaxSequence = ~0ull;

// Orders (a_key, a_seq) before (b_key, b_seq) in internal-key order:
// user key ascending, sequence descending.
inline bool InternalKeyBefore(const std::string& a_key, uint64_t a_seq,
                              const std::string& b_key, uint64_t b_seq) {
  if (a_key != b_key) return a_key < b_key;
  return a_seq > b_seq;
}

// --- File naming ------------------------------------------------------------
//
// Every file in an LSM directory carries a monotonically increasing file
// number drawn from the manifest's next_file_number:
//   <number>.wal   write-ahead log segment
//   <number>.sst   immutable sorted table
//   MANIFEST       current version (atomically rewritten)
//   *.tmp          in-flight writes, removed at open

std::string WalFileName(uint64_t number);
std::string SstFileName(uint64_t number);
std::string TempFileName(uint64_t number);
inline constexpr char kManifestName[] = "MANIFEST";

// Parses "<number>.wal" / "<number>.sst". Returns false for foreign files.
bool ParseWalFileName(const std::string& name, uint64_t* number);
bool ParseSstFileName(const std::string& name, uint64_t* number);
bool IsTempFileName(const std::string& name);

// --- Record framing ---------------------------------------------------------
//
// WAL segments and the manifest are sequences of CRC-framed records:
//   [fixed32 payload_len][fixed32 crc32(payload)][payload]
// A torn tail (short header, short payload, or CRC mismatch) marks the end
// of the valid prefix; readers stop there and report how many bytes were
// good so the writer can truncate the tear away.

// Appends one framed record to `dst`.
void AppendFramedRecord(Bytes* dst, const Bytes& payload);

// Reads the framed record starting at *pos; advances *pos past it. Returns
// Corruption on a torn or corrupt record (with *pos unchanged).
StatusOr<Bytes> ReadFramedRecord(const Bytes& src, size_t* pos);

}  // namespace lsm
}  // namespace dstore

#endif  // DSTORE_STORE_LSM_FORMAT_H_
