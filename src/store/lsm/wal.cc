#include "store/lsm/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include "fault/fault.h"
#include "store/fs_util.h"

namespace dstore {
namespace lsm {

Bytes EncodeWalBatch(uint64_t first_seq,
                     const std::vector<BatchEntry>& batch) {
  Bytes out;
  PutVarint64(&out, first_seq);
  PutVarint64(&out, batch.size());
  for (const auto& entry : batch) {
    out.push_back(static_cast<uint8_t>(entry.type));
    PutLengthPrefixed(&out, entry.key);
    if (entry.value != nullptr) {
      PutLengthPrefixed(&out, *entry.value);
    } else {
      PutLengthPrefixed(&out, Bytes{});
    }
  }
  return out;
}

StatusOr<DecodedBatch> DecodeWalBatch(const Bytes& payload) {
  DecodedBatch batch;
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(batch.first_seq, GetVarint64(payload, &pos));
  DSTORE_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(payload, &pos));
  batch.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (pos >= payload.size()) {
      return Status::Corruption("wal batch truncated");
    }
    BatchEntry entry;
    const uint8_t type = payload[pos++];
    if (type > static_cast<uint8_t>(EntryType::kDelete)) {
      return Status::Corruption("wal batch: bad entry type");
    }
    entry.type = static_cast<EntryType>(type);
    DSTORE_ASSIGN_OR_RETURN(Bytes key, GetLengthPrefixed(payload, &pos));
    entry.key.assign(key.begin(), key.end());
    DSTORE_ASSIGN_OR_RETURN(Bytes value, GetLengthPrefixed(payload, &pos));
    if (entry.type == EntryType::kPut) {
      entry.value = MakeValue(std::move(value));
    }
    batch.entries.push_back(std::move(entry));
  }
  return batch;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(
    const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("create wal segment " + path.string());
  }
  // The directory entry must survive a crash too, or a synced segment could
  // simply not exist after power loss.
  const Status dir_status = SyncDir(path.parent_path());
  if (!dir_status.ok()) {
    ::close(fd);
    return dir_status;
  }
  return std::unique_ptr<WalWriter>(new WalWriter(path.string(), fd));
}

WalWriter::~WalWriter() { ::close(fd_); }

StatusOr<uint64_t> WalWriter::Append(const Bytes& payload) {
  MutexLock lock(mu_);
  if (fault::CrashPointFires("lsm.wal.before_append")) {
    return fault::CrashedStatus("lsm.wal.before_append");
  }
  Bytes record;
  AppendFramedRecord(&record, payload);
  const bool torn = fault::CrashPointFires("lsm.wal.torn_append");
  const size_t to_write = torn ? record.size() / 2 : record.size();
  size_t written = 0;
  Status status;
  while (written < to_write) {
    const ssize_t n =
        ::write(fd_, record.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = Status::IOError("append to wal segment " + path_);
      break;
    }
    written += static_cast<size_t>(n);
  }
  // Whatever hit the fd is on disk even if we error out: keep bytes_ honest
  // so later appends land at the real tail.
  bytes_ += written;
  DSTORE_RETURN_IF_ERROR(status);
  if (torn) return fault::CrashedStatus("lsm.wal.torn_append");
  return bytes_;
}

Status WalWriter::Sync(uint64_t offset) {
  sync_internal::CheckBlocking("WalWriter::Sync");
  mu_.Lock();
  for (;;) {
    if (synced_ >= offset) {
      mu_.Unlock();
      return Status::OK();
    }
    if (!syncing_) break;  // become the group-commit leader
    cv_.Wait(mu_);
  }
  syncing_ = true;
  const uint64_t target = bytes_;
  if (fault::CrashPointFires("lsm.wal.before_fsync")) {
    // A crash before fsync loses whatever only the page cache held. Model
    // that by cutting the file back to the durable watermark.
    ::ftruncate(fd_, static_cast<off_t>(synced_));
    ::lseek(fd_, static_cast<off_t>(synced_), SEEK_SET);
    bytes_ = synced_;
    syncing_ = false;
    cv_.NotifyAll();
    mu_.Unlock();
    return fault::CrashedStatus("lsm.wal.before_fsync");
  }
  mu_.Unlock();
  const bool fsync_ok = ::fsync(fd_) == 0;
  mu_.Lock();
  syncing_ = false;
  if (fsync_ok && target > synced_) synced_ = target;
  const bool covered = synced_ >= offset;
  cv_.NotifyAll();
  mu_.Unlock();
  if (!fsync_ok) return Status::IOError("fsync wal segment " + path_);
  if (fault::CrashPointFires("lsm.wal.after_fsync")) {
    return fault::CrashedStatus("lsm.wal.after_fsync");
  }
  // The fsync covered everything appended when we took leadership, which
  // includes our own record; re-enter only in the (unexpected) case it
  // somehow did not.
  return covered ? Status::OK() : Sync(offset);
}

uint64_t WalWriter::bytes() {
  MutexLock lock(mu_);
  return bytes_;
}

StatusOr<std::vector<Bytes>> ReadWalRecords(const std::filesystem::path& path,
                                            bool truncate_torn_tail) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open wal segment " + path.string());
  }
  Bytes contents;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read wal segment " + path.string());
    }
    if (n == 0) break;
    contents.insert(contents.end(), buf, buf + n);
  }
  ::close(fd);

  std::vector<Bytes> records;
  size_t pos = 0;
  while (pos < contents.size()) {
    StatusOr<Bytes> record = ReadFramedRecord(contents, &pos);
    // A torn or corrupt record ends the valid prefix; everything before it
    // was individually CRC-checked and is kept.
    if (!record.ok()) break;
    records.push_back(std::move(record).value());
  }
  if (truncate_torn_tail && pos < contents.size()) {
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return Status::IOError("truncate torn wal tail " + path.string());
    }
  }
  return records;
}

}  // namespace lsm
}  // namespace dstore
