#ifndef DSTORE_STORE_LSM_SST_H_
#define DSTORE_STORE_LSM_SST_H_

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/bytes.h"
#include "common/status.h"
#include "store/lsm/format.h"

namespace dstore {
namespace lsm {

// Immutable sorted table ("SST") files. Each file holds entries in
// internal-key order, split into ~block_bytes data blocks, followed by an
// index block (one entry per data block), a Bloom filter over user keys,
// and a fixed-size footer. Every region carries its own CRC32 so a flipped
// bit is detected at read time rather than silently served.
//
// File layout:
//   data block 0 .. data block N-1
//   index block:  lp smallest_key, then per block
//                 [lp last_key][fixed64 offset][fixed32 len][fixed32 crc]
//   filter block: BloomFilter bytes (see bloom.h)
//   footer:       fixed64 index_off,  fixed32 index_len,  fixed32 index_crc,
//                 fixed64 filter_off, fixed32 filter_len, fixed32 filter_crc,
//                 fixed64 entries, fixed64 max_seq,
//                 fixed64 magic, fixed32 footer_crc
//
// Data block entry: [lp user_key][varint (seq << 1 | type)][lp value]
// (value empty for tombstones). A user key never straddles a block
// boundary, so a point lookup touches exactly one data block.
//
// Files are written to <number>.tmp, fsynced, renamed to <number>.sst, and
// the directory is fsynced — only then may the manifest reference them.
// Crash points: lsm.sst.torn_write, lsm.sst.before_rename.

inline constexpr uint64_t kSstMagic = 0x4c534d5f53535400ull;  // "LSM_SST\0"
inline constexpr size_t kSstFooterSize = 60;

// One decoded entry, as seen by iterators.
struct SstEntry {
  std::string key;
  uint64_t seq = 0;
  EntryType type = EntryType::kPut;
  ValuePtr value;  // null for tombstones
};

// What Finish() reports about the file it produced; feeds FileMeta.
struct SstProperties {
  uint64_t number = 0;
  uint64_t file_size = 0;
  uint64_t entries = 0;
  uint64_t max_seq = 0;
  std::string smallest;
  std::string largest;
};

struct SstOptions {
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;
};

// Builds one SST. Add() must be called in strict internal-key order (the
// flush and compaction paths both naturally produce it).
class SstWriter {
 public:
  SstWriter(std::filesystem::path dir, uint64_t number, SstOptions options);

  void Add(const std::string& key, uint64_t seq, EntryType type,
           const ValuePtr& value);

  size_t entries() const { return num_entries_; }

  // Bytes buffered so far; drives compaction's output-file rolling.
  size_t ApproximateBytes() const { return file_.size() + block_.size(); }

  // Assembles index/filter/footer and atomically publishes the file
  // (temp write -> fsync -> rename -> directory fsync).
  StatusOr<SstProperties> Finish();

 private:
  void FinishBlock();

  const std::filesystem::path dir_;
  const uint64_t number_;
  const SstOptions options_;

  struct PendingIndex {
    std::string last_key;
    uint64_t offset = 0;
    uint32_t length = 0;
    uint32_t crc = 0;
  };

  Bytes file_;   // completed data blocks
  Bytes block_;  // block under construction
  std::string block_last_key_;
  std::vector<PendingIndex> index_;
  std::vector<uint64_t> key_hashes_;
  uint64_t num_entries_ = 0;
  uint64_t max_seq_ = 0;
  std::string smallest_;
  std::string largest_;
};

// Read handle for one SST: loads footer, index, and filter eagerly, then
// serves Get() via positioned reads (pread) — stateless per call, so a
// single reader is shared by any number of threads without locking.
//
// When opened with a block cache, data blocks land in it keyed by
// "<file>:<block>" after their CRC passes once; cache hits skip both the
// pread and the re-verification. File numbers are never reused across a
// store's lifetime, so a stale cache entry cannot alias a new file.
class SstReader {
 public:
  struct LookupResult {
    enum class Kind {
      kBloomNegative,  // filter proved the key absent; no blocks read
      kNotFound,       // blocks consulted, no visible entry
      kFound,          // entry (put or tombstone) located
    };
    Kind kind = Kind::kNotFound;
    EntryType type = EntryType::kPut;
    uint64_t seq = 0;
    ValuePtr value;
  };

  static StatusOr<std::shared_ptr<SstReader>> Open(
      const std::filesystem::path& dir, uint64_t number,
      std::shared_ptr<Cache> block_cache = nullptr);

  ~SstReader();
  SstReader(const SstReader&) = delete;
  SstReader& operator=(const SstReader&) = delete;

  // Newest entry for `key` with seq <= snapshot. Callers are expected to
  // range-check against [smallest, largest] first (FileMeta carries both).
  StatusOr<LookupResult> Get(const std::string& key, uint64_t snapshot) const;

  uint64_t number() const { return number_; }
  uint64_t file_size() const { return file_size_; }
  uint64_t entries() const { return entries_; }
  uint64_t max_seq() const { return max_seq_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  size_t num_blocks() const { return index_.size(); }

 private:
  friend class SstIterator;

  struct BlockHandle {
    std::string last_key;
    uint64_t offset = 0;
    uint32_t length = 0;
    uint32_t crc = 0;
  };

  SstReader(int fd, uint64_t number, std::shared_ptr<Cache> block_cache)
      : fd_(fd), number_(number), block_cache_(std::move(block_cache)) {}

  // Reads and CRC-checks one region of the file.
  StatusOr<Bytes> ReadRegion(uint64_t offset, uint32_t length,
                             uint32_t expected_crc) const;
  // Raw bytes of data block `index`, via the block cache when present.
  StatusOr<ValuePtr> ReadRawBlock(size_t index) const;
  StatusOr<std::vector<SstEntry>> ReadBlock(size_t index) const;

  const int fd_;
  const uint64_t number_;
  const std::shared_ptr<Cache> block_cache_;
  uint64_t file_size_ = 0;
  uint64_t entries_ = 0;
  uint64_t max_seq_ = 0;
  std::string smallest_;
  std::string largest_;
  std::vector<BlockHandle> index_;
  Bytes filter_;
};

// Forward scan over every entry of one SST, in internal-key order. Used by
// compaction and merged listings; decodes one block at a time. The reader
// must outlive the iterator (callers pin it via FileMeta's shared_ptr).
class SstIterator {
 public:
  explicit SstIterator(const SstReader* reader);

  bool Valid() const { return pos_ < entries_.size(); }
  const SstEntry& entry() const { return entries_[pos_]; }
  void Next();

  // Non-OK if a block failed to load; the iterator goes invalid then.
  const Status& status() const { return status_; }

 private:
  void LoadBlock(size_t block);

  const SstReader* reader_;
  size_t block_ = 0;
  std::vector<SstEntry> entries_;
  size_t pos_ = 0;
  Status status_;
};

// Decodes the entries of one data block (exposed for tests).
StatusOr<std::vector<SstEntry>> ParseDataBlock(const Bytes& block);

}  // namespace lsm
}  // namespace dstore

#endif  // DSTORE_STORE_LSM_SST_H_
