#include "store/lsm/version.h"

#include <algorithm>
#include <cstdio>

#include "fault/fault.h"
#include "store/fs_util.h"
#include "store/lsm/format.h"

namespace dstore {
namespace lsm {

namespace {
constexpr uint64_t kManifestMagic = 0x4c534d5f4d414e00ull;  // "LSM_MAN\0"
}  // namespace

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileMeta& f : levels[static_cast<size_t>(level)]) {
    total += f.size;
  }
  return total;
}

size_t Version::TotalFiles() const {
  size_t total = 0;
  for (const auto& level : levels) total += level.size();
  return total;
}

std::vector<const FileMeta*> Version::Overlapping(int level,
                                                  const std::string& lo,
                                                  const std::string& hi) const {
  std::vector<const FileMeta*> out;
  for (const FileMeta& f : levels[static_cast<size_t>(level)]) {
    if (f.OverlapsRange(lo, hi)) out.push_back(&f);
  }
  return out;
}

const FileMeta* Version::FindFile(int level, const std::string& key) const {
  const auto& files = levels[static_cast<size_t>(level)];
  // First file whose largest key is >= key; disjoint ranges make it unique.
  const auto it = std::lower_bound(
      files.begin(), files.end(), key,
      [](const FileMeta& f, const std::string& k) { return f.largest < k; });
  if (it == files.end() || !it->ContainsKey(key)) return nullptr;
  return &*it;
}

bool Version::IsBaseLevelForKey(int level, const std::string& key) const {
  for (int l = std::max(level + 1, 1); l < kNumLevels; ++l) {
    if (FindFile(l, key) != nullptr) return false;
  }
  return true;
}

Status SaveManifest(const std::filesystem::path& dir,
                    const ManifestState& state) {
  Bytes payload;
  PutFixed64(&payload, kManifestMagic);
  PutVarint64(&payload, state.next_file_number);
  PutVarint64(&payload, state.last_sequence);
  PutVarint64(&payload, state.wal_floor);
  PutVarint64(&payload, state.levels.size());
  for (const auto& level : state.levels) {
    PutVarint64(&payload, level.size());
    for (const FileMeta& f : level) {
      PutVarint64(&payload, f.number);
      PutVarint64(&payload, f.size);
      PutVarint64(&payload, f.entries);
      PutVarint64(&payload, f.max_seq);
      PutLengthPrefixed(&payload, f.smallest);
      PutLengthPrefixed(&payload, f.largest);
    }
  }
  Bytes framed;
  AppendFramedRecord(&framed, payload);

  const std::filesystem::path temp = dir / (std::string(kManifestName) + ".tmp");
  const bool torn = fault::CrashPointFires("lsm.manifest.torn_write");
  const size_t limit = torn ? framed.size() / 2 : framed.size();
  DSTORE_RETURN_IF_ERROR(WriteFileDurably(temp, framed, limit));
  if (torn) return fault::CrashedStatus("lsm.manifest.torn_write");
  if (fault::CrashPointFires("lsm.manifest.before_rename")) {
    // Temp fully written but MANIFEST still the old version: recovery sees
    // the pre-edit state, which is always self-consistent.
    return fault::CrashedStatus("lsm.manifest.before_rename");
  }
  std::error_code ec;
  std::filesystem::rename(temp, dir / kManifestName, ec);
  if (ec) {
    return Status::IOError("rename manifest: " + ec.message());
  }
  DSTORE_RETURN_IF_ERROR(SyncDir(dir));
  if (fault::CrashPointFires("lsm.manifest.after_rename")) {
    // Durable, but the caller sees an error — the acked-state rules treat
    // such writes as uncertain.
    return fault::CrashedStatus("lsm.manifest.after_rename");
  }
  return Status::OK();
}

StatusOr<ManifestState> LoadManifest(const std::filesystem::path& dir) {
  const std::filesystem::path path = dir / kManifestName;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    return ManifestState{};  // fresh store
  }
  Bytes contents;
  {
    std::error_code size_ec;
    const auto size = std::filesystem::file_size(path, size_ec);
    if (size_ec) return Status::IOError("stat manifest: " + size_ec.message());
    contents.resize(static_cast<size_t>(size));
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return Status::IOError("open manifest");
    const size_t got = std::fread(contents.data(), 1, contents.size(), f);
    std::fclose(f);
    if (got != contents.size()) return Status::IOError("read manifest");
  }
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(const Bytes payload, ReadFramedRecord(contents, &pos));
  size_t p = 0;
  if (payload.size() < 8 || DecodeFixed64(payload.data()) != kManifestMagic) {
    return Status::Corruption("manifest bad magic");
  }
  p = 8;
  ManifestState state;
  DSTORE_ASSIGN_OR_RETURN(state.next_file_number, GetVarint64(payload, &p));
  DSTORE_ASSIGN_OR_RETURN(state.last_sequence, GetVarint64(payload, &p));
  DSTORE_ASSIGN_OR_RETURN(state.wal_floor, GetVarint64(payload, &p));
  DSTORE_ASSIGN_OR_RETURN(const uint64_t num_levels, GetVarint64(payload, &p));
  if (num_levels != kNumLevels) {
    return Status::Corruption("manifest level count mismatch");
  }
  for (uint64_t l = 0; l < num_levels; ++l) {
    DSTORE_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(payload, &p));
    auto& level = state.levels[static_cast<size_t>(l)];
    level.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      FileMeta f;
      DSTORE_ASSIGN_OR_RETURN(f.number, GetVarint64(payload, &p));
      DSTORE_ASSIGN_OR_RETURN(f.size, GetVarint64(payload, &p));
      DSTORE_ASSIGN_OR_RETURN(f.entries, GetVarint64(payload, &p));
      DSTORE_ASSIGN_OR_RETURN(f.max_seq, GetVarint64(payload, &p));
      DSTORE_ASSIGN_OR_RETURN(Bytes smallest, GetLengthPrefixed(payload, &p));
      f.smallest.assign(smallest.begin(), smallest.end());
      DSTORE_ASSIGN_OR_RETURN(Bytes largest, GetLengthPrefixed(payload, &p));
      f.largest.assign(largest.begin(), largest.end());
      level.push_back(std::move(f));
    }
  }
  return state;
}

}  // namespace lsm
}  // namespace dstore
