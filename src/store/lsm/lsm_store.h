#ifndef DSTORE_STORE_LSM_LSM_STORE_H_
#define DSTORE_STORE_LSM_LSM_STORE_H_

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "common/sync.h"
#include "store/key_value.h"
#include "store/lsm/memtable.h"
#include "store/lsm/version.h"
#include "store/lsm/wal.h"

namespace dstore {
namespace lsm {

// A from-scratch log-structured merge-tree KeyValueStore:
//
//   writes:  WAL append (group fsync) -> memtable -> [flush] -> L0 SST
//            -> [leveled compaction] -> L1..L6 key-disjoint SSTs
//   reads:   memtable -> immutable memtable -> L0 (newest first) -> L1..L6,
//            each SST guarded by a Bloom filter
//
// Random writes become sequential I/O (one WAL append now, sorted-file
// writes later in the background), which is the whole point: FileStore pays
// a file create + fsync + rename per Put, LsmStore pays an appended record.
//
// Consistency model: every mutation gets a monotonically increasing
// sequence number. Reads execute at a point-in-time snapshot (by default
// "now"), so a Get or ListKeys racing a flush or compaction sees exactly
// the versions that were visible when it started — rewriting entries into
// different files never changes what any reader observes. GetSnapshot()
// exposes the same mechanism to callers and additionally pins the
// snapshot's versions against tombstone GC.
//
// Durability: a Put/Delete is acknowledged only after its WAL record is
// fsynced (options.sync_writes). Flush and compaction publish SSTs with
// temp-write -> fsync -> rename -> dir-fsync and commit them by atomically
// rewriting the MANIFEST; crashing at any instrumented fault site (lsm.wal.*,
// lsm.sst.*, lsm.manifest.*) loses no acknowledged write.
//
// A single background thread runs flushes and compactions; Flush() /
// CompactAll() run them synchronously for tests and the CLI.

struct LsmOptions {
  // Freeze + flush the memtable once it holds this many bytes.
  size_t memtable_bytes = 4u << 20;
  // SST layout knobs (see sst.h).
  size_t block_bytes = 4096;
  int bloom_bits_per_key = 10;
  // Shared LRU cache over decoded-and-verified SST data blocks. Hot point
  // reads skip the pread and the block CRC re-check. 0 disables it.
  size_t block_cache_bytes = 8u << 20;
  // Acknowledge writes only after the WAL fsync. Off trades durability of
  // the last few writes for throughput (page-cache-only appends).
  bool sync_writes = true;
  // Compact L0 into L1 once this many L0 files accumulate.
  int l0_compaction_trigger = 4;
  // Size target for L1; each deeper level is level_multiplier times bigger.
  uint64_t level_base_bytes = 8ull << 20;
  double level_multiplier = 8.0;
  // Cap on one compaction output file before rolling to the next.
  uint64_t max_output_file_bytes = 4ull << 20;
};

struct LsmStats {
  struct Level {
    size_t files = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };
  std::vector<Level> levels;
  size_t memtable_bytes = 0;
  size_t memtable_entries = 0;
  bool has_immutable = false;
  uint64_t last_sequence = 0;
  size_t live_snapshots = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t tombstones_dropped = 0;
  uint64_t bloom_checks = 0;
  uint64_t bloom_negatives = 0;
  uint64_t bloom_false_positives = 0;
  // Bytes above the per-level size targets (plus over-trigger L0 bytes):
  // how much work the compactor still owes.
  uint64_t compaction_debt_bytes = 0;
};

class LsmStore : public KeyValueStore {
 public:
  // Opens (creating if needed) an LSM directory: loads the MANIFEST,
  // removes temp/orphan files, replays WAL segments, starts the background
  // thread. Recovery after a crash is this same path.
  static StatusOr<std::unique_ptr<LsmStore>> Open(
      const std::filesystem::path& dir, LsmOptions options = {});

  ~LsmStore() override;

  // KeyValueStore.
  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override;
  // One WAL record and one group fsync for the whole batch: the entries
  // become durable (and visible) atomically.
  Status MultiPut(
      const std::vector<std::pair<std::string, ValuePtr>>& entries) override;

  // --- Snapshots ---
  //
  // A pinned point in time. Reads through the handle see the store exactly
  // as of its creation, regardless of later writes, flushes, or
  // compactions. Must not outlive the store.
  class Snapshot {
   public:
    ~Snapshot();
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    uint64_t sequence() const { return sequence_; }

   private:
    friend class LsmStore;
    Snapshot(LsmStore* store, uint64_t sequence)
        : store_(store), sequence_(sequence) {}
    LsmStore* const store_;
    const uint64_t sequence_;
  };

  std::unique_ptr<Snapshot> GetSnapshot();
  StatusOr<ValuePtr> GetAt(const Snapshot& snapshot, const std::string& key);
  StatusOr<std::vector<std::string>> ListKeysAt(const Snapshot& snapshot);

  // --- Maintenance (tests, CLI, benchmarks) ---

  // Freezes the current memtable (if non-empty) and waits until it is an
  // L0 SST recorded in the manifest.
  Status Flush();
  // Runs one compaction if L0 holds any files or a level is over target;
  // *did_work reports whether anything ran.
  Status CompactOnce(bool* did_work);
  // Flush + compact until every level is within target.
  Status CompactAll();

  LsmStats GetStats();

  // [smallest, largest] per file of `level`, for test assertions about
  // level shape.
  std::vector<std::pair<std::string, std::string>> LevelRangesForTest(
      int level);

 private:
  LsmStore(std::filesystem::path dir, LsmOptions options);

  // One compaction unit: `inputs` from `level` merged with `overlaps` from
  // level+1 into new level+1 files.
  struct CompactionJob {
    int level = 0;
    std::vector<FileMeta> inputs;
    std::vector<FileMeta> overlaps;
  };

  Status WriteBatch(std::vector<BatchEntry> batch) EXCLUDES(mu_);
  StatusOr<ValuePtr> GetInternal(const std::string& key, uint64_t snapshot)
      EXCLUDES(mu_);
  // Merged "what keys are live at `snapshot`" view across memtables + SSTs.
  StatusOr<std::vector<std::string>> LiveKeys(uint64_t snapshot) EXCLUDES(mu_);

  // Ensures mem_ has room; rotates to a fresh memtable + WAL when full
  // (waiting out a flush backlog first). Surfaces sticky background errors.
  Status MakeRoomForWrite() REQUIRES(mu_);
  Status RotateMemTable() REQUIRES(mu_);

  // Background maintenance. Both entry points claim the single maintenance
  // slot (maintenance_active_) and drop mu_ for the I/O.
  void BackgroundMain() EXCLUDES(mu_);
  void FlushImmLocked() REQUIRES(mu_);
  // `force` compacts a non-empty L0 even below the trigger — the manual
  // CompactOnce/CompactAll path, so "compact everything" means everything.
  bool PickCompaction(CompactionJob* job, bool force = false) REQUIRES(mu_);
  void RunCompactionLocked(const CompactionJob& job) REQUIRES(mu_);
  uint64_t AllocateFileNumber() EXCLUDES(mu_);
  // Lock-agnostic helpers (no mu_ access): build one SST from a frozen
  // memtable / merge a compaction's inputs into rolled output files.
  StatusOr<FileMeta> WriteMemTableToSst(const MemTable& mem,
                                        uint64_t file_number);
  StatusOr<std::vector<FileMeta>> MergeCompact(const CompactionJob& job,
                                               const Version& base,
                                               uint64_t smallest_snapshot);
  uint64_t LevelTargetBytes(int level) const;
  Status PersistVersion(std::shared_ptr<const Version> next,
                        uint64_t wal_floor) REQUIRES(mu_);

  void ReleaseSnapshot(uint64_t sequence) EXCLUDES(mu_);
  uint64_t OldestSnapshot() REQUIRES(mu_);

  void RegisterMetrics();
  void UnregisterMetrics();

  const std::filesystem::path dir_;
  const LsmOptions options_;
  // Block cache shared by every SstReader of this store (null if disabled).
  // Never cleared: file numbers are monotonic, so entries for deleted SSTs
  // simply age out.
  const std::shared_ptr<Cache> block_cache_;

  Mutex mu_;
  // Single condvar for all state transitions: writers waiting for room,
  // Flush()/CompactAll() waiting for maintenance, the background thread
  // waiting for work.
  CondVar cv_;

  std::shared_ptr<MemTable> mem_ GUARDED_BY(mu_);
  std::shared_ptr<MemTable> imm_ GUARDED_BY(mu_);
  // shared_ptr: in-flight Sync() calls may hold the writer across a
  // rotation or flush.
  std::shared_ptr<WalWriter> wal_ GUARDED_BY(mu_);
  std::shared_ptr<WalWriter> imm_wal_ GUARDED_BY(mu_);
  uint64_t wal_number_ GUARDED_BY(mu_) = 0;
  uint64_t imm_wal_number_ GUARDED_BY(mu_) = 0;

  std::shared_ptr<const Version> version_ GUARDED_BY(mu_);
  uint64_t next_file_number_ GUARDED_BY(mu_) = 1;
  uint64_t last_sequence_ GUARDED_BY(mu_) = 0;
  std::multiset<uint64_t> snapshots_ GUARDED_BY(mu_);
  // Round-robin cursor per level: compact the first file whose largest key
  // is past the cursor, so repeated compactions sweep the whole level.
  std::vector<std::string> compact_cursor_ GUARDED_BY(mu_) =
      std::vector<std::string>(kNumLevels);

  // First unrecoverable background failure; sticky — the store refuses
  // writes afterwards (reopen to recover), like any torn-state situation.
  Status bg_error_ GUARDED_BY(mu_);
  bool maintenance_active_ GUARDED_BY(mu_) = false;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::thread bg_thread_;

  // Stats (lock-free so the read/write hot paths never contend on them).
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> compactions_{0};
  std::atomic<uint64_t> tombstones_dropped_{0};
  std::atomic<uint64_t> bloom_checks_{0};
  std::atomic<uint64_t> bloom_negatives_{0};
  std::atomic<uint64_t> bloom_false_positives_{0};

  int collector_id_ = 0;
};

}  // namespace lsm
}  // namespace dstore

#endif  // DSTORE_STORE_LSM_LSM_STORE_H_
