#ifndef DSTORE_STORE_LSM_BLOOM_H_
#define DSTORE_STORE_LSM_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace dstore {
namespace lsm {

// Per-SST Bloom filter over user keys. A negative answer skips the table's
// index and data blocks entirely, which is what keeps point lookups cheap
// once compaction has spread keys across several levels. Double hashing
// (Kirsch–Mitzenmacher) derives all k probes from one 64-bit hash, so
// membership tests cost one hash plus k bit reads.
//
// Layout of the built filter block: the bit array followed by one trailing
// byte holding k (the probe count). An empty filter (no keys) is a single
// zero byte and matches nothing.

class BloomFilter {
 public:
  // bits_per_key ~10 gives a ~1% false-positive rate.
  static Bytes Build(const std::vector<uint64_t>& key_hashes,
                     int bits_per_key);

  // True if the key that produced `hash` may be in the filter; false means
  // definitely absent. Tolerates arbitrary (possibly corrupt) bytes by
  // answering "maybe" for malformed filters — correctness never depends on
  // a filter, only speed.
  static bool MayContain(const Bytes& filter, uint64_t hash);

  // The hash fed to Build/MayContain for a user key.
  static uint64_t HashKey(const std::string& key);
};

}  // namespace lsm
}  // namespace dstore

#endif  // DSTORE_STORE_LSM_BLOOM_H_
