#ifndef DSTORE_STORE_SQL_PARSER_H_
#define DSTORE_STORE_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "store/sql/ast.h"

namespace dstore::sql {

// Parses one SQL statement (a trailing ';' is allowed). Supported grammar:
//
//   CREATE TABLE [IF NOT EXISTS] t (col TYPE [PRIMARY KEY], ...)
//   DROP TABLE [IF EXISTS] t
//   INSERT [OR REPLACE] INTO t [(cols)] VALUES (expr, ...)[, (...)]...
//   SELECT * | col[, col]... | AGG[, AGG]... | col, AGG... FROM t
//       [WHERE expr] [GROUP BY col] [ORDER BY col [ASC|DESC]] [LIMIT n]
//     where AGG is COUNT(*|col) | SUM(col) | AVG(col) | MIN(col) | MAX(col);
//     plain columns may mix with aggregates only via GROUP BY on that column
//   UPDATE t SET col = expr[, ...] [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   BEGIN [TRANSACTION] | COMMIT | ROLLBACK
//
// Expressions support literals (integer, real, 'text', X'hex' blobs, NULL),
// column references, comparison operators (= != < <= > >=), arithmetic
// (+ - * / %), IS [NOT] NULL, NOT, AND, OR, and parentheses.
StatusOr<Statement> ParseStatement(std::string_view sql);

}  // namespace dstore::sql

#endif  // DSTORE_STORE_SQL_PARSER_H_
