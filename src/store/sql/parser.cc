#include "store/sql/parser.h"

#include <utility>

#include "store/sql/lexer.h"

namespace dstore::sql {

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> Parse() {
    DSTORE_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    // Optional trailing semicolon.
    if (CheckSymbol(";")) Advance();
    if (!Check(TokenType::kEnd)) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(std::string_view kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool CheckSymbol(std::string_view sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  bool MatchSymbol(std::string_view sym) {
    if (!CheckSymbol(sym)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        "SQL parse error at offset " + std::to_string(Peek().position) + ": " +
        message);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) return Error("expected " + std::string(kw));
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!MatchSymbol(sym)) return Error("expected '" + std::string(sym) + "'");
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdentifier() {
    if (!Check(TokenType::kIdentifier)) return Error("expected identifier");
    return Advance().text;
  }

  StatusOr<Statement> ParseStatementInner() {
    Statement stmt;
    if (MatchKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      DSTORE_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
      return stmt;
    }
    if (MatchKeyword("DROP")) {
      stmt.kind = Statement::Kind::kDropTable;
      DSTORE_ASSIGN_OR_RETURN(stmt.drop_table, ParseDropTable());
      return stmt;
    }
    if (MatchKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      DSTORE_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
      return stmt;
    }
    if (MatchKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      DSTORE_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
      return stmt;
    }
    if (MatchKeyword("UPDATE")) {
      stmt.kind = Statement::Kind::kUpdate;
      DSTORE_ASSIGN_OR_RETURN(stmt.update, ParseUpdate());
      return stmt;
    }
    if (MatchKeyword("DELETE")) {
      stmt.kind = Statement::Kind::kDelete;
      DSTORE_ASSIGN_OR_RETURN(stmt.delete_from, ParseDelete());
      return stmt;
    }
    if (MatchKeyword("BEGIN")) {
      MatchKeyword("TRANSACTION");
      stmt.kind = Statement::Kind::kBegin;
      return stmt;
    }
    if (MatchKeyword("COMMIT")) {
      stmt.kind = Statement::Kind::kCommit;
      return stmt;
    }
    if (MatchKeyword("ROLLBACK")) {
      stmt.kind = Statement::Kind::kRollback;
      return stmt;
    }
    return Error("expected a statement keyword");
  }

  StatusOr<CreateTableStatement> ParseCreateTable() {
    CreateTableStatement create;
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    if (MatchKeyword("IF")) {
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      create.if_not_exists = true;
    }
    DSTORE_ASSIGN_OR_RETURN(create.table, ExpectIdentifier());
    DSTORE_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      ColumnDef col;
      DSTORE_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      // Type names arrive as keywords (INTEGER, TEXT, ...).
      if (!Check(TokenType::kKeyword)) return Error("expected column type");
      DSTORE_ASSIGN_OR_RETURN(col.type, ParseColumnType(Advance().text));
      if (MatchKeyword("PRIMARY")) {
        DSTORE_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        col.primary_key = true;
      }
      create.columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    DSTORE_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (create.columns.empty()) return Error("table needs at least 1 column");
    return create;
  }

  StatusOr<DropTableStatement> ParseDropTable() {
    DropTableStatement drop;
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    if (MatchKeyword("IF")) {
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      drop.if_exists = true;
    }
    DSTORE_ASSIGN_OR_RETURN(drop.table, ExpectIdentifier());
    return drop;
  }

  StatusOr<InsertStatement> ParseInsert() {
    InsertStatement insert;
    if (MatchKeyword("OR")) {
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("REPLACE"));
      insert.or_replace = true;
    }
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    DSTORE_ASSIGN_OR_RETURN(insert.table, ExpectIdentifier());
    if (MatchSymbol("(")) {
      do {
        DSTORE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        insert.columns.push_back(std::move(col));
      } while (MatchSymbol(","));
      DSTORE_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    do {
      DSTORE_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        DSTORE_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (MatchSymbol(","));
      DSTORE_RETURN_IF_ERROR(ExpectSymbol(")"));
      insert.rows.push_back(std::move(row));
    } while (MatchSymbol(","));
    return insert;
  }

  bool AtAggregateKeyword() const {
    return CheckKeyword("COUNT") || CheckKeyword("SUM") ||
           CheckKeyword("AVG") || CheckKeyword("MIN") || CheckKeyword("MAX");
  }

  StatusOr<Aggregate> ParseAggregate() {
    Aggregate aggregate;
    aggregate.func = Advance().text;  // the keyword
    DSTORE_RETURN_IF_ERROR(ExpectSymbol("("));
    if (MatchSymbol("*")) {
      if (aggregate.func != "COUNT") {
        return Error(aggregate.func + "(*) is not valid; use a column");
      }
    } else {
      DSTORE_ASSIGN_OR_RETURN(aggregate.column, ExpectIdentifier());
    }
    DSTORE_RETURN_IF_ERROR(ExpectSymbol(")"));
    return aggregate;
  }

  StatusOr<SelectStatement> ParseSelect() {
    SelectStatement select;
    if (MatchSymbol("*")) {
      select.select_all = true;
    } else {
      // Mixed list of plain columns and aggregates (plain columns are only
      // legal together with aggregates when GROUP BY names them).
      do {
        if (AtAggregateKeyword()) {
          DSTORE_ASSIGN_OR_RETURN(Aggregate aggregate, ParseAggregate());
          select.aggregates.push_back(std::move(aggregate));
        } else {
          DSTORE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
          select.columns.push_back(std::move(col));
        }
      } while (MatchSymbol(","));
      // COUNT(*) alone keeps the legacy flag for the wire bridge.
      if (select.aggregates.size() == 1 && select.columns.empty() &&
          select.aggregates[0].func == "COUNT" &&
          select.aggregates[0].column.empty()) {
        select.count_star = true;
      }
    }
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DSTORE_ASSIGN_OR_RETURN(select.table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      DSTORE_ASSIGN_OR_RETURN(select.where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DSTORE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      select.group_by = std::move(col);
    }
    if (MatchKeyword("ORDER")) {
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DSTORE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      select.order_by = std::move(col);
      if (MatchKeyword("DESC")) {
        select.order_desc = true;
      } else {
        MatchKeyword("ASC");
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (!Check(TokenType::kInteger)) return Error("expected LIMIT count");
      const int64_t limit = Advance().integer;
      if (limit < 0) return Error("negative LIMIT");
      select.limit = static_cast<uint64_t>(limit);
    }
    return select;
  }

  StatusOr<UpdateStatement> ParseUpdate() {
    UpdateStatement update;
    DSTORE_ASSIGN_OR_RETURN(update.table, ExpectIdentifier());
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      DSTORE_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      DSTORE_RETURN_IF_ERROR(ExpectSymbol("="));
      DSTORE_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      update.assignments.emplace_back(std::move(col), std::move(value));
    } while (MatchSymbol(","));
    if (MatchKeyword("WHERE")) {
      DSTORE_ASSIGN_OR_RETURN(update.where, ParseExpr());
    }
    return update;
  }

  StatusOr<DeleteStatement> ParseDelete() {
    DeleteStatement del;
    DSTORE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DSTORE_ASSIGN_OR_RETURN(del.table, ExpectIdentifier());
    if (MatchKeyword("WHERE")) {
      DSTORE_ASSIGN_OR_RETURN(del.where, ParseExpr());
    }
    return del;
  }

  // --- Expressions (precedence climbing) ---

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    DSTORE_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      DSTORE_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    DSTORE_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (MatchKeyword("AND")) {
      DSTORE_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      DSTORE_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kNot;
      e->left = std::move(child);
      return e;
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    DSTORE_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    if (MatchKeyword("IS")) {
      const bool negated = MatchKeyword("NOT");
      DSTORE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = negated ? Expr::Kind::kIsNotNull : Expr::Kind::kIsNull;
      e->left = std::move(left);
      return e;
    }
    for (const char* op : {"=", "!=", "<=", ">=", "<", ">"}) {
      if (CheckSymbol(op)) {
        Advance();
        DSTORE_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAdditive() {
    DSTORE_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      const char* op = CheckSymbol("+") ? "+" : CheckSymbol("-") ? "-" : nullptr;
      if (op == nullptr) return left;
      Advance();
      DSTORE_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    DSTORE_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      const char* op = CheckSymbol("*")   ? "*"
                       : CheckSymbol("/") ? "/"
                       : CheckSymbol("%") ? "%"
                                          : nullptr;
      if (op == nullptr) return left;
      Advance();
      DSTORE_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (MatchSymbol("-")) {
      DSTORE_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnaryMinus;
      e->left = std::move(child);
      return e;
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    auto e = std::make_unique<Expr>();
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger:
        e->kind = Expr::Kind::kLiteral;
        e->literal = SqlValue(token.integer);
        Advance();
        return e;
      case TokenType::kReal:
        e->kind = Expr::Kind::kLiteral;
        e->literal = SqlValue(token.real);
        Advance();
        return e;
      case TokenType::kString:
        e->kind = Expr::Kind::kLiteral;
        e->literal = SqlValue(token.text);
        Advance();
        return e;
      case TokenType::kBlob:
        e->kind = Expr::Kind::kLiteral;
        e->literal = SqlValue(token.blob);
        Advance();
        return e;
      case TokenType::kIdentifier:
        e->kind = Expr::Kind::kColumn;
        e->column = token.text;
        Advance();
        return e;
      case TokenType::kKeyword:
        if (token.text == "NULL") {
          e->kind = Expr::Kind::kLiteral;
          e->literal = SqlValue::Null();
          Advance();
          return e;
        }
        return Error("unexpected keyword in expression: " + token.text);
      case TokenType::kSymbol:
        if (token.text == "(") {
          Advance();
          DSTORE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          DSTORE_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        return Error("unexpected symbol in expression: " + token.text);
      case TokenType::kEnd:
        return Error("unexpected end of statement in expression");
    }
    return Error("unparseable expression");
  }

  static ExprPtr MakeBinary(std::string op, ExprPtr left, ExprPtr right) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->op = std::move(op);
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Statement> ParseStatement(std::string_view sql) {
  DSTORE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace dstore::sql
