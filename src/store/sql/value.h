#ifndef DSTORE_STORE_SQL_VALUE_H_
#define DSTORE_STORE_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"
#include "common/status.h"

namespace dstore::sql {

enum class ColumnType {
  kInteger,
  kReal,
  kText,
  kBlob,
};

std::string_view ColumnTypeName(ColumnType type);
StatusOr<ColumnType> ParseColumnType(std::string_view name);

// A dynamically typed SQL value: NULL, INTEGER, REAL, TEXT, or BLOB.
class SqlValue {
 public:
  SqlValue() : value_(std::monostate{}) {}
  explicit SqlValue(int64_t v) : value_(v) {}
  explicit SqlValue(double v) : value_(v) {}
  explicit SqlValue(std::string v) : value_(std::move(v)) {}
  explicit SqlValue(Bytes v) : value_(std::move(v)) {}

  static SqlValue Null() { return SqlValue(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(value_); }
  bool is_integer() const { return std::holds_alternative<int64_t>(value_); }
  bool is_real() const { return std::holds_alternative<double>(value_); }
  bool is_text() const { return std::holds_alternative<std::string>(value_); }
  bool is_blob() const { return std::holds_alternative<Bytes>(value_); }
  bool is_numeric() const { return is_integer() || is_real(); }

  int64_t AsInteger() const { return std::get<int64_t>(value_); }
  double AsReal() const {
    return is_integer() ? static_cast<double>(std::get<int64_t>(value_))
                        : std::get<double>(value_);
  }
  const std::string& AsText() const { return std::get<std::string>(value_); }
  const Bytes& AsBlob() const { return std::get<Bytes>(value_); }

  // SQL literal rendering ('quoted' text, X'hex' blobs, NULL).
  std::string ToSqlLiteral() const;
  // Human-readable rendering for result display.
  std::string ToDisplayString() const;

  // Three-way comparison for WHERE / ORDER BY. NULLs sort first; numeric
  // values compare numerically across INTEGER/REAL; mismatched types compare
  // by type rank (NULL < numeric < text < blob).
  int Compare(const SqlValue& other) const;

  bool operator==(const SqlValue& other) const { return Compare(other) == 0; }

  // Binary coding used by the WAL-snapshot format.
  void EncodeTo(Bytes* out) const;
  static StatusOr<SqlValue> DecodeFrom(const Bytes& in, size_t* pos);

 private:
  int TypeRank() const;

  std::variant<std::monostate, int64_t, double, std::string, Bytes> value_;
};

// Escapes a string for inclusion in a SQL text literal ('' doubling).
std::string EscapeSqlString(std::string_view raw);

}  // namespace dstore::sql

#endif  // DSTORE_STORE_SQL_VALUE_H_
