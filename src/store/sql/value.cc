#include "store/sql/value.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace dstore::sql {

std::string_view ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kReal:
      return "REAL";
    case ColumnType::kText:
      return "TEXT";
    case ColumnType::kBlob:
      return "BLOB";
  }
  return "UNKNOWN";
}

StatusOr<ColumnType> ParseColumnType(std::string_view name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "INTEGER" || upper == "INT" || upper == "BIGINT") {
    return ColumnType::kInteger;
  }
  if (upper == "REAL" || upper == "DOUBLE" || upper == "FLOAT") {
    return ColumnType::kReal;
  }
  if (upper == "TEXT" || upper == "VARCHAR" || upper == "STRING") {
    return ColumnType::kText;
  }
  if (upper == "BLOB" || upper == "BYTEA") {
    return ColumnType::kBlob;
  }
  return Status::InvalidArgument("unknown column type: " + std::string(name));
}

std::string EscapeSqlString(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('\'');
  for (char c : raw) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string SqlValue::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(AsInteger());
  if (is_real()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(value_));
    return buf;
  }
  if (is_text()) return EscapeSqlString(AsText());
  return "X'" + HexEncode(AsBlob()) + "'";
}

std::string SqlValue::ToDisplayString() const {
  if (is_null()) return "NULL";
  if (is_integer()) return std::to_string(AsInteger());
  if (is_real()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(value_));
    return buf;
  }
  if (is_text()) return AsText();
  return "<blob:" + std::to_string(AsBlob().size()) + "B>";
}

int SqlValue::TypeRank() const {
  if (is_null()) return 0;
  if (is_numeric()) return 1;
  if (is_text()) return 2;
  return 3;
}

int SqlValue::Compare(const SqlValue& other) const {
  const int rank_a = TypeRank();
  const int rank_b = other.TypeRank();
  if (rank_a != rank_b) return rank_a < rank_b ? -1 : 1;
  switch (rank_a) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (is_integer() && other.is_integer()) {
        const int64_t a = AsInteger(), b = other.AsInteger();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = AsReal(), b = other.AsReal();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case 2: {
      const int c = AsText().compare(other.AsText());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      const Bytes& a = AsBlob();
      const Bytes& b = other.AsBlob();
      if (a < b) return -1;
      if (b < a) return 1;
      return 0;
    }
  }
}

namespace {
enum : uint8_t {
  kTagNull = 0,
  kTagInteger = 1,
  kTagReal = 2,
  kTagText = 3,
  kTagBlob = 4,
};
}  // namespace

void SqlValue::EncodeTo(Bytes* out) const {
  if (is_null()) {
    out->push_back(kTagNull);
  } else if (is_integer()) {
    out->push_back(kTagInteger);
    PutFixed64(out, static_cast<uint64_t>(AsInteger()));
  } else if (is_real()) {
    out->push_back(kTagReal);
    uint64_t bits;
    const double d = std::get<double>(value_);
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    PutFixed64(out, bits);
  } else if (is_text()) {
    out->push_back(kTagText);
    PutLengthPrefixed(out, AsText());
  } else {
    out->push_back(kTagBlob);
    PutLengthPrefixed(out, AsBlob());
  }
}

StatusOr<SqlValue> SqlValue::DecodeFrom(const Bytes& in, size_t* pos) {
  if (*pos >= in.size()) return Status::Corruption("truncated SqlValue");
  const uint8_t tag = in[(*pos)++];
  switch (tag) {
    case kTagNull:
      return SqlValue::Null();
    case kTagInteger: {
      if (*pos + 8 > in.size()) return Status::Corruption("truncated int");
      const uint64_t raw = DecodeFixed64(in.data() + *pos);
      *pos += 8;
      return SqlValue(static_cast<int64_t>(raw));
    }
    case kTagReal: {
      if (*pos + 8 > in.size()) return Status::Corruption("truncated real");
      const uint64_t bits = DecodeFixed64(in.data() + *pos);
      *pos += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return SqlValue(d);
    }
    case kTagText: {
      DSTORE_ASSIGN_OR_RETURN(Bytes raw, GetLengthPrefixed(in, pos));
      return SqlValue(ToString(raw));
    }
    case kTagBlob: {
      DSTORE_ASSIGN_OR_RETURN(Bytes raw, GetLengthPrefixed(in, pos));
      return SqlValue(std::move(raw));
    }
    default:
      return Status::Corruption("unknown SqlValue tag");
  }
}

}  // namespace dstore::sql
