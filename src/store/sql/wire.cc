#include "store/sql/wire.h"

namespace dstore::sql {

Bytes EncodeStatusResponse(const Status& status) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  return out;
}

Bytes EncodeOkResponse() { return EncodeStatusResponse(Status::OK()); }

StatusOr<size_t> DecodeResponseStatus(const Bytes& response) {
  if (response.empty()) return Status::Corruption("empty SQL response");
  const auto code = static_cast<StatusCode>(response[0]);
  size_t pos = 1;
  DSTORE_ASSIGN_OR_RETURN(Bytes message, GetLengthPrefixed(response, &pos));
  if (code != StatusCode::kOk) {
    return Status(code, ToString(message));
  }
  return pos;
}

void EncodeResultSet(const ResultSet& result, Bytes* out) {
  PutVarint64(out, result.columns.size());
  for (const std::string& col : result.columns) PutLengthPrefixed(out, col);
  PutVarint64(out, result.rows.size());
  for (const auto& row : result.rows) {
    for (const SqlValue& value : row) value.EncodeTo(out);
  }
  PutVarint64(out, result.rows_affected);
}

StatusOr<ResultSet> DecodeResultSet(const Bytes& in, size_t* pos) {
  ResultSet result;
  DSTORE_ASSIGN_OR_RETURN(uint64_t num_cols, GetVarint64(in, pos));
  for (uint64_t i = 0; i < num_cols; ++i) {
    DSTORE_ASSIGN_OR_RETURN(Bytes col, GetLengthPrefixed(in, pos));
    result.columns.push_back(ToString(col));
  }
  DSTORE_ASSIGN_OR_RETURN(uint64_t num_rows, GetVarint64(in, pos));
  for (uint64_t r = 0; r < num_rows; ++r) {
    std::vector<SqlValue> row;
    row.reserve(num_cols);
    for (uint64_t c = 0; c < num_cols; ++c) {
      DSTORE_ASSIGN_OR_RETURN(SqlValue value, SqlValue::DecodeFrom(in, pos));
      row.push_back(std::move(value));
    }
    result.rows.push_back(std::move(row));
  }
  DSTORE_ASSIGN_OR_RETURN(result.rows_affected, GetVarint64(in, pos));
  return result;
}

}  // namespace dstore::sql
