#include "store/sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace dstore::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto& kKeywords = *new std::unordered_set<std::string>{
      "SELECT", "FROM",    "WHERE",  "INSERT", "INTO",   "VALUES", "UPDATE",
      "SET",    "DELETE",  "CREATE", "TABLE",  "DROP",   "PRIMARY", "KEY",
      "NOT",    "AND",     "OR",     "NULL",   "IS",     "ORDER",  "BY",
      "ASC",    "DESC",    "LIMIT",  "GROUP",  "BEGIN",  "COMMIT", "ROLLBACK", "IF",
      "EXISTS", "REPLACE", "COUNT",  "SUM",   "AVG",    "MIN",    "MAX",  "INTEGER", "INT",   "BIGINT", "REAL",
      "DOUBLE", "FLOAT",   "TEXT",   "VARCHAR", "STRING", "BLOB",  "BYTEA",
      "TRANSACTION"};
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    Token token;
    token.position = i;

    // Blob literal X'hex' (check before identifiers).
    if ((c == 'x' || c == 'X') && i + 1 < n && sql[i + 1] == '\'') {
      size_t j = i + 2;
      while (j < n && sql[j] != '\'') ++j;
      if (j >= n) {
        return Status::InvalidArgument("unterminated blob literal");
      }
      auto decoded = HexDecode(sql.substr(i + 2, j - i - 2));
      if (!decoded.ok()) {
        return Status::InvalidArgument("malformed blob literal");
      }
      token.type = TokenType::kBlob;
      token.blob = *std::move(decoded);
      tokens.push_back(std::move(token));
      i = j + 1;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word(sql.substr(i, j - i));
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      if (Keywords().count(upper) > 0) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = std::move(word);
      }
      tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_real = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_real = true;
        ++j;
      }
      const std::string number(sql.substr(i, j - i));
      try {
        if (is_real) {
          token.type = TokenType::kReal;
          token.real = std::stod(number);
        } else {
          token.type = TokenType::kInteger;
          token.integer = std::stoll(number);
        }
      } catch (const std::exception&) {
        return Status::InvalidArgument("malformed numeric literal: " + number);
      }
      tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      token.type = TokenType::kString;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      i = j;
      continue;
    }

    // Two-character operators first.
    if (i + 1 < n) {
      const std::string two(sql.substr(i, 2));
      if (two == "!=" || two == "<>" || two == "<=" || two == ">=") {
        token.type = TokenType::kSymbol;
        token.text = (two == "<>") ? "!=" : two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }

    static constexpr std::string_view kSingles = "(),*=<>+-/%;";
    if (kSingles.find(c) != std::string_view::npos) {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }

    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dstore::sql
