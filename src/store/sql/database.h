#ifndef DSTORE_STORE_SQL_DATABASE_H_
#define DSTORE_STORE_SQL_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"
#include "store/sql/ast.h"
#include "store/sql/value.h"

namespace dstore::sql {

// Result of executing one statement. SELECTs populate columns/rows; DML
// statements populate rows_affected.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;
  uint64_t rows_affected = 0;
};

// An embedded relational engine — the substrate standing in for the paper's
// MySQL instance. Supports typed tables with an optional primary-key index,
// the SQL subset described in parser.h, and durability via write-ahead
// logging: every committed mutating statement is appended to a WAL and
// fsync'd, which is exactly what makes SQL-store writes so much more
// expensive than reads ("writes involve costly commit operations",
// paper Section V / Fig. 10). On reopen the snapshot is loaded and the WAL
// replayed. Checkpoint() folds the WAL into a fresh snapshot.
//
// Thread-safe: statements execute under one database-wide lock, like a
// single-connection MySQL session.
class Database {
 public:
  struct Options {
    // fsync the WAL on every commit (and on every autocommitted mutation).
    // Turning this off trades durability for speed — the ablation the
    // bench_micro_stores benchmark measures.
    bool sync_commits = true;
    // Checkpoint automatically once the WAL exceeds this size (0 = never).
    size_t checkpoint_wal_bytes = 64u << 20;
  };

  // In-memory database (no durability).
  Database();
  // Durable database rooted at `path` ("<path>.snapshot" and "<path>.wal").
  static StatusOr<std::unique_ptr<Database>> Open(const std::string& path,
                                                  const Options& options);
  static StatusOr<std::unique_ptr<Database>> Open(const std::string& path) {
    return Open(path, Options());
  }

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Parses and executes one SQL statement.
  StatusOr<ResultSet> Execute(std::string_view sql);

  // Executes a pre-built statement (the prepared-statement path used by the
  // SQL server's key-value bridge; skips SQL text parsing).
  StatusOr<ResultSet> ExecuteStatement(const Statement& statement);

  // Folds the current state into the snapshot file and truncates the WAL.
  Status Checkpoint();

  // Introspection.
  std::vector<std::string> TableNames() const;
  bool in_transaction() const;
  size_t WalBytes() const;

 private:
  struct Table {
    std::string name;
    std::vector<ColumnDef> columns;
    int pk_index = -1;  // column index of the PRIMARY KEY, or -1
    std::vector<std::vector<SqlValue>> rows;
    // Primary-key index: encoded PK value -> row position.
    std::unordered_map<std::string, size_t> pk_map;

    StatusOr<int> ColumnIndex(const std::string& name) const;
    static std::string EncodePk(const SqlValue& value);
  };

  // --- execution (run under mu_) ---
  StatusOr<ResultSet> ExecuteLocked(const Statement& statement,
                                    std::string_view sql_for_wal)
      REQUIRES(mu_);
  StatusOr<ResultSet> ExecCreateTable(const CreateTableStatement& stmt)
      REQUIRES(mu_);
  StatusOr<ResultSet> ExecDropTable(const DropTableStatement& stmt)
      REQUIRES(mu_);
  StatusOr<ResultSet> ExecInsert(const InsertStatement& stmt) REQUIRES(mu_);
  StatusOr<ResultSet> ExecSelect(const SelectStatement& stmt) REQUIRES(mu_);
  StatusOr<ResultSet> ExecUpdate(const UpdateStatement& stmt) REQUIRES(mu_);
  StatusOr<ResultSet> ExecDelete(const DeleteStatement& stmt) REQUIRES(mu_);

  StatusOr<Table*> FindTable(const std::string& name) REQUIRES(mu_);
  // Rows matched by `where` (all rows when null). Uses the PK index for
  // equality predicates on the primary key column.
  StatusOr<std::vector<size_t>> MatchRows(Table* table, const Expr* where)
      REQUIRES(mu_);
  void RemoveRow(Table* table, size_t row_index) REQUIRES(mu_);

  // Copy-on-first-write snapshot for ROLLBACK.
  void SnapshotTableForTxn(const std::string& name) REQUIRES(mu_);

  // --- durability ---
  Status AppendWal(std::string_view sql) REQUIRES(mu_);
  Status FlushWal(bool sync) REQUIRES(mu_);
  // LoadSnapshot and ReplayWal lock internally (they run statement-sized
  // critical sections, not one long hold) and are only called from Open,
  // before the database is shared.
  Status LoadSnapshot() EXCLUDES(mu_);
  Status ReplayWal() EXCLUDES(mu_);
  Status WriteSnapshotLocked() REQUIRES(mu_);

  Options options_;
  std::string path_;  // empty = in-memory only
  int wal_fd_ GUARDED_BY(mu_) = -1;
  size_t wal_bytes_ GUARDED_BY(mu_) = 0;
  // WAL bytes known to have reached disk (watermark advanced after each
  // successful fsync). The sql.wal.before_fsync crash point truncates back
  // to this mark, modelling the loss of unsynced page-cache data.
  size_t wal_synced_bytes_ GUARDED_BY(mu_) = 0;

  mutable Mutex mu_;
  std::map<std::string, Table> tables_ GUARDED_BY(mu_);

  bool in_txn_ GUARDED_BY(mu_) = false;
  bool replaying_ GUARDED_BY(mu_) = false;
  std::vector<std::string> txn_wal_buffer_ GUARDED_BY(mu_);
  // Tables (by name) copied at first modification inside the transaction;
  // nullopt marks a table created inside the txn (drop it on rollback).
  std::map<std::string, std::optional<Table>> txn_undo_ GUARDED_BY(mu_);
};

}  // namespace dstore::sql

#endif  // DSTORE_STORE_SQL_DATABASE_H_
