#ifndef DSTORE_STORE_SQL_WIRE_H_
#define DSTORE_STORE_SQL_WIRE_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "store/sql/database.h"

namespace dstore::sql {

// Wire protocol between SqlClient and SqlServer. Mirrors the architecture
// the paper measures: "a MySQL database running on the client node accessed
// via JDBC" — a separate server process reached over a local socket, with
// text SQL for ad-hoc queries and a prepared-statement fast path for the
// key-value bridge (binary values; no SQL-literal encoding on the wire).
//
// Frames use net/framing.h. Request payload: [u8 op][op-specific body].
enum class SqlOp : uint8_t {
  kQuery = 0,      // body: SQL text
  kKvGet = 1,      // body: lp(key)
  kKvPut = 2,      // body: lp(key) lp(value)
  kKvDelete = 3,   // body: lp(key)
  kKvContains = 4, // body: lp(key)
  kKvKeys = 5,
  kKvCount = 6,
  kKvClear = 7,
  kPing = 8,
};

// Response payload: [u8 status_code][lp(message)][op-specific body].
Bytes EncodeStatusResponse(const Status& status);
Bytes EncodeOkResponse();

// Splits a response into status + remaining body offset.
StatusOr<size_t> DecodeResponseStatus(const Bytes& response);

// ResultSet <-> bytes (appended to / read from a response body).
void EncodeResultSet(const ResultSet& result, Bytes* out);
StatusOr<ResultSet> DecodeResultSet(const Bytes& in, size_t* pos);

}  // namespace dstore::sql

#endif  // DSTORE_STORE_SQL_WIRE_H_
