#ifndef DSTORE_STORE_SQL_LEXER_H_
#define DSTORE_STORE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "store/sql/value.h"

namespace dstore::sql {

enum class TokenType {
  kKeyword,     // SELECT, FROM, ... (uppercased in `text`)
  kIdentifier,  // table / column names
  kInteger,
  kReal,
  kString,      // 'text literal' (unescaped in `text`)
  kBlob,        // X'hex' (decoded in `blob`)
  kSymbol,      // ( ) , * = != <> < <= > >= + - / % ;
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;  // keyword/identifier/symbol text or literal payload
  int64_t integer = 0;
  double real = 0;
  Bytes blob;
  size_t position = 0;  // byte offset in the input, for error messages
};

// Tokenizes a SQL statement. Keywords are recognized case-insensitively and
// reported uppercase. Fails on unterminated strings and malformed literals.
StatusOr<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace dstore::sql

#endif  // DSTORE_STORE_SQL_LEXER_H_
