#include "store/sql/database.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "compress/crc32.h"
#include "fault/fault.h"
#include "store/fs_util.h"
#include "store/sql/parser.h"

namespace dstore::sql {

namespace {

std::string Errno() { return std::strerror(errno); }

constexpr char kSnapshotMagic[8] = {'D', 'S', 'Q', 'L', 'S', 'N', 'A', 'P'};
constexpr uint32_t kSnapshotVersion = 1;

bool IsTruthy(const SqlValue& value) {
  if (value.is_null()) return false;
  if (value.is_integer()) return value.AsInteger() != 0;
  if (value.is_real()) return value.AsReal() != 0.0;
  return true;  // non-empty text/blob values are truthy
}

// Renders an expression back to SQL text; used to build WAL records for
// statements executed through the prepared (AST) path.
std::string ExprToSql(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal.ToSqlLiteral();
    case Expr::Kind::kColumn:
      return e.column;
    case Expr::Kind::kUnaryMinus:
      return "(-" + ExprToSql(*e.left) + ")";
    case Expr::Kind::kNot:
      return "(NOT " + ExprToSql(*e.left) + ")";
    case Expr::Kind::kIsNull:
      return "(" + ExprToSql(*e.left) + " IS NULL)";
    case Expr::Kind::kIsNotNull:
      return "(" + ExprToSql(*e.left) + " IS NOT NULL)";
    case Expr::Kind::kBinary:
      return "(" + ExprToSql(*e.left) + " " + e.op + " " + ExprToSql(*e.right) +
             ")";
  }
  return "";
}

std::string StatementToSql(const Statement& s) {
  switch (s.kind) {
    case Statement::Kind::kCreateTable: {
      std::string sql = "CREATE TABLE ";
      if (s.create_table.if_not_exists) sql += "IF NOT EXISTS ";
      sql += s.create_table.table + " (";
      for (size_t i = 0; i < s.create_table.columns.size(); ++i) {
        const ColumnDef& col = s.create_table.columns[i];
        if (i > 0) sql += ", ";
        sql += col.name + " " + std::string(ColumnTypeName(col.type));
        if (col.primary_key) sql += " PRIMARY KEY";
      }
      return sql + ")";
    }
    case Statement::Kind::kDropTable:
      return std::string("DROP TABLE ") +
             (s.drop_table.if_exists ? "IF EXISTS " : "") + s.drop_table.table;
    case Statement::Kind::kInsert: {
      std::string sql = "INSERT ";
      if (s.insert.or_replace) sql += "OR REPLACE ";
      sql += "INTO " + s.insert.table;
      if (!s.insert.columns.empty()) {
        sql += " (";
        for (size_t i = 0; i < s.insert.columns.size(); ++i) {
          if (i > 0) sql += ", ";
          sql += s.insert.columns[i];
        }
        sql += ")";
      }
      sql += " VALUES ";
      for (size_t r = 0; r < s.insert.rows.size(); ++r) {
        if (r > 0) sql += ", ";
        sql += "(";
        for (size_t i = 0; i < s.insert.rows[r].size(); ++i) {
          if (i > 0) sql += ", ";
          sql += ExprToSql(*s.insert.rows[r][i]);
        }
        sql += ")";
      }
      return sql;
    }
    case Statement::Kind::kUpdate: {
      std::string sql = "UPDATE " + s.update.table + " SET ";
      for (size_t i = 0; i < s.update.assignments.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += s.update.assignments[i].first + " = " +
               ExprToSql(*s.update.assignments[i].second);
      }
      if (s.update.where) sql += " WHERE " + ExprToSql(*s.update.where);
      return sql;
    }
    case Statement::Kind::kDelete: {
      std::string sql = "DELETE FROM " + s.delete_from.table;
      if (s.delete_from.where) {
        sql += " WHERE " + ExprToSql(*s.delete_from.where);
      }
      return sql;
    }
    case Statement::Kind::kSelect:
    case Statement::Kind::kBegin:
    case Statement::Kind::kCommit:
    case Statement::Kind::kRollback:
      return "";  // not logged
  }
  return "";
}

// Evaluates `e` against a row (may be null for row-free contexts).
StatusOr<SqlValue> EvalExpr(const Expr& e,
                            const std::vector<ColumnDef>* columns,
                            const std::vector<SqlValue>* row) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kColumn: {
      if (columns == nullptr || row == nullptr) {
        return Status::InvalidArgument("column reference outside a row: " +
                                       e.column);
      }
      for (size_t i = 0; i < columns->size(); ++i) {
        if ((*columns)[i].name == e.column) return (*row)[i];
      }
      return Status::InvalidArgument("unknown column: " + e.column);
    }
    case Expr::Kind::kUnaryMinus: {
      DSTORE_ASSIGN_OR_RETURN(SqlValue v, EvalExpr(*e.left, columns, row));
      if (v.is_integer()) return SqlValue(-v.AsInteger());
      if (v.is_real()) return SqlValue(-v.AsReal());
      if (v.is_null()) return SqlValue::Null();
      return Status::InvalidArgument("unary minus on non-numeric value");
    }
    case Expr::Kind::kNot: {
      DSTORE_ASSIGN_OR_RETURN(SqlValue v, EvalExpr(*e.left, columns, row));
      return SqlValue(static_cast<int64_t>(IsTruthy(v) ? 0 : 1));
    }
    case Expr::Kind::kIsNull: {
      DSTORE_ASSIGN_OR_RETURN(SqlValue v, EvalExpr(*e.left, columns, row));
      return SqlValue(static_cast<int64_t>(v.is_null() ? 1 : 0));
    }
    case Expr::Kind::kIsNotNull: {
      DSTORE_ASSIGN_OR_RETURN(SqlValue v, EvalExpr(*e.left, columns, row));
      return SqlValue(static_cast<int64_t>(v.is_null() ? 0 : 1));
    }
    case Expr::Kind::kBinary:
      break;
  }

  // Binary operators. AND/OR short-circuit.
  if (e.op == "AND") {
    DSTORE_ASSIGN_OR_RETURN(SqlValue left, EvalExpr(*e.left, columns, row));
    if (!IsTruthy(left)) return SqlValue(static_cast<int64_t>(0));
    DSTORE_ASSIGN_OR_RETURN(SqlValue right, EvalExpr(*e.right, columns, row));
    return SqlValue(static_cast<int64_t>(IsTruthy(right) ? 1 : 0));
  }
  if (e.op == "OR") {
    DSTORE_ASSIGN_OR_RETURN(SqlValue left, EvalExpr(*e.left, columns, row));
    if (IsTruthy(left)) return SqlValue(static_cast<int64_t>(1));
    DSTORE_ASSIGN_OR_RETURN(SqlValue right, EvalExpr(*e.right, columns, row));
    return SqlValue(static_cast<int64_t>(IsTruthy(right) ? 1 : 0));
  }

  DSTORE_ASSIGN_OR_RETURN(SqlValue left, EvalExpr(*e.left, columns, row));
  DSTORE_ASSIGN_OR_RETURN(SqlValue right, EvalExpr(*e.right, columns, row));

  // Comparisons: SQL semantics — any comparison with NULL is not-true.
  if (e.op == "=" || e.op == "!=" || e.op == "<" || e.op == "<=" ||
      e.op == ">" || e.op == ">=") {
    if (left.is_null() || right.is_null()) {
      return SqlValue(static_cast<int64_t>(0));
    }
    const int c = left.Compare(right);
    bool result = false;
    if (e.op == "=") result = c == 0;
    else if (e.op == "!=") result = c != 0;
    else if (e.op == "<") result = c < 0;
    else if (e.op == "<=") result = c <= 0;
    else if (e.op == ">") result = c > 0;
    else result = c >= 0;
    return SqlValue(static_cast<int64_t>(result ? 1 : 0));
  }

  // Arithmetic.
  if (left.is_null() || right.is_null()) return SqlValue::Null();
  if (e.op == "+" && left.is_text() && right.is_text()) {
    return SqlValue(left.AsText() + right.AsText());
  }
  if (!left.is_numeric() || !right.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  const bool both_int = left.is_integer() && right.is_integer();
  if (e.op == "+") {
    if (both_int) return SqlValue(left.AsInteger() + right.AsInteger());
    return SqlValue(left.AsReal() + right.AsReal());
  }
  if (e.op == "-") {
    if (both_int) return SqlValue(left.AsInteger() - right.AsInteger());
    return SqlValue(left.AsReal() - right.AsReal());
  }
  if (e.op == "*") {
    if (both_int) return SqlValue(left.AsInteger() * right.AsInteger());
    return SqlValue(left.AsReal() * right.AsReal());
  }
  if (e.op == "/") {
    if (both_int) {
      if (right.AsInteger() == 0) {
        return Status::InvalidArgument("division by zero");
      }
      return SqlValue(left.AsInteger() / right.AsInteger());
    }
    if (right.AsReal() == 0.0) {
      return Status::InvalidArgument("division by zero");
    }
    return SqlValue(left.AsReal() / right.AsReal());
  }
  if (e.op == "%") {
    if (!both_int) return Status::InvalidArgument("modulo on non-integers");
    if (right.AsInteger() == 0) {
      return Status::InvalidArgument("modulo by zero");
    }
    return SqlValue(left.AsInteger() % right.AsInteger());
  }
  return Status::Internal("unknown binary operator: " + e.op);
}

// Checks/coerces `value` for storage in a column of type `type`.
StatusOr<SqlValue> CoerceForColumn(const SqlValue& value, const ColumnDef& col) {
  if (value.is_null()) {
    if (col.primary_key) {
      return Status::InvalidArgument("PRIMARY KEY column " + col.name +
                                     " cannot be NULL");
    }
    return value;
  }
  switch (col.type) {
    case ColumnType::kInteger:
      if (value.is_integer()) return value;
      if (value.is_real()) {
        return SqlValue(static_cast<int64_t>(value.AsReal()));
      }
      break;
    case ColumnType::kReal:
      if (value.is_real()) return value;
      if (value.is_integer()) return SqlValue(value.AsReal());
      break;
    case ColumnType::kText:
      if (value.is_text()) return value;
      if (value.is_integer() || value.is_real()) {
        return SqlValue(value.ToDisplayString());
      }
      break;
    case ColumnType::kBlob:
      if (value.is_blob()) return value;
      if (value.is_text()) return SqlValue(ToBytes(value.AsText()));
      break;
  }
  return Status::InvalidArgument("value has wrong type for column " +
                                 col.name);
}

}  // namespace

StatusOr<int> Database::Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return Status::InvalidArgument("unknown column: " + name + " in table " +
                                 this->name);
}

std::string Database::Table::EncodePk(const SqlValue& value) {
  Bytes encoded;
  value.EncodeTo(&encoded);
  return ToString(encoded);
}

Database::Database() = default;

Database::~Database() {
  MutexLock lock(mu_);
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

StatusOr<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                   const Options& options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  db->path_ = path;

  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  DSTORE_RETURN_IF_ERROR(db->LoadSnapshot());
  DSTORE_RETURN_IF_ERROR(db->ReplayWal());

  const std::string wal_path = path + ".wal";
  const bool wal_existed = std::filesystem::exists(wal_path, ec);
  MutexLock lock(db->mu_);
  db->wal_fd_ = ::open(wal_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (db->wal_fd_ < 0) {
    return Status::IOError("open WAL: " + Errno());
  }
  if (!wal_existed) {
    // A freshly created segment is only a page-cache directory entry until
    // the parent is fsynced; without this, a crash could discard the whole
    // WAL even though individual commits were fsynced into it.
    DSTORE_RETURN_IF_ERROR(
        SyncDir(std::filesystem::path(wal_path).parent_path()));
  }
  const off_t size = ::lseek(db->wal_fd_, 0, SEEK_END);
  db->wal_bytes_ = size < 0 ? 0 : static_cast<size_t>(size);
  db->wal_synced_bytes_ = db->wal_bytes_;
  return db;
}

StatusOr<ResultSet> Database::Execute(std::string_view sql) {
  DSTORE_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  MutexLock lock(mu_);
  return ExecuteLocked(stmt, sql);
}

StatusOr<ResultSet> Database::ExecuteStatement(const Statement& statement) {
  MutexLock lock(mu_);
  // WAL text is regenerated from the AST only for mutating statements.
  std::string wal_sql;
  if (statement.kind != Statement::Kind::kSelect && path_ != "") {
    wal_sql = StatementToSql(statement);
  }
  return ExecuteLocked(statement, wal_sql);
}

StatusOr<ResultSet> Database::ExecuteLocked(const Statement& statement,
                                            std::string_view sql_for_wal) {
  switch (statement.kind) {
    case Statement::Kind::kBegin: {
      if (in_txn_) return Status::InvalidArgument("already in a transaction");
      in_txn_ = true;
      txn_undo_.clear();
      txn_wal_buffer_.clear();
      return ResultSet{};
    }
    case Statement::Kind::kCommit: {
      if (!in_txn_) return Status::InvalidArgument("no open transaction");
      if (!replaying_ && !txn_wal_buffer_.empty()) {
        // Bracket the statements with BEGIN/COMMIT marker records so a
        // crash mid-commit leaves a recognisably incomplete group that
        // ReplayWal rolls back atomically instead of applying a prefix.
        DSTORE_RETURN_IF_ERROR(AppendWal("BEGIN"));
        for (const std::string& sql : txn_wal_buffer_) {
          DSTORE_RETURN_IF_ERROR(AppendWal(sql));
        }
        DSTORE_RETURN_IF_ERROR(AppendWal("COMMIT"));
        DSTORE_RETURN_IF_ERROR(FlushWal(options_.sync_commits));
      }
      in_txn_ = false;
      txn_undo_.clear();
      txn_wal_buffer_.clear();
      return ResultSet{};
    }
    case Statement::Kind::kRollback: {
      if (!in_txn_) return Status::InvalidArgument("no open transaction");
      for (auto& [name, saved] : txn_undo_) {
        if (saved.has_value()) {
          tables_[name] = *std::move(saved);
        } else {
          tables_.erase(name);
        }
      }
      in_txn_ = false;
      txn_undo_.clear();
      txn_wal_buffer_.clear();
      return ResultSet{};
    }
    case Statement::Kind::kSelect:
      return ExecSelect(statement.select);
    default:
      break;
  }

  // Mutating statement.
  StatusOr<ResultSet> result = Status::Internal("unhandled statement");
  switch (statement.kind) {
    case Statement::Kind::kCreateTable:
      result = ExecCreateTable(statement.create_table);
      break;
    case Statement::Kind::kDropTable:
      result = ExecDropTable(statement.drop_table);
      break;
    case Statement::Kind::kInsert:
      result = ExecInsert(statement.insert);
      break;
    case Statement::Kind::kUpdate:
      result = ExecUpdate(statement.update);
      break;
    case Statement::Kind::kDelete:
      result = ExecDelete(statement.delete_from);
      break;
    default:
      break;
  }
  if (!result.ok()) return result;

  if (!replaying_ && path_ != "" && !sql_for_wal.empty()) {
    if (in_txn_) {
      txn_wal_buffer_.emplace_back(sql_for_wal);
    } else {
      DSTORE_RETURN_IF_ERROR(AppendWal(sql_for_wal));
      DSTORE_RETURN_IF_ERROR(FlushWal(options_.sync_commits));
      if (options_.checkpoint_wal_bytes > 0 &&
          wal_bytes_ > options_.checkpoint_wal_bytes) {
        DSTORE_RETURN_IF_ERROR(WriteSnapshotLocked());
      }
    }
  }
  return result;
}

void Database::SnapshotTableForTxn(const std::string& name) {
  if (!in_txn_ || txn_undo_.count(name) > 0) return;
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    txn_undo_.emplace(name, std::nullopt);
  } else {
    txn_undo_.emplace(name, it->second);
  }
}

StatusOr<Database::Table*> Database::FindTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return &it->second;
}

StatusOr<ResultSet> Database::ExecCreateTable(const CreateTableStatement& stmt) {
  if (tables_.count(stmt.table) > 0) {
    if (stmt.if_not_exists) return ResultSet{};
    return Status::AlreadyExists("table exists: " + stmt.table);
  }
  int pk_index = -1;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    for (size_t j = i + 1; j < stmt.columns.size(); ++j) {
      if (stmt.columns[i].name == stmt.columns[j].name) {
        return Status::InvalidArgument("duplicate column: " +
                                       stmt.columns[i].name);
      }
    }
    if (stmt.columns[i].primary_key) {
      if (pk_index >= 0) {
        return Status::InvalidArgument("multiple PRIMARY KEY columns");
      }
      pk_index = static_cast<int>(i);
    }
  }
  SnapshotTableForTxn(stmt.table);
  Table table;
  table.name = stmt.table;
  table.columns = stmt.columns;
  table.pk_index = pk_index;
  tables_.emplace(stmt.table, std::move(table));
  return ResultSet{};
}

StatusOr<ResultSet> Database::ExecDropTable(const DropTableStatement& stmt) {
  if (tables_.count(stmt.table) == 0) {
    if (stmt.if_exists) return ResultSet{};
    return Status::NotFound("no such table: " + stmt.table);
  }
  SnapshotTableForTxn(stmt.table);
  tables_.erase(stmt.table);
  return ResultSet{};
}

StatusOr<ResultSet> Database::ExecInsert(const InsertStatement& stmt) {
  DSTORE_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));

  // Resolve target column indexes.
  std::vector<int> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < table->columns.size(); ++i) {
      targets.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& col : stmt.columns) {
      DSTORE_ASSIGN_OR_RETURN(int idx, table->ColumnIndex(col));
      targets.push_back(idx);
    }
  }

  SnapshotTableForTxn(stmt.table);
  ResultSet result;
  for (const auto& value_exprs : stmt.rows) {
    if (value_exprs.size() != targets.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    std::vector<SqlValue> row(table->columns.size());  // defaults to NULL
    for (size_t i = 0; i < targets.size(); ++i) {
      DSTORE_ASSIGN_OR_RETURN(SqlValue value,
                              EvalExpr(*value_exprs[i], nullptr, nullptr));
      DSTORE_ASSIGN_OR_RETURN(
          row[targets[i]],
          CoerceForColumn(value, table->columns[targets[i]]));
    }
    // NULL-check unspecified PK.
    if (table->pk_index >= 0 && row[table->pk_index].is_null()) {
      return Status::InvalidArgument("PRIMARY KEY value missing");
    }

    if (table->pk_index >= 0) {
      const std::string pk = Table::EncodePk(row[table->pk_index]);
      auto existing = table->pk_map.find(pk);
      if (existing != table->pk_map.end()) {
        if (!stmt.or_replace) {
          return Status::AlreadyExists("duplicate PRIMARY KEY value");
        }
        table->rows[existing->second] = std::move(row);
        ++result.rows_affected;
        continue;
      }
      table->pk_map.emplace(pk, table->rows.size());
    }
    table->rows.push_back(std::move(row));
    ++result.rows_affected;
  }
  return result;
}

StatusOr<std::vector<size_t>> Database::MatchRows(Table* table,
                                                  const Expr* where) {
  std::vector<size_t> matches;
  if (where == nullptr) {
    matches.resize(table->rows.size());
    for (size_t i = 0; i < matches.size(); ++i) matches[i] = i;
    return matches;
  }

  // Fast path: PK equality predicate (col = literal, either order).
  if (table->pk_index >= 0 && where->kind == Expr::Kind::kBinary &&
      where->op == "=") {
    const Expr* column = nullptr;
    const Expr* literal = nullptr;
    if (where->left->kind == Expr::Kind::kColumn &&
        where->right->kind == Expr::Kind::kLiteral) {
      column = where->left.get();
      literal = where->right.get();
    } else if (where->right->kind == Expr::Kind::kColumn &&
               where->left->kind == Expr::Kind::kLiteral) {
      column = where->right.get();
      literal = where->left.get();
    }
    if (column != nullptr &&
        column->column == table->columns[table->pk_index].name) {
      DSTORE_ASSIGN_OR_RETURN(
          SqlValue coerced,
          CoerceForColumn(literal->literal, table->columns[table->pk_index]));
      auto it = table->pk_map.find(Table::EncodePk(coerced));
      if (it != table->pk_map.end()) matches.push_back(it->second);
      return matches;
    }
  }

  for (size_t i = 0; i < table->rows.size(); ++i) {
    DSTORE_ASSIGN_OR_RETURN(
        SqlValue verdict, EvalExpr(*where, &table->columns, &table->rows[i]));
    if (IsTruthy(verdict)) matches.push_back(i);
  }
  return matches;
}

StatusOr<ResultSet> Database::ExecSelect(const SelectStatement& stmt) {
  DSTORE_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));
  DSTORE_ASSIGN_OR_RETURN(std::vector<size_t> matches,
                          MatchRows(table, stmt.where.get()));

  ResultSet result;
  std::vector<Aggregate> aggregates = stmt.aggregates;
  if (aggregates.empty() && stmt.count_star) {
    aggregates.push_back(Aggregate{"COUNT", ""});
  }
  if (!aggregates.empty()) {
    // Computes one aggregate over a subset of row indexes. Fold over
    // non-null values (SQL semantics: aggregates over an empty or all-NULL
    // column are NULL, except COUNT which is 0).
    auto fold = [&](const Aggregate& aggregate,
                    const std::vector<size_t>& subset) -> StatusOr<SqlValue> {
      if (aggregate.func == "COUNT" && aggregate.column.empty()) {
        return SqlValue(static_cast<int64_t>(subset.size()));
      }
      DSTORE_ASSIGN_OR_RETURN(int col, table->ColumnIndex(aggregate.column));
      int64_t count = 0;
      double sum = 0;
      bool sum_is_integral = true;
      int64_t int_sum = 0;
      std::optional<SqlValue> best;  // MIN/MAX
      for (size_t row_index : subset) {
        const SqlValue& value = table->rows[row_index][col];
        if (value.is_null()) continue;
        ++count;
        if (aggregate.func == "SUM" || aggregate.func == "AVG") {
          if (!value.is_numeric()) {
            return Status::InvalidArgument(aggregate.func +
                                           " needs a numeric column");
          }
          sum += value.AsReal();
          if (value.is_integer()) {
            int_sum += value.AsInteger();
          } else {
            sum_is_integral = false;
          }
        } else if (aggregate.func == "MIN" || aggregate.func == "MAX") {
          const bool take = !best.has_value() ||
                            (aggregate.func == "MIN"
                                 ? value.Compare(*best) < 0
                                 : value.Compare(*best) > 0);
          if (take) best = value;
        }
      }
      if (aggregate.func == "COUNT") return SqlValue(count);
      if (count == 0) return SqlValue::Null();
      if (aggregate.func == "SUM") {
        return sum_is_integral ? SqlValue(int_sum) : SqlValue(sum);
      }
      if (aggregate.func == "AVG") {
        return SqlValue(sum / static_cast<double>(count));
      }
      return *best;
    };

    if (stmt.group_by.has_value()) {
      // Any plain selected column must be the grouping column.
      for (const std::string& col : stmt.columns) {
        if (col != *stmt.group_by) {
          return Status::InvalidArgument(
              "column " + col + " must appear in GROUP BY or an aggregate");
        }
      }
      DSTORE_ASSIGN_OR_RETURN(int group_col,
                              table->ColumnIndex(*stmt.group_by));
      result.columns.push_back(*stmt.group_by);
      for (const Aggregate& aggregate : aggregates) {
        result.columns.push_back(
            aggregate.func + "(" +
            (aggregate.column.empty() ? "*" : aggregate.column) + ")");
      }
      // Group rows by the encoded group value, first-seen order.
      std::vector<SqlValue> group_values;
      std::vector<std::vector<size_t>> groups;
      std::unordered_map<std::string, size_t> group_index;
      for (size_t row_index : matches) {
        const SqlValue& value = table->rows[row_index][group_col];
        const std::string encoded = Table::EncodePk(value);
        auto [it, inserted] = group_index.emplace(encoded, groups.size());
        if (inserted) {
          group_values.push_back(value);
          groups.emplace_back();
        }
        groups[it->second].push_back(row_index);
      }
      for (size_t g = 0; g < groups.size(); ++g) {
        std::vector<SqlValue> row = {group_values[g]};
        for (const Aggregate& aggregate : aggregates) {
          DSTORE_ASSIGN_OR_RETURN(SqlValue value, fold(aggregate, groups[g]));
          row.push_back(std::move(value));
        }
        result.rows.push_back(std::move(row));
      }
      return result;
    }

    if (!stmt.columns.empty()) {
      return Status::InvalidArgument(
          "plain columns cannot mix with aggregates without GROUP BY");
    }
    std::vector<SqlValue> row;
    for (const Aggregate& aggregate : aggregates) {
      result.columns.push_back(
          aggregate.func + "(" +
          (aggregate.column.empty() ? "*" : aggregate.column) + ")");
      DSTORE_ASSIGN_OR_RETURN(SqlValue value, fold(aggregate, matches));
      row.push_back(std::move(value));
    }
    result.rows.push_back(std::move(row));
    return result;
  }
  if (stmt.group_by.has_value()) {
    return Status::InvalidArgument("GROUP BY requires aggregate functions");
  }

  std::vector<int> projection;
  if (stmt.select_all) {
    for (size_t i = 0; i < table->columns.size(); ++i) {
      projection.push_back(static_cast<int>(i));
      result.columns.push_back(table->columns[i].name);
    }
  } else {
    for (const std::string& col : stmt.columns) {
      DSTORE_ASSIGN_OR_RETURN(int idx, table->ColumnIndex(col));
      projection.push_back(idx);
      result.columns.push_back(col);
    }
  }

  if (stmt.order_by.has_value()) {
    DSTORE_ASSIGN_OR_RETURN(int order_idx, table->ColumnIndex(*stmt.order_by));
    std::stable_sort(matches.begin(), matches.end(),
                     [&](size_t a, size_t b) {
                       const int c = table->rows[a][order_idx].Compare(
                           table->rows[b][order_idx]);
                       return stmt.order_desc ? c > 0 : c < 0;
                     });
  }

  size_t limit = matches.size();
  if (stmt.limit.has_value()) {
    limit = std::min<size_t>(limit, *stmt.limit);
  }
  result.rows.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    const auto& row = table->rows[matches[i]];
    std::vector<SqlValue> out;
    out.reserve(projection.size());
    for (int idx : projection) out.push_back(row[idx]);
    result.rows.push_back(std::move(out));
  }
  return result;
}

StatusOr<ResultSet> Database::ExecUpdate(const UpdateStatement& stmt) {
  DSTORE_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));
  DSTORE_ASSIGN_OR_RETURN(std::vector<size_t> matches,
                          MatchRows(table, stmt.where.get()));

  std::vector<int> target_cols;
  for (const auto& [col, expr] : stmt.assignments) {
    DSTORE_ASSIGN_OR_RETURN(int idx, table->ColumnIndex(col));
    target_cols.push_back(idx);
  }

  SnapshotTableForTxn(stmt.table);
  ResultSet result;
  for (size_t row_index : matches) {
    std::vector<SqlValue> updated = table->rows[row_index];
    for (size_t a = 0; a < stmt.assignments.size(); ++a) {
      DSTORE_ASSIGN_OR_RETURN(
          SqlValue value,
          EvalExpr(*stmt.assignments[a].second, &table->columns,
                   &table->rows[row_index]));
      DSTORE_ASSIGN_OR_RETURN(
          updated[target_cols[a]],
          CoerceForColumn(value, table->columns[target_cols[a]]));
    }
    // Maintain the PK index if the key changed.
    if (table->pk_index >= 0) {
      const std::string old_pk =
          Table::EncodePk(table->rows[row_index][table->pk_index]);
      const std::string new_pk = Table::EncodePk(updated[table->pk_index]);
      if (old_pk != new_pk) {
        if (table->pk_map.count(new_pk) > 0) {
          return Status::AlreadyExists("UPDATE violates PRIMARY KEY");
        }
        table->pk_map.erase(old_pk);
        table->pk_map.emplace(new_pk, row_index);
      }
    }
    table->rows[row_index] = std::move(updated);
    ++result.rows_affected;
  }
  return result;
}

void Database::RemoveRow(Table* table, size_t row_index) {
  if (table->pk_index >= 0) {
    table->pk_map.erase(Table::EncodePk(table->rows[row_index][table->pk_index]));
  }
  const size_t last = table->rows.size() - 1;
  if (row_index != last) {
    table->rows[row_index] = std::move(table->rows[last]);
    if (table->pk_index >= 0) {
      table->pk_map[Table::EncodePk(table->rows[row_index][table->pk_index])] =
          row_index;
    }
  }
  table->rows.pop_back();
}

StatusOr<ResultSet> Database::ExecDelete(const DeleteStatement& stmt) {
  DSTORE_ASSIGN_OR_RETURN(Table * table, FindTable(stmt.table));
  DSTORE_ASSIGN_OR_RETURN(std::vector<size_t> matches,
                          MatchRows(table, stmt.where.get()));
  SnapshotTableForTxn(stmt.table);
  // Remove from the highest index down so swap-remove cannot disturb a
  // pending lower index.
  std::sort(matches.begin(), matches.end(), std::greater<size_t>());
  for (size_t row_index : matches) RemoveRow(table, row_index);
  ResultSet result;
  result.rows_affected = matches.size();
  return result;
}

// --- Durability ---

Status Database::AppendWal(std::string_view sql) {
  if (wal_fd_ < 0) return Status::Internal("WAL not open");
  if (fault::CrashPointFires("sql.wal.before_append")) {
    return fault::CrashedStatus("sql.wal.before_append");
  }
  Bytes record;
  PutFixed32(&record, static_cast<uint32_t>(sql.size()));
  PutFixed32(&record, Crc32(sql.data(), sql.size()));
  record.insert(record.end(), sql.begin(), sql.end());
  // A torn append crashes after writing only the first half of the record,
  // leaving the kind of partial tail ReplayWal must cope with.
  const bool torn = fault::CrashPointFires("sql.wal.torn_append");
  const uint8_t* p = record.data();
  size_t remaining = torn ? record.size() / 2 : record.size();
  const size_t written = remaining;
  while (remaining > 0) {
    const ssize_t n = ::write(wal_fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("WAL write: " + Errno());
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  wal_bytes_ += written;
  if (torn) return fault::CrashedStatus("sql.wal.torn_append");
  return Status::OK();
}

Status Database::FlushWal(bool sync) {
  if (wal_fd_ < 0) return Status::OK();
  if (fault::CrashPointFires("sql.wal.before_fsync")) {
    // A crash before fsync loses whatever still sat in the page cache.
    // Truncate back to the synced watermark to model that loss.
    ::ftruncate(wal_fd_, static_cast<off_t>(wal_synced_bytes_));
    wal_bytes_ = wal_synced_bytes_;
    return fault::CrashedStatus("sql.wal.before_fsync");
  }
  if (sync && ::fsync(wal_fd_) != 0) {
    return Status::IOError("WAL fsync: " + Errno());
  }
  wal_synced_bytes_ = wal_bytes_;
  if (fault::CrashPointFires("sql.wal.after_fsync")) {
    return fault::CrashedStatus("sql.wal.after_fsync");
  }
  return Status::OK();
}

Status Database::ReplayWal() {
  const std::string wal_path = path_ + ".wal";
  const int fd = ::open(wal_path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open WAL for replay: " + Errno());
  }
  Bytes content;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read WAL: " + Errno());
    }
    if (n == 0) break;
    content.insert(content.end(), buf, buf + n);
  }
  ::close(fd);

  {
    MutexLock lock(mu_);
    replaying_ = true;
  }
  size_t pos = 0;
  // End of the last record that left the log outside a BEGIN..COMMIT group;
  // everything past it (torn tails, dangling transactions) is discarded.
  size_t committed_pos = 0;
  while (pos + 8 <= content.size()) {
    const uint32_t len = DecodeFixed32(content.data() + pos);
    const uint32_t crc = DecodeFixed32(content.data() + pos + 4);
    if (pos + 8 + len > content.size()) break;  // torn tail record
    const std::string sql(
        reinterpret_cast<const char*>(content.data() + pos + 8), len);
    if (Crc32(sql.data(), sql.size()) != crc) break;  // corrupt tail
    auto parsed = ParseStatement(sql);
    if (!parsed.ok()) break;
    MutexLock lock(mu_);
    auto result = ExecuteLocked(*parsed, "");
    if (!result.ok()) {
      // A statement that applied before the crash cannot fail on replay
      // unless the log is damaged; stop here, keeping the durable prefix.
      break;
    }
    pos += 8 + len;
    if (!in_txn_) committed_pos = pos;
  }
  {
    MutexLock lock(mu_);
    if (in_txn_) {
      // The log ends inside a BEGIN..COMMIT group (torn commit). Undo the
      // partial transaction atomically through the normal rollback path.
      auto rollback = ParseStatement("ROLLBACK");
      if (rollback.ok()) ExecuteLocked(*rollback, "").ok();
    }
    replaying_ = false;
  }
  // Trim everything the replay rejected so future appends land after a
  // valid record, not after garbage that would mask them on the next
  // replay. Runs before the append fd opens (see Open).
  if (committed_pos < content.size()) {
    if (::truncate(wal_path.c_str(), static_cast<off_t>(committed_pos)) != 0) {
      return Status::IOError("truncate WAL tail: " + Errno());
    }
  }
  return Status::OK();
}

Status Database::LoadSnapshot() {
  const std::string snap_path = path_ + ".snapshot";
  const int fd = ::open(snap_path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError("open snapshot: " + Errno());
  }
  Bytes content;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read snapshot: " + Errno());
    }
    if (n == 0) break;
    content.insert(content.end(), buf, buf + n);
  }
  ::close(fd);

  if (content.size() < sizeof(kSnapshotMagic) + 8 ||
      std::memcmp(content.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
          0) {
    return Status::Corruption("bad snapshot magic");
  }
  // Trailing CRC covers everything before it.
  const uint32_t stored_crc = DecodeFixed32(content.data() + content.size() - 4);
  if (Crc32(content.data(), content.size() - 4) != stored_crc) {
    return Status::Corruption("snapshot CRC mismatch");
  }

  size_t pos = sizeof(kSnapshotMagic);
  const uint32_t version = DecodeFixed32(content.data() + pos);
  pos += 4;
  if (version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version");
  }
  const uint32_t num_tables = DecodeFixed32(content.data() + pos);
  pos += 4;

  std::map<std::string, Table> tables;
  for (uint32_t t = 0; t < num_tables; ++t) {
    Table table;
    DSTORE_ASSIGN_OR_RETURN(Bytes name, GetLengthPrefixed(content, &pos));
    table.name = ToString(name);
    DSTORE_ASSIGN_OR_RETURN(uint64_t num_cols, GetVarint64(content, &pos));
    for (uint64_t c = 0; c < num_cols; ++c) {
      ColumnDef col;
      DSTORE_ASSIGN_OR_RETURN(Bytes col_name, GetLengthPrefixed(content, &pos));
      col.name = ToString(col_name);
      if (pos + 2 > content.size()) {
        return Status::Corruption("truncated snapshot column");
      }
      col.type = static_cast<ColumnType>(content[pos++]);
      col.primary_key = content[pos++] != 0;
      if (col.primary_key) table.pk_index = static_cast<int>(c);
      table.columns.push_back(std::move(col));
    }
    DSTORE_ASSIGN_OR_RETURN(uint64_t num_rows, GetVarint64(content, &pos));
    table.rows.reserve(num_rows);
    for (uint64_t r = 0; r < num_rows; ++r) {
      std::vector<SqlValue> row;
      row.reserve(table.columns.size());
      for (size_t c = 0; c < table.columns.size(); ++c) {
        DSTORE_ASSIGN_OR_RETURN(SqlValue value,
                                SqlValue::DecodeFrom(content, &pos));
        row.push_back(std::move(value));
      }
      if (table.pk_index >= 0) {
        table.pk_map.emplace(Table::EncodePk(row[table.pk_index]),
                             table.rows.size());
      }
      table.rows.push_back(std::move(row));
    }
    const std::string table_name = table.name;
    tables.emplace(table_name, std::move(table));
  }
  MutexLock lock(mu_);
  tables_ = std::move(tables);
  return Status::OK();
}

Status Database::WriteSnapshotLocked() {
  if (path_.empty()) return Status::OK();

  Bytes out;
  out.insert(out.end(), kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic));
  PutFixed32(&out, kSnapshotVersion);
  PutFixed32(&out, static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, table] : tables_) {
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, table.columns.size());
    for (const ColumnDef& col : table.columns) {
      PutLengthPrefixed(&out, col.name);
      out.push_back(static_cast<uint8_t>(col.type));
      out.push_back(col.primary_key ? 1 : 0);
    }
    PutVarint64(&out, table.rows.size());
    for (const auto& row : table.rows) {
      for (const SqlValue& value : row) value.EncodeTo(&out);
    }
  }
  PutFixed32(&out, Crc32(out));

  const std::string snap_path = path_ + ".snapshot";
  const std::string temp_path = snap_path + ".tmp";
  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("open snapshot temp: " + Errno());
  const uint8_t* p = out.data();
  size_t remaining = out.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("write snapshot: " + Errno());
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  if (::rename(temp_path.c_str(), snap_path.c_str()) != 0) {
    return Status::IOError("rename snapshot: " + Errno());
  }

  // Truncate the WAL: its contents are folded into the snapshot.
  if (wal_fd_ >= 0) {
    if (::ftruncate(wal_fd_, 0) != 0) {
      return Status::IOError("truncate WAL: " + Errno());
    }
    wal_bytes_ = 0;
    wal_synced_bytes_ = 0;
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  MutexLock lock(mu_);
  if (in_txn_) {
    return Status::InvalidArgument("cannot checkpoint inside a transaction");
  }
  return WriteSnapshotLocked();
}

std::vector<std::string> Database::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

bool Database::in_transaction() const {
  MutexLock lock(mu_);
  return in_txn_;
}

size_t Database::WalBytes() const {
  MutexLock lock(mu_);
  return wal_bytes_;
}

}  // namespace dstore::sql
