#ifndef DSTORE_STORE_SQL_AST_H_
#define DSTORE_STORE_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "store/sql/value.h"

namespace dstore::sql {

// Expression tree for WHERE clauses, SET values, and INSERT values.
struct Expr {
  enum class Kind {
    kLiteral,
    kColumn,
    kUnaryMinus,
    kNot,
    kIsNull,     // child IS NULL
    kIsNotNull,  // child IS NOT NULL
    kBinary,     // op in {=, !=, <, <=, >, >=, +, -, *, /, %, AND, OR}
  };

  Kind kind;
  SqlValue literal;       // kLiteral
  std::string column;     // kColumn
  std::string op;         // kBinary
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;
};

using ExprPtr = std::unique_ptr<Expr>;

struct ColumnDef {
  std::string name;
  ColumnType type;
  bool primary_key = false;
};

struct CreateTableStatement {
  std::string table;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
};

struct DropTableStatement {
  std::string table;
  bool if_exists = false;
};

struct InsertStatement {
  std::string table;
  bool or_replace = false;
  std::vector<std::string> columns;  // empty = all columns in schema order
  std::vector<std::vector<ExprPtr>> rows;
};

// Aggregate projection, e.g. SUM(score) or COUNT(*) (column empty = "*",
// valid only for COUNT).
struct Aggregate {
  std::string func;    // COUNT, SUM, AVG, MIN, MAX (uppercase)
  std::string column;  // empty = *
};

struct SelectStatement {
  std::string table;
  bool select_all = false;       // SELECT *
  bool count_star = false;       // SELECT COUNT(*)
  std::vector<Aggregate> aggregates;  // aggregate query when non-empty
  std::vector<std::string> columns;
  ExprPtr where;                 // may be null
  // GROUP BY column. Output rows are [group value, aggregates...] in group
  // first-seen order; any plain selected column must equal this column.
  std::optional<std::string> group_by;
  std::optional<std::string> order_by;
  bool order_desc = false;
  std::optional<uint64_t> limit;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  // may be null
};

struct BeginStatement {};
struct CommitStatement {};
struct RollbackStatement {};

struct Statement {
  enum class Kind {
    kCreateTable,
    kDropTable,
    kInsert,
    kSelect,
    kUpdate,
    kDelete,
    kBegin,
    kCommit,
    kRollback,
  };

  Kind kind;
  CreateTableStatement create_table;
  DropTableStatement drop_table;
  InsertStatement insert;
  SelectStatement select;
  UpdateStatement update;
  DeleteStatement delete_from;
};

}  // namespace dstore::sql

#endif  // DSTORE_STORE_SQL_AST_H_
