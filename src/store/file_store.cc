#include "store/file_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "fault/fault.h"
#include "store/fs_util.h"

namespace dstore {

namespace {
constexpr char kEntryPrefix[] = "kv_";
constexpr char kEntrySuffix[] = ".val";

std::string Errno() { return std::strerror(errno); }
}  // namespace

StatusOr<std::unique_ptr<FileStore>> FileStore::Open(
    const std::filesystem::path& root, const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IOError("create_directories: " + ec.message());
  }
  return std::unique_ptr<FileStore>(new FileStore(root, options));
}

std::filesystem::path FileStore::PathFor(const std::string& key) const {
  return root_ / (kEntryPrefix + HexEncode(ToBytes(key)) + kEntrySuffix);
}

Status FileStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  if (fault::CrashPointFires("file.put.before_write")) {
    return fault::CrashedStatus("file.put.before_write");
  }
  std::filesystem::path temp_path;
  {
    MutexLock lock(temp_mu_);
    temp_path = root_ / ("tmp_" + std::to_string(temp_counter_++) + "_" +
                         std::to_string(::getpid()));
  }

  const int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("open temp: " + Errno());

  // A torn write crashes with only half the payload in the temp file —
  // which stays behind as litter, exactly as after a real crash. The
  // published entry is untouched because the rename never happens.
  const bool torn = fault::CrashPointFires("file.put.torn_write");
  const uint8_t* p = value->data();
  size_t remaining = torn ? value->size() / 2 : value->size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(temp_path.c_str());
      return Status::IOError("write: " + Errno());
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  if (torn) {
    ::close(fd);
    return fault::CrashedStatus("file.put.torn_write");
  }
  if (options_.sync_writes && ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(temp_path.c_str());
    return Status::IOError("fsync: " + Errno());
  }
  if (::close(fd) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IOError("close: " + Errno());
  }
  if (fault::CrashPointFires("file.put.before_rename")) {
    // Crash after the temp file is durable but before publication: the old
    // value must still be visible, the temp file is litter.
    return fault::CrashedStatus("file.put.before_rename");
  }
  if (::rename(temp_path.c_str(), PathFor(key).c_str()) != 0) {
    ::unlink(temp_path.c_str());
    return Status::IOError("rename: " + Errno());
  }
  if (fault::CrashPointFires("file.put.before_dirsync")) {
    // Crash after rename but before the directory entry is durable: the
    // kernel may or may not have flushed it, so recovery must tolerate
    // either the old or the new value — never a torn one.
    return fault::CrashedStatus("file.put.before_dirsync");
  }
  // rename() swaps the directory entry atomically, but only in the page
  // cache; a power cut here could roll the directory back and lose the
  // fully-synced file. Syncing the parent closes that gap.
  if (options_.sync_writes) {
    DSTORE_RETURN_IF_ERROR(SyncDir(root_));
  }
  if (fault::CrashPointFires("file.put.after_rename")) {
    // Crash after publication: the new value is durable even though the
    // caller never saw an acknowledgement.
    return fault::CrashedStatus("file.put.after_rename");
  }
  return Status::OK();
}

StatusOr<ValuePtr> FileStore::Get(const std::string& key) {
  const std::filesystem::path path = PathFor(key);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such key: " + key);
    return Status::IOError("open: " + Errno());
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError("lseek: " + Errno());
  }
  ::lseek(fd, 0, SEEK_SET);
  Bytes data(static_cast<size_t>(size));
  size_t read_so_far = 0;
  while (read_so_far < data.size()) {
    const ssize_t n =
        ::read(fd, data.data() + read_so_far, data.size() - read_so_far);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("read: " + Errno());
    }
    if (n == 0) break;  // truncated concurrently; return what we have
    read_so_far += static_cast<size_t>(n);
  }
  ::close(fd);
  data.resize(read_so_far);
  return MakeValue(std::move(data));
}

Status FileStore::Delete(const std::string& key) {
  if (::unlink(PathFor(key).c_str()) != 0 && errno != ENOENT) {
    return Status::IOError("unlink: " + Errno());
  }
  return Status::OK();
}

StatusOr<bool> FileStore::Contains(const std::string& key) {
  std::error_code ec;
  const bool exists = std::filesystem::exists(PathFor(key), ec);
  if (ec) return Status::IOError("exists: " + ec.message());
  return exists;
}

StatusOr<std::vector<std::string>> FileStore::ListKeys() {
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kEntryPrefix, 0) != 0) continue;
    const size_t suffix_pos = name.rfind(kEntrySuffix);
    if (suffix_pos == std::string::npos) continue;
    const std::string hex =
        name.substr(sizeof(kEntryPrefix) - 1,
                    suffix_pos - (sizeof(kEntryPrefix) - 1));
    auto decoded = HexDecode(hex);
    if (!decoded.ok()) continue;  // foreign file; ignore
    keys.push_back(ToString(*decoded));
  }
  if (ec) return Status::IOError("directory_iterator: " + ec.message());
  return keys;
}

StatusOr<size_t> FileStore::Count() {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, ListKeys());
  return keys.size();
}

Status FileStore::Clear() {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, ListKeys());
  for (const std::string& key : keys) {
    DSTORE_RETURN_IF_ERROR(Delete(key));
  }
  return Status::OK();
}

}  // namespace dstore
