#ifndef DSTORE_STORE_CLOUD_SERVER_H_
#define DSTORE_STORE_CLOUD_SERVER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/sync.h"
#include "net/http.h"
#include "net/latency_model.h"
#include "net/server.h"

namespace dstore {

// Simulated cloud object store: an HTTP/1.1 REST server whose responses are
// delayed by a configurable WAN latency model. Stands in for the paper's
// "Cloud Store 1" and "Cloud Store 2" (commercial cloud stores reached over
// a wide-area network). The REST surface:
//
//   PUT    /objects/<hexkey>   body = value  -> 200, ETag header
//   GET    /objects/<hexkey>  [If-None-Match: <etag>]
//                              -> 200 + body + ETag | 304 | 404
//   HEAD   /objects/<hexkey>   -> 200 | 404
//   DELETE /objects/<hexkey>   -> 200
//   GET    /keys               -> newline-separated hex keys
//   GET    /count              -> decimal count
//   POST   /clear              -> 200
//
// plus the observability routes from net/obs_endpoint.h (GET /metrics,
// /metrics.json, /traces, /healthz), served without the injected WAN delay
// — a scrape must not pay the simulated round trip.
//
// The conditional GET path implements the paper's Fig. 7 revalidation
// protocol server-side: a current object is confirmed with a 304 and no
// body, saving the transfer.
class CloudStoreServer {
 public:
  // Takes ownership of `latency` (pass NoLatency for a LAN-local store).
  static StatusOr<std::unique_ptr<CloudStoreServer>> Start(
      std::unique_ptr<LatencyModel> latency, uint16_t port = 0);

  ~CloudStoreServer();

  uint16_t port() const { return server_->port(); }
  void Stop();

  // Test/inspection hook: number of stored objects.
  size_t ObjectCount() const;

 private:
  struct Object {
    Bytes value;
    std::string etag;
  };

  CloudStoreServer() = default;

  void HandleConnection(Socket socket);
  HttpResponse HandleRequest(const HttpRequest& request);

  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<ThreadedServer> server_;
  int objects_collector_id_ = 0;  // scrape-time object-count gauge refresh
  mutable Mutex mu_;
  std::unordered_map<std::string, Object> objects_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_STORE_CLOUD_SERVER_H_
