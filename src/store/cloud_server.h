#ifndef DSTORE_STORE_CLOUD_SERVER_H_
#define DSTORE_STORE_CLOUD_SERVER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "admit/server_queue.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/async_server.h"
#include "net/http.h"
#include "net/latency_model.h"
#include "obs/metrics.h"

namespace dstore {

// Simulated cloud object store: an HTTP/1.1 REST server whose responses are
// delayed by a configurable WAN latency model. Stands in for the paper's
// "Cloud Store 1" and "Cloud Store 2" (commercial cloud stores reached over
// a wide-area network). The REST surface:
//
//   PUT    /objects/<hexkey>   body = value  -> 200, ETag header
//   GET    /objects/<hexkey>  [If-None-Match: <etag>]
//                              -> 200 + body + ETag | 304 | 404
//   HEAD   /objects/<hexkey>   -> 200 | 404
//   DELETE /objects/<hexkey>   -> 200
//   GET    /keys               -> newline-separated hex keys
//   GET    /count              -> decimal count
//   POST   /clear              -> 200
//
// plus the replication verbs src/replica/ speaks when this server hosts a
// replica of a primary-backup group (state lives server-side, so fencing
// holds across independent client handles):
//
//   POST   /replica/apply      headers x-dstore-replica-{op,key,seq,epoch},
//                              body = value -> 200 | 412 when the epoch is
//                              below the highest this replica accepted
//                              (a deposed primary's late write, fenced)
//   POST   /replica/fence      headers x-dstore-replica-{epoch,applied} ->
//                              raises the accepted epoch, caps the applied
//                              watermark
//   GET    /replica/status     -> "<epoch> <applied>"
//
// plus the observability routes from net/obs_endpoint.h (GET /metrics,
// /metrics.json, /traces, /healthz), served without the injected WAN delay
// — a scrape must not pay the simulated round trip.
//
// The conditional GET path implements the paper's Fig. 7 revalidation
// protocol server-side: a current object is confirmed with a 304 and no
// body, saving the transfer.
// Every data-plane request passes through an admit::ServerQueue before any
// handler or WAN-delay work: bounded concurrency, a bounded FIFO, and
// shedding beyond that — 503 "Overloaded" for shed requests, 504 "Timed
// Out" when the caller's x-dstore-deadline-ms budget expires first. The
// obs routes take the queue's priority lane, so the server stays
// scrapeable while it sheds. The x-dstore-deadline-ms request header (sent
// by CloudStoreClient from the ambient admit::Deadline) is re-established
// as the handler's deadline, so budget exhaustion is detected server-side
// before the simulated WAN delay is paid.
class CloudStoreServer {
 public:
  // Takes ownership of `latency` (pass NoLatency for a LAN-local store).
  // `queue_options.name` defaults to "cloud" when left at its stock value.
  // `core` picks the transport engine (async reactor by default; the
  // threaded fallback is kept for one transition PR — see
  // net/async_server.h).
  static StatusOr<std::unique_ptr<CloudStoreServer>> Start(
      std::unique_ptr<LatencyModel> latency, uint16_t port = 0,
      admit::ServerQueue::Options queue_options = {},
      ServerCore core = DefaultServerCore());

  ~CloudStoreServer();

  uint16_t port() const { return server_->port(); }
  void Stop();

  // Test/inspection hook: number of stored objects.
  size_t ObjectCount() const;

  // The admission queue in front of the data plane (never null once
  // started).
  admit::ServerQueue* queue() { return queue_.get(); }

 private:
  struct Object {
    Bytes value;
    std::string etag;
  };

  CloudStoreServer() = default;

  // Full per-request pipeline (obs priority lane, deadline + trace
  // re-establishment, admission, handler, WAN delay); runs on a worker
  // thread of the server core, one invocation per pipelined request.
  HttpResponse HandleHttpRequest(const HttpRequest& request);
  HttpResponse HandleRequest(const HttpRequest& request);
  HttpResponse HandleReplicaRequest(const HttpRequest& request);

  std::unique_ptr<LatencyModel> latency_;
  std::unique_ptr<admit::ServerQueue> queue_;
  std::unique_ptr<Server> server_;
  obs::Histogram* request_ms_ = nullptr;
  int objects_collector_id_ = 0;  // scrape-time object-count gauge refresh
  mutable Mutex mu_;
  std::unordered_map<std::string, Object> objects_ GUARDED_BY(mu_);
  // Replication watermarks (see /replica/* above).
  uint64_t replica_epoch_ GUARDED_BY(mu_) = 0;
  uint64_t replica_applied_ GUARDED_BY(mu_) = 0;
};

}  // namespace dstore

#endif  // DSTORE_STORE_CLOUD_SERVER_H_
