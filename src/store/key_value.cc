#include "store/key_value.h"

#include "crypto/sha256.h"

namespace dstore {

std::string ComputeEtag(const Bytes& value) {
  const auto digest = Sha256::Hash(value);
  // 16 hex chars (64 bits) is plenty for version identification.
  return HexEncode(Bytes(digest.begin(), digest.begin() + 8));
}

std::vector<StatusOr<ValuePtr>> KeyValueStore::MultiGet(
    const std::vector<std::string>& keys) {
  std::vector<StatusOr<ValuePtr>> results;
  results.reserve(keys.size());
  for (const std::string& key : keys) results.push_back(Get(key));
  return results;
}

Status KeyValueStore::MultiPut(
    const std::vector<std::pair<std::string, ValuePtr>>& entries) {
  for (const auto& [key, value] : entries) {
    DSTORE_RETURN_IF_ERROR(Put(key, value));
  }
  return Status::OK();
}

StatusOr<ConditionalGetResult> KeyValueStore::GetIfChanged(
    const std::string& key, const std::string& etag) {
  DSTORE_ASSIGN_OR_RETURN(ValuePtr value, Get(key));
  ConditionalGetResult result;
  result.etag = ComputeEtag(*value);
  if (!etag.empty() && result.etag == etag) {
    result.not_modified = true;
    return result;
  }
  result.value = std::move(value);
  return result;
}

}  // namespace dstore
