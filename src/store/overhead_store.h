#ifndef DSTORE_STORE_OVERHEAD_STORE_H_
#define DSTORE_STORE_OVERHEAD_STORE_H_

#include <chrono>
#include <memory>
#include <string>

#include "store/key_value.h"

namespace dstore {

// KeyValueStore decorator that adds a fixed per-operation latency (plus an
// optional per-byte marshalling term) before delegating.
//
// Why this exists: the paper's evaluation measures *Java* clients — JDBC,
// java.io file streams, Jedis — whose fixed per-call overhead is on the
// order of 0.1-1 ms. This library's native clients cost single-digit
// microseconds, which erases client-stack-dominated orderings such as
// "Redis beats the file system for small objects" (Fig. 9). The benchmark
// harness wraps local stores in OverheadStore with constants calibrated to
// the paper's stacks (and flags to disable it), so those orderings can be
// reproduced *and* ablated. See DESIGN.md's substitution table.
//
// The delay is implemented as a calibrated spin (not sleep_for) because
// sub-millisecond sleeps have scheduler-quantum jitter that would swamp the
// modeled constant.
class OverheadStore : public KeyValueStore {
 public:
  struct Overheads {
    int64_t per_op_nanos = 0;
    double per_byte_nanos = 0;  // applied to value sizes moved
  };

  OverheadStore(std::shared_ptr<KeyValueStore> inner, Overheads overheads)
      : inner_(std::move(inner)), overheads_(overheads) {}

  Status Put(const std::string& key, ValuePtr value) override {
    Delay(value ? value->size() : 0);
    return inner_->Put(key, std::move(value));
  }
  StatusOr<ValuePtr> Get(const std::string& key) override {
    DSTORE_ASSIGN_OR_RETURN(ValuePtr value, inner_->Get(key));
    Delay(value->size());
    return value;
  }
  Status Delete(const std::string& key) override {
    Delay(0);
    return inner_->Delete(key);
  }
  StatusOr<bool> Contains(const std::string& key) override {
    Delay(0);
    return inner_->Contains(key);
  }
  StatusOr<std::vector<std::string>> ListKeys() override {
    Delay(0);
    return inner_->ListKeys();
  }
  StatusOr<size_t> Count() override {
    Delay(0);
    return inner_->Count();
  }
  Status Clear() override { return inner_->Clear(); }
  StatusOr<ConditionalGetResult> GetIfChanged(
      const std::string& key, const std::string& etag) override {
    Delay(0);
    return inner_->GetIfChanged(key, etag);
  }
  std::string Name() const override { return inner_->Name(); }

  KeyValueStore* inner() { return inner_.get(); }

 private:
  void Delay(size_t bytes) const {
    const int64_t total =
        overheads_.per_op_nanos +
        static_cast<int64_t>(overheads_.per_byte_nanos *
                             static_cast<double>(bytes));
    if (total <= 0) return;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(total);
    while (std::chrono::steady_clock::now() < deadline) {
      // spin: sub-ms accuracy matters more than the burned cycles here
    }
  }

  std::shared_ptr<KeyValueStore> inner_;
  Overheads overheads_;
};

}  // namespace dstore

#endif  // DSTORE_STORE_OVERHEAD_STORE_H_
