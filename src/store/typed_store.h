#ifndef DSTORE_STORE_TYPED_STORE_H_
#define DSTORE_STORE_TYPED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "store/key_value.h"

namespace dstore {

// The paper's interface is a generic KeyValue<K,V>; the byte-oriented
// KeyValueStore is its transport. TypedStore<K,V> recovers the typed view:
// keys and values go through Serializer specializations, so applications
// deal in their own types while every KeyValueStore backend (and every
// decorator — caching, encryption, monitoring) keeps working underneath.
//
//   TypedStore<int64_t, UserProfile> users(udsm.GetStoreShared("db"));
//   users.Put(42, profile);
//   StatusOr<UserProfile> p = users.Get(42);
//
// Provide Serializer<T> specializations for custom types (see the
// StringSerializer/VarintSerializer patterns below).

// --- Serializers -----------------------------------------------------------

// Primary template: specialize for your type.
template <typename T, typename Enable = void>
struct Serializer;

template <>
struct Serializer<std::string> {
  static Bytes Serialize(const std::string& value) { return ToBytes(value); }
  static StatusOr<std::string> Deserialize(const Bytes& data) {
    return ToString(data);
  }
};

template <>
struct Serializer<Bytes> {
  static Bytes Serialize(const Bytes& value) { return value; }
  static StatusOr<Bytes> Deserialize(const Bytes& data) { return data; }
};

// All integral types (little-endian fixed width; key encoding is also
// lexicographically safe per width because keys hex-encode downstream).
template <typename T>
struct Serializer<T, std::enable_if_t<std::is_integral_v<T>>> {
  static Bytes Serialize(T value) {
    Bytes out;
    PutFixed64(&out, static_cast<uint64_t>(static_cast<int64_t>(value)));
    return out;
  }
  static StatusOr<T> Deserialize(const Bytes& data) {
    if (data.size() != 8) {
      return Status::Corruption("integer value has wrong width");
    }
    return static_cast<T>(static_cast<int64_t>(DecodeFixed64(data.data())));
  }
};

template <>
struct Serializer<double> {
  static Bytes Serialize(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    Bytes out;
    PutFixed64(&out, bits);
    return out;
  }
  static StatusOr<double> Deserialize(const Bytes& data) {
    if (data.size() != 8) {
      return Status::Corruption("double value has wrong width");
    }
    const uint64_t bits = DecodeFixed64(data.data());
    double value;
    __builtin_memcpy(&value, &bits, sizeof(value));
    return value;
  }
};

// std::vector<T> of serializable elements (length-prefixed concatenation).
template <typename T>
struct Serializer<std::vector<T>,
                  std::enable_if_t<!std::is_same_v<T, uint8_t>>> {
  static Bytes Serialize(const std::vector<T>& values) {
    Bytes out;
    PutVarint64(&out, values.size());
    for (const T& value : values) {
      PutLengthPrefixed(&out, Serializer<T>::Serialize(value));
    }
    return out;
  }
  static StatusOr<std::vector<T>> Deserialize(const Bytes& data) {
    size_t pos = 0;
    DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(data, &pos));
    std::vector<T> values;
    values.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      DSTORE_ASSIGN_OR_RETURN(Bytes element, GetLengthPrefixed(data, &pos));
      DSTORE_ASSIGN_OR_RETURN(T value, Serializer<T>::Deserialize(element));
      values.push_back(std::move(value));
    }
    return values;
  }
};

// --- TypedStore -------------------------------------------------------------

template <typename K, typename V>
class TypedStore {
 public:
  explicit TypedStore(std::shared_ptr<KeyValueStore> store)
      : store_(std::move(store)) {}

  Status Put(const K& key, const V& value) {
    return store_->Put(EncodeKey(key),
                       MakeValue(Serializer<V>::Serialize(value)));
  }

  StatusOr<V> Get(const K& key) {
    DSTORE_ASSIGN_OR_RETURN(ValuePtr raw, store_->Get(EncodeKey(key)));
    return Serializer<V>::Deserialize(*raw);
  }

  Status Delete(const K& key) { return store_->Delete(EncodeKey(key)); }

  StatusOr<bool> Contains(const K& key) {
    return store_->Contains(EncodeKey(key));
  }

  StatusOr<size_t> Count() { return store_->Count(); }
  Status Clear() { return store_->Clear(); }

  // All stored keys, decoded. Fails if the store holds foreign keys.
  StatusOr<std::vector<K>> ListKeys() {
    DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> raw, store_->ListKeys());
    std::vector<K> keys;
    keys.reserve(raw.size());
    for (const std::string& encoded : raw) {
      DSTORE_ASSIGN_OR_RETURN(
          K key, Serializer<K>::Deserialize(ToBytes(encoded)));
      keys.push_back(std::move(key));
    }
    return keys;
  }

  KeyValueStore* underlying() { return store_.get(); }

 private:
  static std::string EncodeKey(const K& key) {
    return ToString(Serializer<K>::Serialize(key));
  }

  std::shared_ptr<KeyValueStore> store_;
};

}  // namespace dstore

#endif  // DSTORE_STORE_TYPED_STORE_H_
