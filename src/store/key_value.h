#ifndef DSTORE_STORE_KEY_VALUE_H_
#define DSTORE_STORE_KEY_VALUE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dstore {

// Result of a conditional (revalidating) read. `not_modified` set means the
// caller's version is current and no value body was transferred — the
// If-Modified-Since-style protocol of paper Fig. 7.
struct ConditionalGetResult {
  bool not_modified = false;
  ValuePtr value;     // set when not_modified is false
  std::string etag;   // current version identifier
};

// The UDSM's common key-value interface — the C++ analogue of the paper's
//   public interface KeyValue<K,V>
// (Section II.A). Every data store implements it: file systems, SQL
// databases, cloud object stores, and caches alike. Code written against
// this interface (async wrappers, performance monitoring, the workload
// generator) works with every store, and any store can serve as a cache or
// secondary repository for any other.
//
// All implementations are thread-safe.
class KeyValueStore {
 public:
  virtual ~KeyValueStore() = default;

  // Stores `value` under `key`, replacing any existing value.
  virtual Status Put(const std::string& key, ValuePtr value) = 0;

  // Returns the value or NotFound.
  virtual StatusOr<ValuePtr> Get(const std::string& key) = 0;

  // Removes `key`. Returns OK whether or not the key existed.
  virtual Status Delete(const std::string& key) = 0;

  // True if the key exists.
  virtual StatusOr<bool> Contains(const std::string& key) = 0;

  // All keys currently stored (unordered).
  virtual StatusOr<std::vector<std::string>> ListKeys() = 0;

  // Number of stored entries.
  virtual StatusOr<size_t> Count() = 0;

  // Removes every entry.
  virtual Status Clear() = 0;

  // Conditional read for cache revalidation: if the stored version still
  // matches `etag`, returns not_modified=true and no value. The default
  // implementation fetches the value and compares digests client-side;
  // stores with server-side support (the cloud store) override it so an
  // unmodified object is never transferred.
  virtual StatusOr<ConditionalGetResult> GetIfChanged(const std::string& key,
                                                      const std::string& etag);

  virtual std::string Name() const = 0;

  // Batch reads: one result per key, in order. The default loops over
  // Get(); networked stores override it to answer the whole batch in one
  // round trip, amortizing per-request latency.
  virtual std::vector<StatusOr<ValuePtr>> MultiGet(
      const std::vector<std::string>& keys);

  // Batch writes. The default loops over Put() and stops at the first
  // error; networked stores override with a single-round-trip fast path.
  virtual Status MultiPut(
      const std::vector<std::pair<std::string, ValuePtr>>& entries);

  // Convenience helpers.
  Status PutString(const std::string& key, std::string_view value) {
    return Put(key, MakeValue(value));
  }
  StatusOr<std::string> GetString(const std::string& key) {
    DSTORE_ASSIGN_OR_RETURN(ValuePtr value, Get(key));
    return ToString(*value);
  }
};

// Computes the entity tag this library uses for revalidation: a short hex
// digest of the value bytes.
std::string ComputeEtag(const Bytes& value);

}  // namespace dstore

#endif  // DSTORE_STORE_KEY_VALUE_H_
