#ifndef DSTORE_STORE_CLOUD_CLIENT_H_
#define DSTORE_STORE_CLOUD_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/sync.h"
#include "net/http.h"
#include "store/key_value.h"

namespace dstore {

// KeyValueStore client for a CloudStoreServer (or any store speaking the
// same REST surface). Maintains one keep-alive HTTP connection, used
// serially under a lock; reconnects once on failure. Overrides GetIfChanged
// with a true conditional GET (If-None-Match -> 304), so revalidating an
// unmodified object transfers no body — the bandwidth saving of the paper's
// Fig. 7 protocol.
//
// Deadline-aware (src/admit/): when an ambient admit::Deadline is active,
// an already-expired budget fails with TimedOut before any bytes are sent,
// and the remaining budget is forwarded as the x-dstore-deadline-ms header
// so the server can shed or abandon the request on its side. Overload
// answers map to distinct statuses: HTTP 503 -> Overloaded, 504 ->
// TimedOut — never anything resembling a data-plane result.
class CloudStoreClient : public KeyValueStore {
 public:
  static StatusOr<std::unique_ptr<CloudStoreClient>> Connect(
      const std::string& host, uint16_t port, std::string name = "cloud");

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  StatusOr<ConditionalGetResult> GetIfChanged(const std::string& key,
                                              const std::string& etag) override;
  std::string Name() const override { return name_; }

  // --- Replication verbs (the /replica/* routes of cloud_server.h) ---
  // These carry primitives rather than replica/ types so the store layer
  // stays below src/replica/ in the dependency graph.

  // Applies one replication log entry under `epoch`; `value` may be null
  // for delete/clear. A stale epoch (HTTP 412) surfaces as Unavailable
  // with a "fenced:" message prefix — the marker replica::IsFenced keys on.
  Status ReplicaApply(const std::string& op, const std::string& key,
                      const Bytes* value, uint64_t seq, uint64_t epoch);
  // Raises the replica's accepted epoch and caps its applied watermark.
  Status ReplicaFence(uint64_t epoch, uint64_t max_applied);
  // {accepted epoch, applied watermark}.
  StatusOr<std::pair<uint64_t, uint64_t>> ReplicaStatus();

  // Etag of the last Put, for callers that track versions.
  std::string last_put_etag() const;

 private:
  CloudStoreClient(std::string host, uint16_t port, std::string name)
      : host_(std::move(host)), port_(port), name_(std::move(name)) {}

  static std::string ObjectPath(const std::string& key);
  // Performs one request with reconnect-once semantics; checks the ambient
  // deadline first and attaches its remaining budget as a header.
  StatusOr<HttpResponse> RoundTrip(HttpRequest& request) REQUIRES(mu_);
  Status EnsureConnected() REQUIRES(mu_);

  std::string host_;
  uint16_t port_;
  std::string name_;
  mutable Mutex mu_;
  std::optional<HttpConnection> conn_ GUARDED_BY(mu_);
  std::string last_put_etag_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_STORE_CLOUD_CLIENT_H_
