#include "store/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dstore {

Status SyncDir(const std::filesystem::path& dir) {
  sync_internal::CheckBlocking("SyncDir");
  const std::string path = dir.empty() ? "." : dir.string();
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir for fsync: " + path + ": " +
                           std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("fsync dir: " + path + ": " + err);
  }
  if (::close(fd) != 0) {
    return Status::IOError("close dir: " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteFileDurably(const std::filesystem::path& path, const Bytes& data,
                        size_t limit) {
  sync_internal::CheckBlocking("WriteFileDurably");
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("create " + path.string() + ": " +
                           std::strerror(errno));
  }
  size_t written = 0;
  while (written < limit) {
    const ssize_t n = ::write(fd, data.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("write " + path.string() + ": " + err);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("fsync " + path.string() + ": " + err);
  }
  if (::close(fd) != 0) {
    return Status::IOError("close " + path.string() + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace dstore
