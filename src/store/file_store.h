#ifndef DSTORE_STORE_FILE_STORE_H_
#define DSTORE_STORE_FILE_STORE_H_

#include <filesystem>
#include <string>
#include <vector>

#include "common/sync.h"
#include "store/key_value.h"

namespace dstore {

// File-system KeyValueStore: one file per key under a root directory — the
// paper's "file system on the client node accessed via standard method
// calls" data store. Writes go to a temp file and are renamed into place so
// readers never observe partial values. Key bytes are hex-encoded in file
// names, so arbitrary keys (including '/' and NUL) are safe.
class FileStore : public KeyValueStore {
 public:
  struct Options {
    // fsync file contents before rename. Durable but slower; off by default
    // to match the paper's file-system baseline (ordinary buffered writes).
    bool sync_writes = false;
  };

  // Creates `root` (and parents) if needed.
  static StatusOr<std::unique_ptr<FileStore>> Open(
      const std::filesystem::path& root, const Options& options);
  static StatusOr<std::unique_ptr<FileStore>> Open(
      const std::filesystem::path& root) {
    return Open(root, Options());
  }

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return "file"; }

  const std::filesystem::path& root() const { return root_; }

 private:
  FileStore(std::filesystem::path root, const Options& options)
      : root_(std::move(root)), options_(options) {}

  std::filesystem::path PathFor(const std::string& key) const;

  std::filesystem::path root_;
  Options options_;
  Mutex temp_mu_;  // serializes temp-file name generation
  uint64_t temp_counter_ GUARDED_BY(temp_mu_) = 0;
};

}  // namespace dstore

#endif  // DSTORE_STORE_FILE_STORE_H_
