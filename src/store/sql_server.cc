#include "store/sql_server.h"

#include <utility>

#include "net/framing.h"
#include "store/sql/wire.h"

namespace dstore {

namespace {

constexpr char kKvTable[] = "kv";

sql::ExprPtr LiteralExpr(sql::SqlValue value) {
  auto e = std::make_unique<sql::Expr>();
  e->kind = sql::Expr::Kind::kLiteral;
  e->literal = std::move(value);
  return e;
}

sql::ExprPtr ColumnExpr(std::string name) {
  auto e = std::make_unique<sql::Expr>();
  e->kind = sql::Expr::Kind::kColumn;
  e->column = std::move(name);
  return e;
}

sql::ExprPtr KeyEquals(const std::string& key) {
  auto e = std::make_unique<sql::Expr>();
  e->kind = sql::Expr::Kind::kBinary;
  e->op = "=";
  e->left = ColumnExpr("k");
  e->right = LiteralExpr(sql::SqlValue(key));
  return e;
}

}  // namespace

StatusOr<std::unique_ptr<SqlServer>> SqlServer::Start(
    const std::string& db_path, uint16_t port,
    const sql::Database::Options& options) {
  auto server = std::unique_ptr<SqlServer>(new SqlServer());
  if (db_path.empty()) {
    server->db_ = std::make_unique<sql::Database>();
  } else {
    DSTORE_ASSIGN_OR_RETURN(server->db_, sql::Database::Open(db_path, options));
  }
  DSTORE_RETURN_IF_ERROR(server->EnsureKvTable());

  SqlServer* raw = server.get();
  AsyncServerOptions server_options;
  server_options.component = "sql";
  server->server_ = MakeFramedServer(
      [raw](const Bytes& request) { return raw->HandleRequest(request); },
      std::move(server_options));
  DSTORE_RETURN_IF_ERROR(server->server_->Start(port));
  return server;
}

SqlServer::~SqlServer() { Stop(); }

void SqlServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

Status SqlServer::EnsureKvTable() {
  auto result = db_->Execute(
      "CREATE TABLE IF NOT EXISTS kv (k TEXT PRIMARY KEY, v BLOB)");
  return result.ok() ? Status::OK() : result.status();
}

Bytes SqlServer::HandleRequest(const Bytes& request) {
  if (request.empty()) {
    return sql::EncodeStatusResponse(Status::InvalidArgument("empty request"));
  }
  const auto op = static_cast<sql::SqlOp>(request[0]);
  size_t pos = 1;

  switch (op) {
    case sql::SqlOp::kQuery: {
      const std::string sql_text(
          reinterpret_cast<const char*>(request.data() + 1),
          request.size() - 1);
      auto result = db_->Execute(sql_text);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      Bytes response = sql::EncodeOkResponse();
      sql::EncodeResultSet(*result, &response);
      return response;
    }

    case sql::SqlOp::kKvGet: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return sql::EncodeStatusResponse(key.status());
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kSelect;
      stmt.select.table = kKvTable;
      stmt.select.columns = {"v"};
      stmt.select.where = KeyEquals(ToString(*key));
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      if (result->rows.empty()) {
        return sql::EncodeStatusResponse(Status::NotFound("no such key"));
      }
      Bytes response = sql::EncodeOkResponse();
      const sql::SqlValue& value = result->rows[0][0];
      PutLengthPrefixed(&response, value.is_blob() ? value.AsBlob() : Bytes{});
      return response;
    }

    case sql::SqlOp::kKvPut: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return sql::EncodeStatusResponse(key.status());
      auto value = GetLengthPrefixed(request, &pos);
      if (!value.ok()) return sql::EncodeStatusResponse(value.status());
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kInsert;
      stmt.insert.table = kKvTable;
      stmt.insert.or_replace = true;
      std::vector<sql::ExprPtr> row;
      row.push_back(LiteralExpr(sql::SqlValue(ToString(*key))));
      row.push_back(LiteralExpr(sql::SqlValue(*std::move(value))));
      stmt.insert.rows.push_back(std::move(row));
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      return sql::EncodeOkResponse();
    }

    case sql::SqlOp::kKvDelete: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return sql::EncodeStatusResponse(key.status());
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kDelete;
      stmt.delete_from.table = kKvTable;
      stmt.delete_from.where = KeyEquals(ToString(*key));
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      return sql::EncodeOkResponse();
    }

    case sql::SqlOp::kKvContains: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return sql::EncodeStatusResponse(key.status());
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kSelect;
      stmt.select.table = kKvTable;
      stmt.select.count_star = true;
      stmt.select.where = KeyEquals(ToString(*key));
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      Bytes response = sql::EncodeOkResponse();
      response.push_back(result->rows[0][0].AsInteger() > 0 ? 1 : 0);
      return response;
    }

    case sql::SqlOp::kKvKeys: {
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kSelect;
      stmt.select.table = kKvTable;
      stmt.select.columns = {"k"};
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      Bytes response = sql::EncodeOkResponse();
      PutVarint64(&response, result->rows.size());
      for (const auto& row : result->rows) {
        PutLengthPrefixed(&response, row[0].AsText());
      }
      return response;
    }

    case sql::SqlOp::kKvCount: {
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kSelect;
      stmt.select.table = kKvTable;
      stmt.select.count_star = true;
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      Bytes response = sql::EncodeOkResponse();
      PutVarint64(&response,
                  static_cast<uint64_t>(result->rows[0][0].AsInteger()));
      return response;
    }

    case sql::SqlOp::kKvClear: {
      sql::Statement stmt;
      stmt.kind = sql::Statement::Kind::kDelete;
      stmt.delete_from.table = kKvTable;
      auto result = db_->ExecuteStatement(stmt);
      if (!result.ok()) return sql::EncodeStatusResponse(result.status());
      return sql::EncodeOkResponse();
    }

    case sql::SqlOp::kPing:
      return sql::EncodeOkResponse();
  }
  return sql::EncodeStatusResponse(
      Status::InvalidArgument("unknown SQL op code"));
}

}  // namespace dstore
