#include "store/cloud_server.h"

#include <cstdlib>
#include <optional>
#include <utility>

#include "admit/deadline.h"
#include "common/clock.h"
#include "net/obs_endpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/key_value.h"

namespace dstore {

namespace {

constexpr char kObjectPrefix[] = "/objects/";

HttpResponse MakeResponse(int code, const std::string& reason) {
  HttpResponse response;
  response.status_code = code;
  response.reason = reason;
  return response;
}

}  // namespace

StatusOr<std::unique_ptr<CloudStoreServer>> CloudStoreServer::Start(
    std::unique_ptr<LatencyModel> latency, uint16_t port,
    admit::ServerQueue::Options queue_options, ServerCore core) {
  auto server = std::unique_ptr<CloudStoreServer>(new CloudStoreServer());
  server->latency_ = std::move(latency);
  if (queue_options.name == admit::ServerQueue::Options().name) {
    queue_options.name = "cloud";
  }
  server->queue_ = std::make_unique<admit::ServerQueue>(queue_options);

  CloudStoreServer* raw = server.get();
  AsyncServerOptions server_options;
  server_options.component = "cloud";
  server_options.core = core;
  // A queued request blocks its worker thread in ServerQueue::Enter, and
  // pipelining means outstanding requests are bounded by admission capacity
  // rather than connection count — so the worker pool must cover every
  // admissible-or-queued request (plus headroom for priority-lane scrapes)
  // or the pool itself becomes a hidden second queue that the admission
  // metrics never see. See docs/udsm_guide.md §11.
  server_options.worker_threads =
      queue_options.max_concurrency + queue_options.max_queue_depth + 2;
  server->server_ = MakeHttpServer(
      [raw](const HttpRequest& request) {
        return raw->HandleHttpRequest(request);
      },
      std::move(server_options));
  DSTORE_RETURN_IF_ERROR(server->server_->Start(port));
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  server->request_ms_ = registry->GetHistogram(
      "dstore_cloud_request_ms", {},
      "Cloud store request service time (handler + injected WAN delay).");
  obs::Gauge* objects = registry->GetGauge(
      "dstore_cloud_objects", {}, "Objects currently stored.");
  server->objects_collector_id_ = registry->AddCollector(
      [raw, objects] { objects->Set(static_cast<double>(raw->ObjectCount())); });
  return server;
}

CloudStoreServer::~CloudStoreServer() { Stop(); }

void CloudStoreServer::Stop() {
  if (objects_collector_id_ != 0) {
    obs::MetricsRegistry::Default()->RemoveCollector(objects_collector_id_);
    objects_collector_id_ = 0;
  }
  if (server_ != nullptr) server_->Stop();
}

size_t CloudStoreServer::ObjectCount() const {
  MutexLock lock(mu_);
  return objects_.size();
}

HttpResponse CloudStoreServer::HandleHttpRequest(const HttpRequest& request) {
  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();

  // Observability routes answer immediately through the queue's priority
  // lane: a metrics scrape or health probe must not pay the simulated
  // WAN round trip, and must keep working while the data plane sheds —
  // overload protection that also blinds the operator is useless. The
  // route check comes first so data-plane requests never touch the
  // priority lane (entering it for every request used to inflate
  // dstore_admit_queue_priority_total by one per data-plane request).
  HttpResponse response;
  if (IsObsRequest(request)) {
    admit::ServerQueue::Admission priority(
        queue_.get(), admit::ServerQueue::Lane::kPriority);
    if (HandleObsRequest(request, &response)) return response;
  }

  // Re-establish the caller's budget from the propagated header, so the
  // queue wait and the handler both count against it.
  admit::Deadline deadline;
  auto dl = request.headers.find("x-dstore-deadline-ms");
  if (dl != request.headers.end()) {
    const long long ms = std::atoll(dl->second.c_str());
    if (ms > 0) deadline = admit::Deadline::After(ms * 1'000'000);
  }
  admit::ScopedDeadline scope(deadline);

  // Re-establish the caller's trace the same way: the span tree recorded
  // here becomes a segment of the client's trace, stitched under the
  // client span named in the header. A malformed or oversized header
  // parses to nullopt and the request simply runs untraced. The span tree
  // lives entirely on this worker thread — the server core runs one
  // handler invocation per request, even when requests are pipelined.
  std::optional<obs::TraceContext> trace_ctx;
  auto th = request.headers.find(obs::kTraceHeaderName);
  if (th != request.headers.end()) {
    trace_ctx = obs::ParseTraceContext(th->second);
  }
  {
    obs::Span::Options span_options;
    span_options.remote_parent = trace_ctx.has_value() ? &*trace_ctx : nullptr;
    obs::Span request_span("server.request", span_options);
    request_span.SetAttribute("method", request.method);
    request_span.SetAttribute("path", request.path);

    int64_t queue_wait_nanos = 0;
    {
      obs::Span queue_span("server.queue", obs::Stage::kQueue);
      admit::ServerQueue::Admission admission(queue_.get());
      queue_wait_nanos = admission.wait_nanos();
      if (queue_wait_nanos > 0) {
        queue_span.SetAttribute(
            "queue_wait_ms",
            std::to_string(static_cast<double>(queue_wait_nanos) / 1e6));
      }
      if (!admission.ok()) {
        // Shed: a *distinct* overload answer (503/504), never anything a
        // client could mistake for a data-plane result like 404.
        queue_span.SetAttribute(
            "shed_reason",
            admission.status().IsTimedOut() ? "deadline" : "overload");
        queue_span.MarkError();
        response = admission.status().IsTimedOut()
                       ? MakeResponse(504, "Deadline Expired")
                       : MakeResponse(503, "Overloaded");
        response.headers["x-dstore-shed"] = "1";
      } else {
        queue_span.End();
        Stopwatch watch(RealClock::Default());
        registry
            ->GetCounter("dstore_cloud_requests_total",
                         {{"method", request.method}},
                         "Cloud store data-plane requests by HTTP method.")
            ->Increment();
        if (admit::CurrentDeadline().expired()) {
          // Admitted, but the budget ran out while queued; answer 504
          // without doing the work or paying the WAN delay.
          response = MakeResponse(504, "Deadline Expired");
        } else {
          {
            obs::Span handle_span("server.handle", obs::Stage::kBackend);
            response = HandleRequest(request);
          }
          // Inject the WAN delay: model the round trip plus transfer of
          // both bodies before the response reaches the client.
          if (latency_ != nullptr) {
            obs::Span wan_span("server.wan", obs::Stage::kNetwork);
            const int64_t delay = latency_->SampleNanos(
                request.body.size() + response.body.size());
            RealClock::Default()->SleepFor(delay);
          }
        }
        request_ms_->Record(watch.ElapsedMillis());
      }
    }
    request_span.SetAttribute("http.status",
                              std::to_string(response.status_code));
    request_span.SetAttribute("bytes", std::to_string(response.body.size()));
    if (response.status_code >= 500) request_span.MarkError();
  }
  // The request span ends (and its segment is published) when this handler
  // returns — before the server core writes the response — so a sampling
  // client still sees its segments on arrival.
  return response;
}


HttpResponse CloudStoreServer::HandleReplicaRequest(
    const HttpRequest& request) {
  auto header_u64 = [&request](const char* name) -> uint64_t {
    auto it = request.headers.find(name);
    if (it == request.headers.end()) return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  };

  if (request.path == "/replica/status" && request.method == "GET") {
    MutexLock lock(mu_);
    HttpResponse response = MakeResponse(200, "OK");
    response.body = ToBytes(std::to_string(replica_epoch_) + " " +
                            std::to_string(replica_applied_));
    return response;
  }

  if (request.path == "/replica/fence" && request.method == "POST") {
    const uint64_t epoch = header_u64("x-dstore-replica-epoch");
    const uint64_t cap = header_u64("x-dstore-replica-applied");
    MutexLock lock(mu_);
    // A stale-epoch fence is a deposed handle trying to cap a more current
    // replica's watermark — refuse it the way stale applies are refused.
    if (epoch < replica_epoch_) {
      HttpResponse response = MakeResponse(412, "Precondition Failed");
      response.headers["x-dstore-replica-epoch"] =
          std::to_string(replica_epoch_);
      return response;
    }
    replica_epoch_ = epoch;
    if (replica_applied_ > cap) replica_applied_ = cap;
    return MakeResponse(200, "OK");
  }

  if (request.path == "/replica/apply" && request.method == "POST") {
    const uint64_t epoch = header_u64("x-dstore-replica-epoch");
    const uint64_t seq = header_u64("x-dstore-replica-seq");
    auto op_it = request.headers.find("x-dstore-replica-op");
    auto key_it = request.headers.find("x-dstore-replica-key");
    const std::string op =
        op_it == request.headers.end() ? "" : op_it->second;
    const std::string hexkey =
        key_it == request.headers.end() ? "" : key_it->second;
    MutexLock lock(mu_);
    // Fencing: an apply from an epoch below the highest this replica has
    // accepted is a deposed primary's late write — refuse it with an
    // answer no data-plane path produces.
    if (epoch < replica_epoch_) {
      HttpResponse response = MakeResponse(412, "Precondition Failed");
      response.headers["x-dstore-replica-epoch"] =
          std::to_string(replica_epoch_);
      return response;
    }
    replica_epoch_ = epoch;
    if (seq > replica_applied_) {  // at-or-below = idempotent replay, skip
      if (op == "put") {
        Object object;
        object.value = request.body;
        object.etag = ComputeEtag(object.value);
        objects_[hexkey] = std::move(object);
      } else if (op == "delete") {
        objects_.erase(hexkey);
      } else if (op == "clear") {
        objects_.clear();
      } else {
        return MakeResponse(400, "Bad Replica Op");
      }
      replica_applied_ = seq;
    }
    HttpResponse response = MakeResponse(200, "OK");
    response.headers["x-dstore-replica-applied"] =
        std::to_string(replica_applied_);
    return response;
  }

  return MakeResponse(404, "Not Found");
}

HttpResponse CloudStoreServer::HandleRequest(const HttpRequest& request) {
  const std::string& path = request.path;

  if (path.rfind("/replica/", 0) == 0) {
    return HandleReplicaRequest(request);
  }

  if (path.rfind(kObjectPrefix, 0) == 0) {
    const std::string hexkey = path.substr(sizeof(kObjectPrefix) - 1);

    if (request.method == "PUT") {
      Object object;
      object.value = request.body;
      object.etag = ComputeEtag(object.value);
      HttpResponse response = MakeResponse(200, "OK");
      response.headers["etag"] = object.etag;
      MutexLock lock(mu_);
      objects_[hexkey] = std::move(object);
      return response;
    }

    if (request.method == "GET" || request.method == "HEAD") {
      MutexLock lock(mu_);
      auto it = objects_.find(hexkey);
      if (it == objects_.end()) return MakeResponse(404, "Not Found");
      auto inm = request.headers.find("if-none-match");
      if (inm != request.headers.end() && inm->second == it->second.etag) {
        HttpResponse response = MakeResponse(304, "Not Modified");
        response.headers["etag"] = it->second.etag;
        return response;
      }
      HttpResponse response = MakeResponse(200, "OK");
      response.headers["etag"] = it->second.etag;
      if (request.method == "GET") response.body = it->second.value;
      return response;
    }

    if (request.method == "DELETE") {
      MutexLock lock(mu_);
      objects_.erase(hexkey);
      return MakeResponse(200, "OK");
    }

    return MakeResponse(405, "Method Not Allowed");
  }

  if (path == "/keys" && request.method == "GET") {
    std::string listing;
    {
      MutexLock lock(mu_);
      for (const auto& [hexkey, object] : objects_) {
        listing += hexkey;
        listing += '\n';
      }
    }
    HttpResponse response = MakeResponse(200, "OK");
    response.body = ToBytes(listing);
    return response;
  }

  if (path == "/count" && request.method == "GET") {
    HttpResponse response = MakeResponse(200, "OK");
    MutexLock lock(mu_);
    response.body = ToBytes(std::to_string(objects_.size()));
    return response;
  }

  if (path == "/clear" && request.method == "POST") {
    MutexLock lock(mu_);
    objects_.clear();
    return MakeResponse(200, "OK");
  }

  return MakeResponse(404, "Not Found");
}

}  // namespace dstore
