#ifndef DSTORE_STORE_SQL_CLIENT_H_
#define DSTORE_STORE_SQL_CLIENT_H_

#include <memory>
#include <string>

#include "common/sync.h"
#include "net/socket.h"
#include "store/key_value.h"
#include "store/sql/database.h"

namespace dstore {

// KeyValueStore backed by a SqlServer — the paper's "MySQL accessed via
// JDBC" data store. The common key-value interface maps onto a kv(k TEXT
// PRIMARY KEY, v BLOB) table through prepared-statement ops; Execute() is
// the native-interface escape hatch the UDSM promises ("a MySQL user may
// need to issue SQL queries to the underlying database", Section II.A).
//
// Holds one connection, used serially under a lock, like a JDBC Connection.
// Reconnects transparently once if the connection drops.
class SqlClient : public KeyValueStore {
 public:
  static StatusOr<std::unique_ptr<SqlClient>> Connect(const std::string& host,
                                                      uint16_t port);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return "sql"; }

  // Native access: runs arbitrary SQL on the server.
  StatusOr<sql::ResultSet> Execute(std::string_view sql_text);

 private:
  SqlClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  // Sends `request` and returns the response body past the status header.
  // Retries once on a broken connection.
  StatusOr<Bytes> RoundTrip(const Bytes& request) REQUIRES(mu_);
  Status EnsureConnected() REQUIRES(mu_);

  std::string host_;
  uint16_t port_;
  Mutex mu_;
  Socket socket_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_STORE_SQL_CLIENT_H_
