#ifndef DSTORE_STORE_REMOTE_CACHE_H_
#define DSTORE_STORE_REMOTE_CACHE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.h"
#include "common/status.h"
#include "common/sync.h"
#include "net/async_server.h"
#include "net/socket.h"
#include "store/key_value.h"

namespace dstore {

// A remote-process cache in the Redis/memcached mold (paper Section III):
// the cache lives in its own process, values cross a socket and are
// serialized both ways, and multiple clients can share it. The protocol is
// a framed binary command set (a RESP-like request/response scheme).
//
// Request payload: [u8 op][body]; response: [u8 status][lp(message)][body].
enum class CacheOp : uint8_t {
  kGet = 0,     // lp(key) -> lp(value)
  kSet = 1,     // lp(key) lp(value)
  kDelete = 2,  // lp(key)
  kExists = 3,  // lp(key) -> u8
  kKeys = 4,    // -> varint n, lp(key)*
  kCount = 5,   // -> varint
  kClear = 6,
  kPing = 7,
  kStats = 8,   // -> varint{entry_count, charge_used, hits, misses, puts, evictions}
  kMGet = 9,    // varint n, lp(key)* -> per key: u8 found, lp(value) if found
  kMSet = 10,   // varint n, (lp(key) lp(value))*
};

// Serves any Cache implementation over TCP. The default backing cache is a
// byte-capacity LRU, like a redis instance with maxmemory + LRU eviction.
class RemoteCacheServer {
 public:
  static StatusOr<std::unique_ptr<RemoteCacheServer>> Start(
      std::unique_ptr<Cache> backing, uint16_t port = 0);

  ~RemoteCacheServer();

  uint16_t port() const { return server_->port(); }
  Cache* backing() { return backing_.get(); }
  void Stop();

 private:
  RemoteCacheServer() = default;

  Bytes HandleRequest(const Bytes& request);

  std::unique_ptr<Cache> backing_;
  std::unique_ptr<Server> server_;
  int stats_collector_id_ = 0;  // backing-cache stats published on scrape
};

// One client connection to a RemoteCacheServer: a socket used serially
// under a lock, with reconnect-once semantics. Shared by the Cache and
// KeyValueStore adapters below.
class RemoteCacheConnection {
 public:
  static StatusOr<std::shared_ptr<RemoteCacheConnection>> Connect(
      const std::string& host, uint16_t port);

  StatusOr<Bytes> Get(const std::string& key);
  Status Set(const std::string& key, const Bytes& value);
  Status Delete(const std::string& key);
  StatusOr<bool> Exists(const std::string& key);
  StatusOr<std::vector<std::string>> Keys();
  StatusOr<size_t> Count();
  Status Clear();
  Status Ping();

  struct RemoteStats {
    size_t entry_count = 0;
    size_t charge_used = 0;
    CacheStats cache;
  };
  StatusOr<RemoteStats> Stats();

  // Batch ops: the whole batch crosses the wire in one round trip.
  StatusOr<std::vector<StatusOr<Bytes>>> MGet(
      const std::vector<std::string>& keys);
  Status MSet(const std::vector<std::pair<std::string, Bytes>>& entries);

 private:
  RemoteCacheConnection(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  StatusOr<Bytes> RoundTrip(const Bytes& request) EXCLUDES(mu_);
  Status EnsureConnected() REQUIRES(mu_);

  std::string host_;
  uint16_t port_;
  Mutex mu_;
  Socket socket_ GUARDED_BY(mu_);
};

// Cache-interface adapter: lets the DSCL plug the remote-process cache in
// anywhere an in-process cache fits (the paper's "multiple implementations
// of the Cache interface").
class RemoteCache : public Cache {
 public:
  explicit RemoteCache(std::shared_ptr<RemoteCacheConnection> conn)
      : conn_(std::move(conn)) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override { return "remote"; }
  StatusOr<std::vector<std::string>> Keys() const override;

 private:
  std::shared_ptr<RemoteCacheConnection> conn_;
};

// KeyValueStore adapter: the paper also benchmarks Redis as a data store in
// its own right ("a Redis instance running on the client node accessed via
// the Jedis client").
class RemoteCacheStore : public KeyValueStore {
 public:
  explicit RemoteCacheStore(std::shared_ptr<RemoteCacheConnection> conn)
      : conn_(std::move(conn)) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::vector<StatusOr<ValuePtr>> MultiGet(
      const std::vector<std::string>& keys) override;
  Status MultiPut(
      const std::vector<std::pair<std::string, ValuePtr>>& entries) override;
  std::string Name() const override { return "rediscache"; }

 private:
  std::shared_ptr<RemoteCacheConnection> conn_;
};

}  // namespace dstore

#endif  // DSTORE_STORE_REMOTE_CACHE_H_
