#include "store/resilient_store.h"

#include <algorithm>

#include "admit/deadline.h"

namespace dstore {

namespace {

// Uniform helpers so WithRetries can treat Status and StatusOr<T> alike.
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const StatusOr<T>& s) {
  return s.status();
}

}  // namespace

template <typename R, typename Op>
R RetryingStore::WithRetries(Op&& op) {
  int64_t backoff = options_.initial_backoff_nanos;
  R result = op();
  for (int attempt = 1;
       attempt < options_.max_attempts && IsTransient(StatusOf(result));
       ++attempt) {
    int64_t sleep_nanos = std::min(backoff, options_.max_backoff_nanos);
    if (options_.full_jitter && sleep_nanos > 0) {
      MutexLock lock(mu_);
      sleep_nanos = static_cast<int64_t>(
          rng_.Uniform(static_cast<uint64_t>(sleep_nanos)));
    }
    const admit::Deadline deadline = admit::CurrentDeadline();
    if (deadline.has_deadline() &&
        deadline.remaining_nanos() <= sleep_nanos) {
      // The budget cannot cover the backoff sleep, let alone the attempt
      // after it: stop here and surface the last real error instead of
      // timing out inside a sleep.
      break;
    }
    clock_->SleepFor(sleep_nanos);
    {
      MutexLock lock(mu_);
      ++stats_.retries;
      stats_.backoff_nanos += static_cast<uint64_t>(sleep_nanos);
    }
    obs_retries_->Increment();
    obs_backoff_nanos_->Increment(static_cast<uint64_t>(sleep_nanos));
    backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                   options_.backoff_multiplier);
    result = op();
  }
  if (IsTransient(StatusOf(result))) {
    {
      MutexLock lock(mu_);
      ++stats_.exhausted;
    }
    obs_exhausted_->Increment();
  }
  return result;
}

Status RetryingStore::Put(const std::string& key, ValuePtr value) {
  return WithRetries<Status>([&] { return inner_->Put(key, value); });
}

StatusOr<ValuePtr> RetryingStore::Get(const std::string& key) {
  return WithRetries<StatusOr<ValuePtr>>([&] { return inner_->Get(key); });
}

Status RetryingStore::Delete(const std::string& key) {
  return WithRetries<Status>([&] { return inner_->Delete(key); });
}

StatusOr<bool> RetryingStore::Contains(const std::string& key) {
  return WithRetries<StatusOr<bool>>([&] { return inner_->Contains(key); });
}

StatusOr<std::vector<std::string>> RetryingStore::ListKeys() {
  return WithRetries<StatusOr<std::vector<std::string>>>(
      [&] { return inner_->ListKeys(); });
}

StatusOr<size_t> RetryingStore::Count() {
  return WithRetries<StatusOr<size_t>>([&] { return inner_->Count(); });
}

Status RetryingStore::Clear() {
  return WithRetries<Status>([&] { return inner_->Clear(); });
}

RetryingStore::RetryStats RetryingStore::GetRetryStats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace dstore
