#ifndef DSTORE_STORE_MEMORY_STORE_H_
#define DSTORE_STORE_MEMORY_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "store/key_value.h"

namespace dstore {

// In-memory KeyValueStore. The simplest implementation of the common
// interface; used as the backing map of the simulated cloud store's server
// side, as a reference implementation in tests, and directly by
// applications that want a scratch store.
class MemoryStore : public KeyValueStore {
 public:
  MemoryStore() = default;

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return "memory"; }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, ValuePtr> map_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_STORE_MEMORY_STORE_H_
