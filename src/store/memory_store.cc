#include "store/memory_store.h"

namespace dstore {

Status MemoryStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  MutexLock lock(mu_);
  map_[key] = std::move(value);
  return Status::OK();
}

StatusOr<ValuePtr> MemoryStore::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("no such key: " + key);
  return it->second;
}

Status MemoryStore::Delete(const std::string& key) {
  MutexLock lock(mu_);
  map_.erase(key);
  return Status::OK();
}

StatusOr<bool> MemoryStore::Contains(const std::string& key) {
  MutexLock lock(mu_);
  return map_.count(key) > 0;
}

StatusOr<std::vector<std::string>> MemoryStore::ListKeys() {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(map_.size());
  for (const auto& [key, value] : map_) keys.push_back(key);
  return keys;
}

StatusOr<size_t> MemoryStore::Count() {
  MutexLock lock(mu_);
  return map_.size();
}

Status MemoryStore::Clear() {
  MutexLock lock(mu_);
  map_.clear();
  return Status::OK();
}

}  // namespace dstore
