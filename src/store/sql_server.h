#ifndef DSTORE_STORE_SQL_SERVER_H_
#define DSTORE_STORE_SQL_SERVER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "net/async_server.h"
#include "store/sql/database.h"

namespace dstore {

// Serves an embedded sql::Database over a local socket so clients pay the
// same interprocess hop a JDBC application pays to reach MySQL. Handles the
// text-SQL op plus the prepared-statement key-value ops (see sql/wire.h);
// the KV ops run through the same executor, index, and WAL-commit path as
// parsed SQL.
class SqlServer {
 public:
  // `db_path` empty = in-memory (no durability). `options` controls commit
  // fsync behaviour.
  static StatusOr<std::unique_ptr<SqlServer>> Start(
      const std::string& db_path, uint16_t port,
      const sql::Database::Options& options);
  static StatusOr<std::unique_ptr<SqlServer>> Start(
      const std::string& db_path, uint16_t port = 0) {
    return Start(db_path, port, sql::Database::Options());
  }

  ~SqlServer();

  uint16_t port() const { return server_->port(); }
  sql::Database* database() { return db_.get(); }

  void Stop();

 private:
  SqlServer() = default;

  Bytes HandleRequest(const Bytes& request);
  Status EnsureKvTable();

  std::unique_ptr<sql::Database> db_;
  std::unique_ptr<Server> server_;
};

}  // namespace dstore

#endif  // DSTORE_STORE_SQL_SERVER_H_
