#ifndef DSTORE_STORE_RESILIENT_STORE_H_
#define DSTORE_STORE_RESILIENT_STORE_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "common/sync.h"
#include "fault/fault_store.h"
#include "obs/metrics.h"
#include "store/key_value.h"

namespace dstore {

// RetryingStore: retries transient failures (Unavailable, IOError,
// TimedOut) with capped exponential backoff and full jitter before giving
// up. Cloud stores fail transiently in practice — the studies the paper
// cites observed sub-1% failure rates — and a client library is where
// retries belong, since no server cooperation is needed.
//
// Admission-control integration (src/admit/):
//  - Overloaded is deliberately NOT transient: it is the backend (or a
//    breaker/limiter) explicitly asking for less traffic, and retrying it
//    immediately would turn one overload into a retry storm.
//  - An ambient admit::Deadline bounds the whole retry loop: no further
//    attempt starts once the budget cannot cover the next backoff sleep,
//    and the loop returns the last real error rather than burning budget.
class RetryingStore : public KeyValueStore {
 public:
  struct Options {
    int max_attempts = 3;
    int64_t initial_backoff_nanos = 1'000'000;  // 1 ms
    double backoff_multiplier = 2.0;
    // Exponential growth stops here — without a cap, attempt 10 of a long
    // retry budget would sleep for minutes.
    int64_t max_backoff_nanos = 250'000'000;  // 250 ms
    // Full jitter: sleep Uniform[0, backoff) instead of exactly backoff,
    // so clients that failed together do not retry together (the AWS
    // architecture-blog result: full jitter empties a contended resource
    // fastest). Seeded, so tests replay exact schedules; disable for
    // exact-backoff assertions.
    bool full_jitter = true;
    uint64_t jitter_seed = 42;
  };

  struct RetryStats {
    uint64_t retries = 0;        // re-attempts performed
    uint64_t exhausted = 0;      // operations that failed all attempts
    uint64_t backoff_nanos = 0;  // total time slept between attempts
  };

  RetryingStore(std::shared_ptr<KeyValueStore> inner, const Options& options,
                Clock* clock = nullptr)
      : inner_(std::move(inner)),
        options_(options),
        clock_(clock != nullptr ? clock : RealClock::Default()),
        rng_(options.jitter_seed) {
    auto* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"store", inner_->Name()}};
    obs_retries_ = registry->GetCounter(
        "dstore_retry_attempts_total", labels,
        "Re-attempts after a transient failure.");
    obs_exhausted_ = registry->GetCounter(
        "dstore_retry_exhausted_total", labels,
        "Operations that failed every attempt.");
    obs_backoff_nanos_ = registry->GetCounter(
        "dstore_retry_backoff_sleep_nanos_total", labels,
        "Total nanoseconds slept backing off between attempts.");
  }
  explicit RetryingStore(std::shared_ptr<KeyValueStore> inner)
      : RetryingStore(std::move(inner), Options()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return inner_->Name() + "+retry"; }

  RetryStats GetRetryStats() const;

 private:
  static bool IsTransient(const Status& status) {
    return status.IsUnavailable() || status.IsIOError() || status.IsTimedOut();
  }

  // Runs `op` with retry/backoff. R is Status or StatusOr<T>.
  template <typename R, typename Op>
  R WithRetries(Op&& op);

  std::shared_ptr<KeyValueStore> inner_;
  Options options_;
  Clock* clock_;
  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  RetryStats stats_ GUARDED_BY(mu_);
  // Process-wide mirrors of stats_, labelled by inner store name.
  obs::Counter* obs_retries_;
  obs::Counter* obs_exhausted_;
  obs::Counter* obs_backoff_nanos_;
};

// FlakyStore: back-compat alias over fault/fault_store.h. Fails a
// configurable fraction of operations with a transient error, either before
// the inner operation runs (clean failure) or after (the ugly case: the
// write happened but the client saw an error). New code should build a
// FaultPlan and use FaultInjectingStore directly — it adds scheduled faults,
// latency spikes, payload corruption, and a replayable trace; this wrapper
// only preserves the historical single-probability interface (Clear is never
// injected, matching the original). The injection counter now lives in the
// plan and is atomic, so concurrent operations no longer race on it.
class FlakyStore : public FaultInjectingStore {
 public:
  struct Options {
    double failure_probability = 0.1;
    // If true, Put/Delete take effect even when an error is reported —
    // models an acknowledged-lost response.
    bool fail_after_apply = false;
    uint64_t seed = 42;
  };

  FlakyStore(std::shared_ptr<KeyValueStore> inner, const Options& options)
      : FaultInjectingStore(std::move(inner), MakePlan(options)) {}

  std::string Name() const override { return inner()->Name() + "+flaky"; }

 private:
  static std::shared_ptr<fault::FaultPlan> MakePlan(const Options& options) {
    auto plan = std::make_shared<fault::FaultPlan>(options.seed);
    fault::FaultRule rule;
    rule.op =
        "put,get,delete,contains,listkeys,count,getifchanged,multiget,"
        "multiput";
    rule.probability = options.failure_probability;
    rule.kind = options.fail_after_apply ? fault::FaultKind::kErrorAfterApply
                                         : fault::FaultKind::kError;
    plan->AddRule(rule);
    return plan;
  }
};

}  // namespace dstore

#endif  // DSTORE_STORE_RESILIENT_STORE_H_
