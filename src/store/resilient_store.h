#ifndef DSTORE_STORE_RESILIENT_STORE_H_
#define DSTORE_STORE_RESILIENT_STORE_H_

#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "store/key_value.h"

namespace dstore {

// RetryingStore: retries transient failures (Unavailable, IOError,
// TimedOut) with exponential backoff before giving up. Cloud stores fail
// transiently in practice — the studies the paper cites observed sub-1%
// failure rates — and a client library is where retries belong, since no
// server cooperation is needed.
class RetryingStore : public KeyValueStore {
 public:
  struct Options {
    int max_attempts = 3;
    int64_t initial_backoff_nanos = 1'000'000;  // 1 ms
    double backoff_multiplier = 2.0;
  };

  struct RetryStats {
    uint64_t retries = 0;        // re-attempts performed
    uint64_t exhausted = 0;      // operations that failed all attempts
    uint64_t backoff_nanos = 0;  // total time slept between attempts
  };

  RetryingStore(std::shared_ptr<KeyValueStore> inner, const Options& options,
                Clock* clock = nullptr)
      : inner_(std::move(inner)),
        options_(options),
        clock_(clock != nullptr ? clock : RealClock::Default()) {
    auto* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"store", inner_->Name()}};
    obs_retries_ = registry->GetCounter(
        "dstore_retry_attempts_total", labels,
        "Re-attempts after a transient failure.");
    obs_exhausted_ = registry->GetCounter(
        "dstore_retry_exhausted_total", labels,
        "Operations that failed every attempt.");
    obs_backoff_nanos_ = registry->GetCounter(
        "dstore_retry_backoff_sleep_nanos_total", labels,
        "Total nanoseconds slept backing off between attempts.");
  }
  explicit RetryingStore(std::shared_ptr<KeyValueStore> inner)
      : RetryingStore(std::move(inner), Options()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return inner_->Name() + "+retry"; }

  RetryStats GetRetryStats() const;

 private:
  static bool IsTransient(const Status& status) {
    return status.IsUnavailable() || status.IsIOError() || status.IsTimedOut();
  }

  // Runs `op` with retry/backoff. R is Status or StatusOr<T>.
  template <typename R, typename Op>
  R WithRetries(Op&& op);

  std::shared_ptr<KeyValueStore> inner_;
  Options options_;
  Clock* clock_;
  mutable std::mutex mu_;
  RetryStats stats_;
  // Process-wide mirrors of stats_, labelled by inner store name.
  obs::Counter* obs_retries_;
  obs::Counter* obs_exhausted_;
  obs::Counter* obs_backoff_nanos_;
};

// FlakyStore: fault injection for tests and chaos benchmarks. Fails a
// configurable fraction of operations with a transient error, either before
// the inner operation runs (clean failure) or after (the ugly case: the
// write happened but the client saw an error).
class FlakyStore : public KeyValueStore {
 public:
  struct Options {
    double failure_probability = 0.1;
    // If true, Put/Delete take effect even when an error is reported —
    // models an acknowledged-lost response.
    bool fail_after_apply = false;
    uint64_t seed = 42;
  };

  FlakyStore(std::shared_ptr<KeyValueStore> inner, const Options& options)
      : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override { return inner_->Clear(); }
  std::string Name() const override { return inner_->Name() + "+flaky"; }

  uint64_t injected_failures() const;

 private:
  bool ShouldFail();

  std::shared_ptr<KeyValueStore> inner_;
  Options options_;
  mutable std::mutex mu_;
  Random rng_;
  uint64_t injected_ = 0;
};

}  // namespace dstore

#endif  // DSTORE_STORE_RESILIENT_STORE_H_
