#ifndef DSTORE_STORE_FS_UTIL_H_
#define DSTORE_STORE_FS_UTIL_H_

#include <filesystem>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"

namespace dstore {

// Durability helpers shared by the on-disk stores (FileStore, the SQL WAL,
// the LSM engine).
//
// POSIX rename() makes a file *visible* atomically, but the new directory
// entry itself lives in the page cache until the directory is fsynced: a
// power cut immediately after rename can bring the machine back up with the
// old directory contents and the fully-written file gone. Every
// temp-write -> rename publish path therefore ends with SyncDir() on the
// parent, and newly created append files (WAL segments) sync their parent
// once at creation so the segment cannot vanish out from under its synced
// contents.

// Both helpers fsync and therefore block for a device round-trip: they are
// DSTORE_BLOCKING and must run on worker threads, never on a reactor loop.

// fsyncs the directory itself (not its contents). An empty path syncs ".".
Status SyncDir(const std::filesystem::path& dir) DSTORE_BLOCKING;

// Writes the first `limit` bytes of `data` to a freshly created `path` and
// fsyncs it. `limit` below data.size() models a torn write for crash tests;
// pass data.size() for a normal full write. Does NOT sync the parent
// directory — publish paths do that after their rename.
Status WriteFileDurably(const std::filesystem::path& path, const Bytes& data,
                        size_t limit) DSTORE_BLOCKING;

}  // namespace dstore

#endif  // DSTORE_STORE_FS_UTIL_H_
