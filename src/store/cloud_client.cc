#include "store/cloud_client.h"

#include <cstdlib>

#include "admit/deadline.h"
#include "obs/trace.h"

namespace dstore {

namespace {

// Maps a non-2xx data-plane answer to its status: the server's admission
// layer speaks 503 (shed -> Overloaded) and 504 (budget exhausted ->
// TimedOut); anything else unexpected stays IOError.
Status HttpError(const std::string& what, int code) {
  if (code == 503) {
    return Status::Overloaded(what + " shed by server: HTTP 503");
  }
  if (code == 504) {
    return Status::TimedOut(what + " exceeded deadline: HTTP 504");
  }
  return Status::IOError(what + " failed: HTTP " + std::to_string(code));
}

}  // namespace

StatusOr<std::unique_ptr<CloudStoreClient>> CloudStoreClient::Connect(
    const std::string& host, uint16_t port, std::string name) {
  auto client = std::unique_ptr<CloudStoreClient>(
      new CloudStoreClient(host, port, std::move(name)));
  MutexLock lock(client->mu_);
  DSTORE_RETURN_IF_ERROR(client->EnsureConnected());
  return client;
}

std::string CloudStoreClient::ObjectPath(const std::string& key) {
  return "/objects/" + HexEncode(ToBytes(key));
}

Status CloudStoreClient::EnsureConnected() {
  if (conn_.has_value() && conn_->valid()) return Status::OK();
  DSTORE_ASSIGN_OR_RETURN(Socket socket, Socket::ConnectTcp(host_, port_));
  conn_.emplace(std::move(socket));
  return Status::OK();
}

StatusOr<HttpResponse> CloudStoreClient::RoundTrip(HttpRequest& request) {
  obs::Span span("http.roundtrip", obs::Stage::kNetwork);
  span.SetAttribute("method", request.method);
  span.SetAttribute("path", request.path);
  // Propagate the trace identity so the server's spans join this trace.
  const obs::TraceContext trace_ctx = obs::CurrentTraceContext();
  if (trace_ctx.valid() && trace_ctx.sampled) {
    request.headers[obs::kTraceHeaderName] = trace_ctx.ToHeader();
  }
  const admit::Deadline deadline = admit::CurrentDeadline();
  if (deadline.has_deadline()) {
    const int64_t remaining = deadline.remaining_nanos();
    if (remaining <= 0) {
      return Status::TimedOut("deadline expired before " + request.method +
                              " round trip to " + name_);
    }
    // Propagate the remaining budget (rounded up, so a live sub-ms budget
    // never reads as zero on the wire).
    request.headers["x-dstore-deadline-ms"] =
        std::to_string((remaining + 999'999) / 1'000'000);
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    DSTORE_RETURN_IF_ERROR(EnsureConnected());
    if (!conn_->WriteRequest(request).ok()) {
      conn_->Close();
      continue;
    }
    auto response = conn_->ReadResponse();
    if (!response.ok()) {
      conn_->Close();
      continue;
    }
    span.SetAttribute("http.status", std::to_string(response->status_code));
    span.SetAttribute("bytes", std::to_string(response->body.size()));
    if (response->status_code >= 500) span.MarkError();
    return response;
  }
  span.MarkError();
  return Status::Unavailable("cloud store connection failed");
}

Status CloudStoreClient::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  HttpRequest request;
  request.method = "PUT";
  request.path = ObjectPath(key);
  request.body = *value;
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code != 200) {
    return HttpError("cloud PUT", response.status_code);
  }
  auto it = response.headers.find("etag");
  if (it != response.headers.end()) last_put_etag_ = it->second;
  return Status::OK();
}

StatusOr<ValuePtr> CloudStoreClient::Get(const std::string& key) {
  HttpRequest request;
  request.method = "GET";
  request.path = ObjectPath(key);
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code == 404) return Status::NotFound("no such key");
  if (response.status_code != 200) {
    return HttpError("cloud GET", response.status_code);
  }
  return MakeValue(std::move(response.body));
}

StatusOr<ConditionalGetResult> CloudStoreClient::GetIfChanged(
    const std::string& key, const std::string& etag) {
  HttpRequest request;
  request.method = "GET";
  request.path = ObjectPath(key);
  if (!etag.empty()) request.headers["if-none-match"] = etag;
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code == 404) return Status::NotFound("no such key");
  ConditionalGetResult result;
  auto it = response.headers.find("etag");
  if (it != response.headers.end()) result.etag = it->second;
  if (response.status_code == 304) {
    result.not_modified = true;
    return result;
  }
  if (response.status_code != 200) {
    return HttpError("cloud conditional GET", response.status_code);
  }
  result.value = MakeValue(std::move(response.body));
  return result;
}

Status CloudStoreClient::Delete(const std::string& key) {
  HttpRequest request;
  request.method = "DELETE";
  request.path = ObjectPath(key);
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code != 200) {
    return HttpError("cloud DELETE", response.status_code);
  }
  return Status::OK();
}

StatusOr<bool> CloudStoreClient::Contains(const std::string& key) {
  HttpRequest request;
  request.method = "HEAD";
  request.path = ObjectPath(key);
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code == 200) return true;
  if (response.status_code == 404) return false;
  return HttpError("cloud HEAD", response.status_code);
}

StatusOr<std::vector<std::string>> CloudStoreClient::ListKeys() {
  HttpRequest request;
  request.method = "GET";
  request.path = "/keys";
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code != 200) {
    return HttpError("cloud /keys", response.status_code);
  }
  std::vector<std::string> keys;
  std::string line;
  for (uint8_t b : response.body) {
    if (b == '\n') {
      auto decoded = HexDecode(line);
      if (decoded.ok()) keys.push_back(ToString(*decoded));
      line.clear();
    } else {
      line.push_back(static_cast<char>(b));
    }
  }
  return keys;
}

StatusOr<size_t> CloudStoreClient::Count() {
  HttpRequest request;
  request.method = "GET";
  request.path = "/count";
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code != 200) {
    return HttpError("cloud /count", response.status_code);
  }
  return static_cast<size_t>(std::atoll(ToString(response.body).c_str()));
}

Status CloudStoreClient::Clear() {
  HttpRequest request;
  request.method = "POST";
  request.path = "/clear";
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code != 200) {
    return HttpError("cloud /clear", response.status_code);
  }
  return Status::OK();
}

Status CloudStoreClient::ReplicaApply(const std::string& op,
                                      const std::string& key,
                                      const Bytes* value, uint64_t seq,
                                      uint64_t epoch) {
  HttpRequest request;
  request.method = "POST";
  request.path = "/replica/apply";
  request.headers["x-dstore-replica-op"] = op;
  request.headers["x-dstore-replica-key"] = HexEncode(ToBytes(key));
  request.headers["x-dstore-replica-seq"] = std::to_string(seq);
  request.headers["x-dstore-replica-epoch"] = std::to_string(epoch);
  if (value != nullptr) request.body = *value;
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code == 412) {
    // The "fenced:" prefix is the contract replica::IsFenced matches; keep
    // them in sync.
    auto it = response.headers.find("x-dstore-replica-epoch");
    return Status::Unavailable(
        "fenced: write epoch " + std::to_string(epoch) +
        " superseded by epoch " +
        (it == response.headers.end() ? "?" : it->second));
  }
  if (response.status_code != 200) {
    return HttpError("replica apply", response.status_code);
  }
  return Status::OK();
}

Status CloudStoreClient::ReplicaFence(uint64_t epoch, uint64_t max_applied) {
  HttpRequest request;
  request.method = "POST";
  request.path = "/replica/fence";
  request.headers["x-dstore-replica-epoch"] = std::to_string(epoch);
  request.headers["x-dstore-replica-applied"] = std::to_string(max_applied);
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code == 412) {
    // Same "fenced:" contract as ReplicaApply: our fencing epoch is itself
    // superseded, so this handle's leadership is gone.
    auto it = response.headers.find("x-dstore-replica-epoch");
    return Status::Unavailable(
        "fenced: fence epoch " + std::to_string(epoch) +
        " superseded by epoch " +
        (it == response.headers.end() ? "?" : it->second));
  }
  if (response.status_code != 200) {
    return HttpError("replica fence", response.status_code);
  }
  return Status::OK();
}

StatusOr<std::pair<uint64_t, uint64_t>> CloudStoreClient::ReplicaStatus() {
  HttpRequest request;
  request.method = "GET";
  request.path = "/replica/status";
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(HttpResponse response, RoundTrip(request));
  if (response.status_code != 200) {
    return HttpError("replica status", response.status_code);
  }
  const std::string body = ToString(response.body);
  char* end = nullptr;
  const uint64_t epoch = std::strtoull(body.c_str(), &end, 10);
  const uint64_t applied =
      end == nullptr ? 0 : std::strtoull(end, nullptr, 10);
  return std::make_pair(epoch, applied);
}

std::string CloudStoreClient::last_put_etag() const {
  MutexLock lock(mu_);
  return last_put_etag_;
}

}  // namespace dstore
