#include "store/sql_client.h"

#include "net/framing.h"
#include "store/sql/wire.h"

namespace dstore {

StatusOr<std::unique_ptr<SqlClient>> SqlClient::Connect(
    const std::string& host, uint16_t port) {
  auto client = std::unique_ptr<SqlClient>(new SqlClient(host, port));
  MutexLock lock(client->mu_);
  DSTORE_RETURN_IF_ERROR(client->EnsureConnected());
  return client;
}

Status SqlClient::EnsureConnected() {
  if (socket_.valid()) return Status::OK();
  DSTORE_ASSIGN_OR_RETURN(socket_, Socket::ConnectTcp(host_, port_));
  return Status::OK();
}

StatusOr<Bytes> SqlClient::RoundTrip(const Bytes& request) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    DSTORE_RETURN_IF_ERROR(EnsureConnected());
    if (!WriteFrame(&socket_, request).ok()) {
      socket_.Close();
      continue;
    }
    auto response = ReadFrame(&socket_);
    if (!response.ok()) {
      socket_.Close();
      continue;
    }
    DSTORE_ASSIGN_OR_RETURN(size_t body_pos, sql::DecodeResponseStatus(*response));
    return Bytes(response->begin() + static_cast<ptrdiff_t>(body_pos),
                 response->end());
  }
  return Status::Unavailable("SQL server connection failed");
}

Status SqlClient::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvPut));
  PutLengthPrefixed(&request, key);
  PutLengthPrefixed(&request, *value);
  MutexLock lock(mu_);
  return RoundTrip(request).status();
}

StatusOr<ValuePtr> SqlClient::Get(const std::string& key) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvGet));
  PutLengthPrefixed(&request, key);
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(Bytes value, GetLengthPrefixed(body, &pos));
  return MakeValue(std::move(value));
}

Status SqlClient::Delete(const std::string& key) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvDelete));
  PutLengthPrefixed(&request, key);
  MutexLock lock(mu_);
  return RoundTrip(request).status();
}

StatusOr<bool> SqlClient::Contains(const std::string& key) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvContains));
  PutLengthPrefixed(&request, key);
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  if (body.empty()) return Status::Corruption("short contains response");
  return body[0] != 0;
}

StatusOr<std::vector<std::string>> SqlClient::ListKeys() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvKeys));
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(body, &pos));
  std::vector<std::string> keys;
  keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DSTORE_ASSIGN_OR_RETURN(Bytes key, GetLengthPrefixed(body, &pos));
    keys.push_back(ToString(key));
  }
  return keys;
}

StatusOr<size_t> SqlClient::Count() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvCount));
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(body, &pos));
  return static_cast<size_t>(count);
}

Status SqlClient::Clear() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kKvClear));
  MutexLock lock(mu_);
  return RoundTrip(request).status();
}

StatusOr<sql::ResultSet> SqlClient::Execute(std::string_view sql_text) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(sql::SqlOp::kQuery));
  request.insert(request.end(), sql_text.begin(), sql_text.end());
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  return sql::DecodeResultSet(body, &pos);
}

}  // namespace dstore
