#include "store/remote_cache.h"

#include <utility>

#include "cache/cache_metrics.h"
#include "net/framing.h"

namespace dstore {

namespace {

Bytes EncodeStatusHeader(const Status& status) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(status.code()));
  PutLengthPrefixed(&out, status.message());
  return out;
}

StatusOr<size_t> DecodeStatusHeader(const Bytes& response) {
  if (response.empty()) return Status::Corruption("empty cache response");
  const auto code = static_cast<StatusCode>(response[0]);
  size_t pos = 1;
  DSTORE_ASSIGN_OR_RETURN(Bytes message, GetLengthPrefixed(response, &pos));
  if (code != StatusCode::kOk) return Status(code, ToString(message));
  return pos;
}

}  // namespace

StatusOr<std::unique_ptr<RemoteCacheServer>> RemoteCacheServer::Start(
    std::unique_ptr<Cache> backing, uint16_t port) {
  auto server = std::unique_ptr<RemoteCacheServer>(new RemoteCacheServer());
  server->backing_ = std::move(backing);
  RemoteCacheServer* raw = server.get();
  AsyncServerOptions server_options;
  server_options.component = "cache";
  server->server_ = MakeFramedServer(
      [raw](const Bytes& request) { return raw->HandleRequest(request); },
      std::move(server_options));
  DSTORE_RETURN_IF_ERROR(server->server_->Start(port));
  server->stats_collector_id_ = PublishCacheMetrics(
      obs::MetricsRegistry::Default(), server->backing_.get(),
      server->backing_->Name());
  return server;
}

RemoteCacheServer::~RemoteCacheServer() { Stop(); }

void RemoteCacheServer::Stop() {
  if (stats_collector_id_ != 0) {
    obs::MetricsRegistry::Default()->RemoveCollector(stats_collector_id_);
    stats_collector_id_ = 0;
  }
  if (server_ != nullptr) server_->Stop();
}

Bytes RemoteCacheServer::HandleRequest(const Bytes& request) {
  if (request.empty()) {
    return EncodeStatusHeader(Status::InvalidArgument("empty request"));
  }
  const auto op = static_cast<CacheOp>(request[0]);
  size_t pos = 1;

  switch (op) {
    case CacheOp::kGet: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return EncodeStatusHeader(key.status());
      auto value = backing_->Get(ToString(*key));
      if (!value.ok()) return EncodeStatusHeader(value.status());
      Bytes response = EncodeStatusHeader(Status::OK());
      PutLengthPrefixed(&response, **value);
      return response;
    }
    case CacheOp::kSet: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return EncodeStatusHeader(key.status());
      auto value = GetLengthPrefixed(request, &pos);
      if (!value.ok()) return EncodeStatusHeader(value.status());
      const Status status =
          backing_->Put(ToString(*key), MakeValue(*std::move(value)));
      return EncodeStatusHeader(status);
    }
    case CacheOp::kDelete: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return EncodeStatusHeader(key.status());
      return EncodeStatusHeader(backing_->Delete(ToString(*key)));
    }
    case CacheOp::kExists: {
      auto key = GetLengthPrefixed(request, &pos);
      if (!key.ok()) return EncodeStatusHeader(key.status());
      Bytes response = EncodeStatusHeader(Status::OK());
      response.push_back(backing_->Contains(ToString(*key)) ? 1 : 0);
      return response;
    }
    case CacheOp::kKeys: {
      auto keys = backing_->Keys();
      if (!keys.ok()) return EncodeStatusHeader(keys.status());
      Bytes response = EncodeStatusHeader(Status::OK());
      PutVarint64(&response, keys->size());
      for (const std::string& k : *keys) PutLengthPrefixed(&response, k);
      return response;
    }
    case CacheOp::kCount: {
      Bytes response = EncodeStatusHeader(Status::OK());
      PutVarint64(&response, backing_->EntryCount());
      return response;
    }
    case CacheOp::kClear:
      backing_->Clear();
      return EncodeStatusHeader(Status::OK());
    case CacheOp::kPing:
      return EncodeStatusHeader(Status::OK());
    case CacheOp::kMGet: {
      auto count = GetVarint64(request, &pos);
      if (!count.ok()) return EncodeStatusHeader(count.status());
      Bytes response = EncodeStatusHeader(Status::OK());
      for (uint64_t i = 0; i < *count; ++i) {
        auto key = GetLengthPrefixed(request, &pos);
        if (!key.ok()) return EncodeStatusHeader(key.status());
        auto value = backing_->Get(ToString(*key));
        if (value.ok()) {
          response.push_back(1);
          PutLengthPrefixed(&response, **value);
        } else {
          response.push_back(0);
        }
      }
      return response;
    }
    case CacheOp::kMSet: {
      auto count = GetVarint64(request, &pos);
      if (!count.ok()) return EncodeStatusHeader(count.status());
      for (uint64_t i = 0; i < *count; ++i) {
        auto key = GetLengthPrefixed(request, &pos);
        if (!key.ok()) return EncodeStatusHeader(key.status());
        auto value = GetLengthPrefixed(request, &pos);
        if (!value.ok()) return EncodeStatusHeader(value.status());
        const Status status =
            backing_->Put(ToString(*key), MakeValue(*std::move(value)));
        if (!status.ok()) return EncodeStatusHeader(status);
      }
      return EncodeStatusHeader(Status::OK());
    }
    case CacheOp::kStats: {
      Bytes response = EncodeStatusHeader(Status::OK());
      const CacheStats stats = backing_->Stats();
      PutVarint64(&response, backing_->EntryCount());
      PutVarint64(&response, backing_->ChargeUsed());
      PutVarint64(&response, stats.hits);
      PutVarint64(&response, stats.misses);
      PutVarint64(&response, stats.puts);
      PutVarint64(&response, stats.evictions);
      return response;
    }
  }
  return EncodeStatusHeader(Status::InvalidArgument("unknown cache op"));
}

// --- connection ---

StatusOr<std::shared_ptr<RemoteCacheConnection>> RemoteCacheConnection::Connect(
    const std::string& host, uint16_t port) {
  auto conn = std::shared_ptr<RemoteCacheConnection>(
      new RemoteCacheConnection(host, port));
  MutexLock lock(conn->mu_);
  DSTORE_RETURN_IF_ERROR(conn->EnsureConnected());
  return conn;
}

Status RemoteCacheConnection::EnsureConnected() {
  if (socket_.valid()) return Status::OK();
  DSTORE_ASSIGN_OR_RETURN(socket_, Socket::ConnectTcp(host_, port_));
  return Status::OK();
}

StatusOr<Bytes> RemoteCacheConnection::RoundTrip(const Bytes& request) {
  MutexLock lock(mu_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    DSTORE_RETURN_IF_ERROR(EnsureConnected());
    if (!WriteFrame(&socket_, request).ok()) {
      socket_.Close();
      continue;
    }
    auto response = ReadFrame(&socket_);
    if (!response.ok()) {
      socket_.Close();
      continue;
    }
    DSTORE_ASSIGN_OR_RETURN(size_t body_pos, DecodeStatusHeader(*response));
    return Bytes(response->begin() + static_cast<ptrdiff_t>(body_pos),
                 response->end());
  }
  return Status::Unavailable("remote cache connection failed");
}

StatusOr<Bytes> RemoteCacheConnection::Get(const std::string& key) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kGet));
  PutLengthPrefixed(&request, key);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  return GetLengthPrefixed(body, &pos);
}

Status RemoteCacheConnection::Set(const std::string& key, const Bytes& value) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kSet));
  PutLengthPrefixed(&request, key);
  PutLengthPrefixed(&request, value);
  return RoundTrip(request).status();
}

Status RemoteCacheConnection::Delete(const std::string& key) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kDelete));
  PutLengthPrefixed(&request, key);
  return RoundTrip(request).status();
}

StatusOr<bool> RemoteCacheConnection::Exists(const std::string& key) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kExists));
  PutLengthPrefixed(&request, key);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  if (body.empty()) return Status::Corruption("short exists response");
  return body[0] != 0;
}

StatusOr<std::vector<std::string>> RemoteCacheConnection::Keys() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kKeys));
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(body, &pos));
  std::vector<std::string> keys;
  keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DSTORE_ASSIGN_OR_RETURN(Bytes key, GetLengthPrefixed(body, &pos));
    keys.push_back(ToString(key));
  }
  return keys;
}

StatusOr<size_t> RemoteCacheConnection::Count() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kCount));
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(body, &pos));
  return static_cast<size_t>(count);
}

Status RemoteCacheConnection::Clear() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kClear));
  return RoundTrip(request).status();
}

Status RemoteCacheConnection::Ping() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kPing));
  return RoundTrip(request).status();
}

StatusOr<RemoteCacheConnection::RemoteStats> RemoteCacheConnection::Stats() {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kStats));
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  RemoteStats stats;
  DSTORE_ASSIGN_OR_RETURN(uint64_t entries, GetVarint64(body, &pos));
  DSTORE_ASSIGN_OR_RETURN(uint64_t charge, GetVarint64(body, &pos));
  DSTORE_ASSIGN_OR_RETURN(stats.cache.hits, GetVarint64(body, &pos));
  DSTORE_ASSIGN_OR_RETURN(stats.cache.misses, GetVarint64(body, &pos));
  DSTORE_ASSIGN_OR_RETURN(stats.cache.puts, GetVarint64(body, &pos));
  DSTORE_ASSIGN_OR_RETURN(stats.cache.evictions, GetVarint64(body, &pos));
  stats.entry_count = static_cast<size_t>(entries);
  stats.charge_used = static_cast<size_t>(charge);
  return stats;
}

StatusOr<std::vector<StatusOr<Bytes>>> RemoteCacheConnection::MGet(
    const std::vector<std::string>& keys) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kMGet));
  PutVarint64(&request, keys.size());
  for (const std::string& key : keys) PutLengthPrefixed(&request, key);
  DSTORE_ASSIGN_OR_RETURN(Bytes body, RoundTrip(request));
  size_t pos = 0;
  std::vector<StatusOr<Bytes>> results;
  results.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (pos >= body.size()) return Status::Corruption("short MGET response");
    const bool found = body[pos++] != 0;
    if (found) {
      DSTORE_ASSIGN_OR_RETURN(Bytes value, GetLengthPrefixed(body, &pos));
      results.emplace_back(std::move(value));
    } else {
      results.emplace_back(Status::NotFound("no such key: " + keys[i]));
    }
  }
  return results;
}

Status RemoteCacheConnection::MSet(
    const std::vector<std::pair<std::string, Bytes>>& entries) {
  Bytes request;
  request.push_back(static_cast<uint8_t>(CacheOp::kMSet));
  PutVarint64(&request, entries.size());
  for (const auto& [key, value] : entries) {
    PutLengthPrefixed(&request, key);
    PutLengthPrefixed(&request, value);
  }
  return RoundTrip(request).status();
}

// --- Cache adapter ---

Status RemoteCache::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  return conn_->Set(key, *value);
}

StatusOr<ValuePtr> RemoteCache::Get(const std::string& key) {
  DSTORE_ASSIGN_OR_RETURN(Bytes value, conn_->Get(key));
  return MakeValue(std::move(value));
}

Status RemoteCache::Delete(const std::string& key) {
  return conn_->Delete(key);
}

void RemoteCache::Clear() { conn_->Clear().ok(); }

bool RemoteCache::Contains(const std::string& key) const {
  auto exists = conn_->Exists(key);
  return exists.ok() && *exists;
}

size_t RemoteCache::EntryCount() const {
  auto stats = conn_->Stats();
  return stats.ok() ? stats->entry_count : 0;
}

size_t RemoteCache::ChargeUsed() const {
  auto stats = conn_->Stats();
  return stats.ok() ? stats->charge_used : 0;
}

StatusOr<std::vector<std::string>> RemoteCache::Keys() const {
  return conn_->Keys();
}

CacheStats RemoteCache::Stats() const {
  auto stats = conn_->Stats();
  return stats.ok() ? stats->cache : CacheStats{};
}

// --- KeyValueStore adapter ---

Status RemoteCacheStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  return conn_->Set(key, *value);
}

StatusOr<ValuePtr> RemoteCacheStore::Get(const std::string& key) {
  DSTORE_ASSIGN_OR_RETURN(Bytes value, conn_->Get(key));
  return MakeValue(std::move(value));
}

Status RemoteCacheStore::Delete(const std::string& key) {
  return conn_->Delete(key);
}

StatusOr<bool> RemoteCacheStore::Contains(const std::string& key) {
  return conn_->Exists(key);
}

StatusOr<std::vector<std::string>> RemoteCacheStore::ListKeys() {
  return conn_->Keys();
}

StatusOr<size_t> RemoteCacheStore::Count() { return conn_->Count(); }

Status RemoteCacheStore::Clear() { return conn_->Clear(); }

std::vector<StatusOr<ValuePtr>> RemoteCacheStore::MultiGet(
    const std::vector<std::string>& keys) {
  auto batch = conn_->MGet(keys);
  std::vector<StatusOr<ValuePtr>> results;
  results.reserve(keys.size());
  if (!batch.ok()) {
    for (size_t i = 0; i < keys.size(); ++i) results.push_back(batch.status());
    return results;
  }
  for (auto& result : *batch) {
    if (result.ok()) {
      results.emplace_back(MakeValue(*std::move(result)));
    } else {
      results.emplace_back(result.status());
    }
  }
  return results;
}

Status RemoteCacheStore::MultiPut(
    const std::vector<std::pair<std::string, ValuePtr>>& entries) {
  std::vector<std::pair<std::string, Bytes>> raw;
  raw.reserve(entries.size());
  for (const auto& [key, value] : entries) {
    if (value == nullptr) return Status::InvalidArgument("null value");
    raw.emplace_back(key, *value);
  }
  return conn_->MSet(raw);
}

}  // namespace dstore
