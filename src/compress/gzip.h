#ifndef DSTORE_COMPRESS_GZIP_H_
#define DSTORE_COMPRESS_GZIP_H_

#include "common/bytes.h"
#include "common/status.h"
#include "compress/deflate.h"

namespace dstore {

// gzip container (RFC 1952) around a DEFLATE stream: 10-byte header,
// compressed body, CRC-32 and length trailer. This is the compression format
// the paper's enhanced clients use (Fig. 21).
Bytes GzipCompress(const Bytes& input,
                   DeflateLevel level = DeflateLevel::kDefault);

// Decompresses a gzip stream, verifying the CRC-32 and ISIZE trailer.
// `max_output` bounds the decompressed size (0 = unlimited).
StatusOr<Bytes> GzipDecompress(const Bytes& input, size_t max_output = 0);

}  // namespace dstore

#endif  // DSTORE_COMPRESS_GZIP_H_
