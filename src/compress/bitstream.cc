#include "compress/bitstream.h"

namespace dstore {

void BitWriter::WriteBits(uint32_t bits, int count) {
  bit_buffer_ |= static_cast<uint64_t>(bits & ((1ull << count) - 1))
                 << bit_count_;
  bit_count_ += count;
  while (bit_count_ >= 8) {
    out_->push_back(static_cast<uint8_t>(bit_buffer_));
    bit_buffer_ >>= 8;
    bit_count_ -= 8;
  }
}

void BitWriter::WriteHuffmanCode(uint32_t code, int length) {
  // Reverse the code so its MSB goes out first (RFC 1951 §3.1.1).
  uint32_t reversed = 0;
  for (int i = 0; i < length; ++i) {
    reversed = (reversed << 1) | ((code >> i) & 1);
  }
  WriteBits(reversed, length);
}

void BitWriter::AlignToByte() {
  if (bit_count_ > 0) {
    out_->push_back(static_cast<uint8_t>(bit_buffer_));
    bit_buffer_ = 0;
    bit_count_ = 0;
  }
}

void BitWriter::WriteBytes(const uint8_t* data, size_t len) {
  out_->insert(out_->end(), data, data + len);
}

StatusOr<uint32_t> BitReader::ReadBits(int count) {
  while (bit_count_ < count) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("bitstream ended unexpectedly");
    }
    bit_buffer_ |= static_cast<uint64_t>(data_[pos_++]) << bit_count_;
    bit_count_ += 8;
  }
  const uint32_t value =
      static_cast<uint32_t>(bit_buffer_ & ((1ull << count) - 1));
  bit_buffer_ >>= count;
  bit_count_ -= count;
  return value;
}

void BitReader::AlignToByte() {
  // ReadBits never leaves 8 or more buffered bits, so the buffer holds at
  // most a partial byte; discarding it lands on the next byte boundary.
  bit_buffer_ = 0;
  bit_count_ = 0;
}

Status BitReader::ReadBytes(uint8_t* out, size_t len) {
  if (bit_count_ != 0) {
    return Status::Internal("ReadBytes requires byte alignment");
  }
  if (pos_ + len > data_.size()) {
    return Status::Corruption("bitstream ended unexpectedly");
  }
  std::copy(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + len), out);
  pos_ += len;
  return Status::OK();
}

}  // namespace dstore
