#ifndef DSTORE_COMPRESS_HUFFMAN_H_
#define DSTORE_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "compress/bitstream.h"

namespace dstore {

// Computes length-limited Huffman code lengths for the given symbol
// frequencies using the package-merge algorithm (optimal for a given limit).
// Symbols with zero frequency get length 0. If only one symbol is used it is
// assigned length 1, as DEFLATE decoders require.
std::vector<int> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                         int max_bits);

// Assigns canonical codes from code lengths (RFC 1951 §3.2.2). codes[i] is
// meaningful only when lengths[i] > 0.
std::vector<uint32_t> BuildCanonicalCodes(const std::vector<int>& lengths);

// Decodes canonical Huffman codes bit by bit from a BitReader. Built from
// the same code-length array the encoder used.
class HuffmanDecoder {
 public:
  // Fails if the lengths describe an invalid (over-subscribed) code.
  static StatusOr<HuffmanDecoder> Build(const std::vector<int>& lengths);

  // Reads one symbol from `reader`.
  StatusOr<int> Decode(BitReader* reader) const;

 private:
  HuffmanDecoder() = default;

  static constexpr int kMaxBits = 15;
  // first_code_[l]: canonical code value of the first code of length l.
  // first_index_[l]: index into sorted_symbols_ of that code.
  // count_[l]: number of codes of length l.
  uint32_t first_code_[kMaxBits + 1] = {};
  int first_index_[kMaxBits + 1] = {};
  int count_[kMaxBits + 1] = {};
  std::vector<int> sorted_symbols_;
  int min_length_ = 0;
  int max_length_ = 0;
};

}  // namespace dstore

#endif  // DSTORE_COMPRESS_HUFFMAN_H_
