#ifndef DSTORE_COMPRESS_DEFLATE_H_
#define DSTORE_COMPRESS_DEFLATE_H_

#include "common/bytes.h"
#include "common/status.h"

namespace dstore {

// Compression effort for Deflate. Higher levels search hash chains more
// deeply and use lazy matching; kStored bypasses LZ77/Huffman entirely.
enum class DeflateLevel {
  kStored = 0,   // stored blocks only (no compression)
  kFast = 1,     // short chain search, greedy parsing
  kDefault = 6,  // deeper search, lazy matching
  kBest = 9,     // exhaustive-ish chain search
};

// Compresses `input` into a raw DEFLATE stream (RFC 1951). The encoder
// picks per-block between stored, fixed-Huffman, and dynamic-Huffman
// encodings, whichever is smallest.
Bytes DeflateCompress(const Bytes& input,
                      DeflateLevel level = DeflateLevel::kDefault);

// Decompresses a raw DEFLATE stream. `max_output` bounds the decompressed
// size to defend against decompression bombs (0 means unlimited).
StatusOr<Bytes> DeflateDecompress(const Bytes& input, size_t max_output = 0);

}  // namespace dstore

#endif  // DSTORE_COMPRESS_DEFLATE_H_
