#ifndef DSTORE_COMPRESS_CODEC_H_
#define DSTORE_COMPRESS_CODEC_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "compress/deflate.h"

namespace dstore {

// Pluggable compression algorithm for the DSCL. Like the Cipher interface,
// this mirrors the paper's modular design: clients compress values before
// sending them to the server to cut transfer size and storage cost.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual StatusOr<Bytes> Compress(const Bytes& input) = 0;
  virtual StatusOr<Bytes> Decompress(const Bytes& input) = 0;

  virtual std::string name() const = 0;
};

// Pass-through codec.
class IdentityCodec : public Codec {
 public:
  StatusOr<Bytes> Compress(const Bytes& input) override { return input; }
  StatusOr<Bytes> Decompress(const Bytes& input) override { return input; }
  std::string name() const override { return "identity"; }
};

// gzip (RFC 1952) codec over the from-scratch DEFLATE implementation.
class GzipCodec : public Codec {
 public:
  explicit GzipCodec(DeflateLevel level = DeflateLevel::kDefault)
      : level_(level) {}

  StatusOr<Bytes> Compress(const Bytes& input) override;
  StatusOr<Bytes> Decompress(const Bytes& input) override;
  std::string name() const override { return "gzip"; }

 private:
  DeflateLevel level_;
};

// Raw DEFLATE codec (no gzip container); smaller framing, no checksum.
class DeflateCodec : public Codec {
 public:
  explicit DeflateCodec(DeflateLevel level = DeflateLevel::kDefault)
      : level_(level) {}

  StatusOr<Bytes> Compress(const Bytes& input) override {
    return DeflateCompress(input, level_);
  }
  StatusOr<Bytes> Decompress(const Bytes& input) override {
    return DeflateDecompress(input);
  }
  std::string name() const override { return "deflate"; }

 private:
  DeflateLevel level_;
};

}  // namespace dstore

#endif  // DSTORE_COMPRESS_CODEC_H_
