#include "compress/codec.h"

#include "compress/gzip.h"

namespace dstore {

StatusOr<Bytes> GzipCodec::Compress(const Bytes& input) {
  return GzipCompress(input, level_);
}

StatusOr<Bytes> GzipCodec::Decompress(const Bytes& input) {
  return GzipDecompress(input);
}

}  // namespace dstore
