#include "compress/deflate.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "compress/bitstream.h"
#include "compress/huffman.h"

namespace dstore {

namespace {

constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindowSize = 32768;
constexpr int kEndOfBlock = 256;
constexpr int kNumLitLenSymbols = 286;
constexpr int kNumDistSymbols = 30;

// Length code table (RFC 1951 §3.2.5): codes 257..285.
constexpr int kLengthBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                                 15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                                 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLengthExtraBits[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                      1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                      4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance code table: codes 0..29.
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,    13,
                               17,   25,   33,   49,   65,   97,    129,  193,
                               257,  385,  513,  769,  1025, 1537,  2049, 3073,
                               4097, 6145, 8193, 12289, 16385, 24577};
constexpr int kDistExtraBits[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                    4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                    9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code-length code lengths appear in a dynamic header.
constexpr int kCodeLengthOrder[19] = {16, 17, 18, 0, 8,  7, 9,  6, 10, 5,
                                      11, 4,  12, 3, 13, 2, 14, 1, 15};

int LengthToCode(int length) {
  // length in [3, 258] -> code index in [0, 28]
  for (int i = 28; i >= 0; --i) {
    if (length >= kLengthBase[i]) return i;
  }
  return 0;
}

int DistToCode(int dist) {
  for (int i = 29; i >= 0; --i) {
    if (dist >= kDistBase[i]) return i;
  }
  return 0;
}

struct Token {
  uint16_t length;  // 0 means literal
  uint16_t dist;
  uint8_t literal;
};

struct Lz77Params {
  int max_chain;
  bool lazy;
};

Lz77Params ParamsForLevel(DeflateLevel level) {
  switch (level) {
    case DeflateLevel::kFast:
      return {8, false};
    case DeflateLevel::kBest:
      return {1024, true};
    case DeflateLevel::kDefault:
    default:
      return {128, true};
  }
}

constexpr int kHashBits = 15;
constexpr uint32_t kHashSize = 1u << kHashBits;

uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

int MatchLength(const uint8_t* a, const uint8_t* b, int max_len) {
  int len = 0;
  while (len < max_len && a[len] == b[len]) ++len;
  return len;
}

// Hash-chain LZ77 parser with optional one-step lazy matching.
std::vector<Token> Lz77Parse(const Bytes& input, const Lz77Params& params) {
  std::vector<Token> tokens;
  const size_t n = input.size();
  tokens.reserve(n / 2 + 16);
  if (n == 0) return tokens;

  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(n, -1);

  auto find_match = [&](size_t pos, int* best_dist) -> int {
    if (pos + kMinMatch > n) return 0;
    const int max_len = static_cast<int>(std::min<size_t>(kMaxMatch, n - pos));
    int best_len = 0;
    int chain = params.max_chain;
    int32_t candidate = head[Hash3(input.data() + pos)];
    while (candidate >= 0 && chain-- > 0) {
      const int dist = static_cast<int>(pos) - candidate;
      if (dist > kWindowSize) break;
      const int len =
          MatchLength(input.data() + candidate, input.data() + pos, max_len);
      if (len > best_len) {
        best_len = len;
        *best_dist = dist;
        if (len >= max_len) break;
      }
      candidate = prev[candidate];
    }
    return best_len >= kMinMatch ? best_len : 0;
  };

  auto insert = [&](size_t pos) {
    if (pos + kMinMatch <= n) {
      const uint32_t h = Hash3(input.data() + pos);
      prev[pos] = head[h];
      head[h] = static_cast<int32_t>(pos);
    }
  };

  size_t pos = 0;
  while (pos < n) {
    int dist = 0;
    int len = find_match(pos, &dist);
    if (len > 0 && params.lazy && pos + 1 < n) {
      // Lazy evaluation: if the next position has a strictly longer match,
      // emit a literal here and take the longer match next iteration.
      insert(pos);
      int next_dist = 0;
      const int next_len = find_match(pos + 1, &next_dist);
      if (next_len > len) {
        tokens.push_back(Token{0, 0, input[pos]});
        ++pos;
        continue;
      }
      // Keep the current match; `pos` was already inserted.
      tokens.push_back(
          Token{static_cast<uint16_t>(len), static_cast<uint16_t>(dist), 0});
      for (size_t i = pos + 1; i < pos + static_cast<size_t>(len); ++i) {
        insert(i);
      }
      pos += static_cast<size_t>(len);
      continue;
    }
    if (len > 0) {
      tokens.push_back(
          Token{static_cast<uint16_t>(len), static_cast<uint16_t>(dist), 0});
      for (size_t i = pos; i < pos + static_cast<size_t>(len); ++i) insert(i);
      pos += static_cast<size_t>(len);
    } else {
      tokens.push_back(Token{0, 0, input[pos]});
      insert(pos);
      ++pos;
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct CodeTable {
  std::vector<int> lengths;
  std::vector<uint32_t> codes;
};

CodeTable FixedLitLenTable() {
  std::vector<int> lengths(288);
  for (int i = 0; i <= 143; ++i) lengths[i] = 8;
  for (int i = 144; i <= 255; ++i) lengths[i] = 9;
  for (int i = 256; i <= 279; ++i) lengths[i] = 7;
  for (int i = 280; i <= 287; ++i) lengths[i] = 8;
  return {lengths, BuildCanonicalCodes(lengths)};
}

CodeTable FixedDistTable() {
  std::vector<int> lengths(30, 5);
  return {lengths, BuildCanonicalCodes(lengths)};
}

void CountTokenFrequencies(const std::vector<Token>& tokens,
                           std::vector<uint64_t>* litlen_freq,
                           std::vector<uint64_t>* dist_freq) {
  litlen_freq->assign(kNumLitLenSymbols, 0);
  dist_freq->assign(kNumDistSymbols, 0);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++(*litlen_freq)[t.literal];
    } else {
      ++(*litlen_freq)[257 + LengthToCode(t.length)];
      ++(*dist_freq)[DistToCode(t.dist)];
    }
  }
  ++(*litlen_freq)[kEndOfBlock];
}

void WriteTokens(BitWriter* writer, const std::vector<Token>& tokens,
                 const CodeTable& litlen, const CodeTable& dist) {
  for (const Token& t : tokens) {
    if (t.length == 0) {
      writer->WriteHuffmanCode(litlen.codes[t.literal],
                               litlen.lengths[t.literal]);
    } else {
      const int lcode = LengthToCode(t.length);
      writer->WriteHuffmanCode(litlen.codes[257 + lcode],
                               litlen.lengths[257 + lcode]);
      if (kLengthExtraBits[lcode] > 0) {
        writer->WriteBits(
            static_cast<uint32_t>(t.length - kLengthBase[lcode]),
            kLengthExtraBits[lcode]);
      }
      const int dcode = DistToCode(t.dist);
      writer->WriteHuffmanCode(dist.codes[dcode], dist.lengths[dcode]);
      if (kDistExtraBits[dcode] > 0) {
        writer->WriteBits(static_cast<uint32_t>(t.dist - kDistBase[dcode]),
                          kDistExtraBits[dcode]);
      }
    }
  }
  writer->WriteHuffmanCode(litlen.codes[kEndOfBlock],
                           litlen.lengths[kEndOfBlock]);
}

// Run-length encodes the combined litlen+dist code-length array using the
// code-length alphabet (symbols 0-15 literal, 16 repeat-prev, 17/18 zeros).
struct ClSymbol {
  int symbol;
  int extra_value;
  int extra_bits;
};

std::vector<ClSymbol> RunLengthEncodeCodeLengths(
    const std::vector<int>& lengths) {
  std::vector<ClSymbol> out;
  size_t i = 0;
  while (i < lengths.size()) {
    const int value = lengths[i];
    size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == value) ++run;

    if (value == 0) {
      size_t remaining = run;
      while (remaining >= 11) {
        const int reps = static_cast<int>(std::min<size_t>(remaining, 138));
        out.push_back({18, reps - 11, 7});
        remaining -= static_cast<size_t>(reps);
      }
      if (remaining >= 3) {
        out.push_back({17, static_cast<int>(remaining) - 3, 3});
        remaining = 0;
      }
      while (remaining-- > 0) out.push_back({0, 0, 0});
    } else {
      out.push_back({value, 0, 0});
      size_t remaining = run - 1;
      while (remaining >= 3) {
        const int reps = static_cast<int>(std::min<size_t>(remaining, 6));
        out.push_back({16, reps - 3, 2});
        remaining -= static_cast<size_t>(reps);
      }
      while (remaining-- > 0) out.push_back({value, 0, 0});
    }
    i += run;
  }
  return out;
}

// Serialized size in bits of a dynamic-Huffman block (header + body).
struct DynamicPlan {
  CodeTable litlen;
  CodeTable dist;
  std::vector<ClSymbol> cl_stream;
  CodeTable cl_table;
  int hlit;
  int hdist;
  int hclen;
  uint64_t header_bits;
};

DynamicPlan PlanDynamicBlock(const std::vector<uint64_t>& litlen_freq,
                             const std::vector<uint64_t>& dist_freq) {
  DynamicPlan plan;
  plan.litlen.lengths = BuildHuffmanCodeLengths(litlen_freq, 15);
  plan.litlen.codes = BuildCanonicalCodes(plan.litlen.lengths);
  plan.dist.lengths = BuildHuffmanCodeLengths(dist_freq, 15);
  plan.dist.codes = BuildCanonicalCodes(plan.dist.lengths);

  // HLIT/HDIST: number of coded lengths (at least 257 / 1).
  int hlit = kNumLitLenSymbols;
  while (hlit > 257 && plan.litlen.lengths[hlit - 1] == 0) --hlit;
  int hdist = kNumDistSymbols;
  while (hdist > 1 && plan.dist.lengths[hdist - 1] == 0) --hdist;
  plan.hlit = hlit;
  plan.hdist = hdist;

  std::vector<int> all_lengths;
  all_lengths.reserve(static_cast<size_t>(hlit + hdist));
  all_lengths.insert(all_lengths.end(), plan.litlen.lengths.begin(),
                     plan.litlen.lengths.begin() + hlit);
  all_lengths.insert(all_lengths.end(), plan.dist.lengths.begin(),
                     plan.dist.lengths.begin() + hdist);
  plan.cl_stream = RunLengthEncodeCodeLengths(all_lengths);

  std::vector<uint64_t> cl_freq(19, 0);
  for (const ClSymbol& s : plan.cl_stream) ++cl_freq[s.symbol];
  plan.cl_table.lengths = BuildHuffmanCodeLengths(cl_freq, 7);
  plan.cl_table.codes = BuildCanonicalCodes(plan.cl_table.lengths);

  int hclen = 19;
  while (hclen > 4 &&
         plan.cl_table.lengths[kCodeLengthOrder[hclen - 1]] == 0) {
    --hclen;
  }
  plan.hclen = hclen;

  uint64_t bits = 5 + 5 + 4 + 3ull * static_cast<uint64_t>(hclen);
  for (const ClSymbol& s : plan.cl_stream) {
    bits += static_cast<uint64_t>(plan.cl_table.lengths[s.symbol]) +
            static_cast<uint64_t>(s.extra_bits);
  }
  plan.header_bits = bits;
  return plan;
}

uint64_t BodyBits(const std::vector<uint64_t>& litlen_freq,
                  const std::vector<uint64_t>& dist_freq,
                  const std::vector<int>& litlen_lengths,
                  const std::vector<int>& dist_lengths) {
  uint64_t bits = 0;
  for (size_t i = 0; i < litlen_freq.size() && i < litlen_lengths.size(); ++i) {
    bits += litlen_freq[i] * static_cast<uint64_t>(litlen_lengths[i]);
  }
  for (size_t i = 0; i < dist_freq.size() && i < dist_lengths.size(); ++i) {
    bits += dist_freq[i] * static_cast<uint64_t>(dist_lengths[i]);
  }
  return bits;
}

uint64_t ExtraBits(const std::vector<Token>& tokens) {
  uint64_t bits = 0;
  for (const Token& t : tokens) {
    if (t.length > 0) {
      bits += static_cast<uint64_t>(kLengthExtraBits[LengthToCode(t.length)]);
      bits += static_cast<uint64_t>(kDistExtraBits[DistToCode(t.dist)]);
    }
  }
  return bits;
}

void WriteStoredBlocks(BitWriter* writer, const Bytes& input) {
  size_t off = 0;
  do {
    const size_t chunk = std::min<size_t>(input.size() - off, 65535);
    const bool final_block = off + chunk == input.size();
    writer->WriteBits(final_block ? 1 : 0, 1);
    writer->WriteBits(0, 2);  // BTYPE=00 stored
    writer->AlignToByte();
    const uint16_t len = static_cast<uint16_t>(chunk);
    const uint16_t nlen = static_cast<uint16_t>(~len);
    uint8_t header[4] = {static_cast<uint8_t>(len),
                         static_cast<uint8_t>(len >> 8),
                         static_cast<uint8_t>(nlen),
                         static_cast<uint8_t>(nlen >> 8)};
    writer->WriteBytes(header, 4);
    writer->WriteBytes(input.data() + off, chunk);
    off += chunk;
  } while (off < input.size());
}

}  // namespace

Bytes DeflateCompress(const Bytes& input, DeflateLevel level) {
  Bytes out;
  BitWriter writer(&out);

  if (level == DeflateLevel::kStored || input.empty()) {
    if (input.empty()) {
      // An empty final stored block.
      writer.WriteBits(1, 1);
      writer.WriteBits(0, 2);
      writer.AlignToByte();
      const uint8_t header[4] = {0, 0, 0xff, 0xff};
      writer.WriteBytes(header, 4);
      return out;
    }
    WriteStoredBlocks(&writer, input);
    return out;
  }

  const std::vector<Token> tokens = Lz77Parse(input, ParamsForLevel(level));

  std::vector<uint64_t> litlen_freq, dist_freq;
  CountTokenFrequencies(tokens, &litlen_freq, &dist_freq);

  const CodeTable fixed_litlen = FixedLitLenTable();
  const CodeTable fixed_dist = FixedDistTable();
  const uint64_t token_extra = ExtraBits(tokens);

  DynamicPlan plan = PlanDynamicBlock(litlen_freq, dist_freq);
  const uint64_t dynamic_bits =
      3 + plan.header_bits +
      BodyBits(litlen_freq, dist_freq, plan.litlen.lengths,
               plan.dist.lengths) +
      token_extra;
  const uint64_t fixed_bits =
      3 +
      BodyBits(litlen_freq, dist_freq, fixed_litlen.lengths,
               fixed_dist.lengths) +
      token_extra;
  const uint64_t stored_bits =
      (input.size() + 5 * (input.size() / 65535 + 1)) * 8 + 3;

  if (stored_bits < dynamic_bits && stored_bits < fixed_bits) {
    WriteStoredBlocks(&writer, input);
    return out;
  }

  writer.WriteBits(1, 1);  // BFINAL
  if (fixed_bits <= dynamic_bits) {
    writer.WriteBits(1, 2);  // BTYPE=01 fixed
    WriteTokens(&writer, tokens, fixed_litlen, fixed_dist);
  } else {
    writer.WriteBits(2, 2);  // BTYPE=10 dynamic
    writer.WriteBits(static_cast<uint32_t>(plan.hlit - 257), 5);
    writer.WriteBits(static_cast<uint32_t>(plan.hdist - 1), 5);
    writer.WriteBits(static_cast<uint32_t>(plan.hclen - 4), 4);
    for (int i = 0; i < plan.hclen; ++i) {
      writer.WriteBits(
          static_cast<uint32_t>(plan.cl_table.lengths[kCodeLengthOrder[i]]),
          3);
    }
    for (const ClSymbol& s : plan.cl_stream) {
      writer.WriteHuffmanCode(plan.cl_table.codes[s.symbol],
                              plan.cl_table.lengths[s.symbol]);
      if (s.extra_bits > 0) {
        writer.WriteBits(static_cast<uint32_t>(s.extra_value), s.extra_bits);
      }
    }
    WriteTokens(&writer, tokens, plan.litlen, plan.dist);
  }
  writer.Finish();
  return out;
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

namespace {

Status InflateBlockBody(BitReader* reader, const HuffmanDecoder& litlen,
                        const HuffmanDecoder* dist, size_t max_output,
                        Bytes* out) {
  for (;;) {
    DSTORE_ASSIGN_OR_RETURN(int symbol, litlen.Decode(reader));
    if (symbol == kEndOfBlock) return Status::OK();
    if (symbol < 256) {
      out->push_back(static_cast<uint8_t>(symbol));
    } else {
      const int lcode = symbol - 257;
      if (lcode >= 29) return Status::Corruption("invalid length code");
      DSTORE_ASSIGN_OR_RETURN(uint32_t lextra,
                              reader->ReadBits(kLengthExtraBits[lcode]));
      const int length = kLengthBase[lcode] + static_cast<int>(lextra);

      if (dist == nullptr) {
        return Status::Corruption("length code without distance alphabet");
      }
      DSTORE_ASSIGN_OR_RETURN(int dcode, dist->Decode(reader));
      if (dcode >= 30) return Status::Corruption("invalid distance code");
      DSTORE_ASSIGN_OR_RETURN(uint32_t dextra,
                              reader->ReadBits(kDistExtraBits[dcode]));
      const size_t distance =
          static_cast<size_t>(kDistBase[dcode]) + dextra;
      if (distance > out->size()) {
        return Status::Corruption("distance exceeds output size");
      }
      // Byte-by-byte copy supports overlapping matches (dist < length).
      size_t from = out->size() - distance;
      for (int i = 0; i < length; ++i) {
        out->push_back((*out)[from + static_cast<size_t>(i)]);
      }
    }
    if (max_output != 0 && out->size() > max_output) {
      return Status::InvalidArgument("decompressed data exceeds max_output");
    }
  }
}

StatusOr<std::pair<HuffmanDecoder, HuffmanDecoder>> ReadDynamicTables(
    BitReader* reader) {
  DSTORE_ASSIGN_OR_RETURN(uint32_t hlit_bits, reader->ReadBits(5));
  DSTORE_ASSIGN_OR_RETURN(uint32_t hdist_bits, reader->ReadBits(5));
  DSTORE_ASSIGN_OR_RETURN(uint32_t hclen_bits, reader->ReadBits(4));
  const int hlit = static_cast<int>(hlit_bits) + 257;
  const int hdist = static_cast<int>(hdist_bits) + 1;
  const int hclen = static_cast<int>(hclen_bits) + 4;
  if (hlit > 286 || hdist > 30) {
    return Status::Corruption("dynamic header alphabet too large");
  }

  std::vector<int> cl_lengths(19, 0);
  for (int i = 0; i < hclen; ++i) {
    DSTORE_ASSIGN_OR_RETURN(uint32_t l, reader->ReadBits(3));
    cl_lengths[kCodeLengthOrder[i]] = static_cast<int>(l);
  }
  DSTORE_ASSIGN_OR_RETURN(HuffmanDecoder cl_decoder,
                          HuffmanDecoder::Build(cl_lengths));

  std::vector<int> all_lengths;
  all_lengths.reserve(static_cast<size_t>(hlit + hdist));
  while (all_lengths.size() < static_cast<size_t>(hlit + hdist)) {
    DSTORE_ASSIGN_OR_RETURN(int symbol, cl_decoder.Decode(reader));
    if (symbol < 16) {
      all_lengths.push_back(symbol);
    } else if (symbol == 16) {
      if (all_lengths.empty()) {
        return Status::Corruption("repeat code with no previous length");
      }
      DSTORE_ASSIGN_OR_RETURN(uint32_t extra, reader->ReadBits(2));
      const int prev_len = all_lengths.back();
      for (uint32_t i = 0; i < 3 + extra; ++i) all_lengths.push_back(prev_len);
    } else if (symbol == 17) {
      DSTORE_ASSIGN_OR_RETURN(uint32_t extra, reader->ReadBits(3));
      for (uint32_t i = 0; i < 3 + extra; ++i) all_lengths.push_back(0);
    } else {  // 18
      DSTORE_ASSIGN_OR_RETURN(uint32_t extra, reader->ReadBits(7));
      for (uint32_t i = 0; i < 11 + extra; ++i) all_lengths.push_back(0);
    }
  }
  if (all_lengths.size() != static_cast<size_t>(hlit + hdist)) {
    return Status::Corruption("code length stream overruns header counts");
  }

  std::vector<int> litlen_lengths(all_lengths.begin(),
                                  all_lengths.begin() + hlit);
  std::vector<int> dist_lengths(all_lengths.begin() + hlit, all_lengths.end());
  DSTORE_ASSIGN_OR_RETURN(HuffmanDecoder litlen,
                          HuffmanDecoder::Build(litlen_lengths));
  // A block with no matches may encode a degenerate distance alphabet (a
  // single zero-length entry). Build() rejects all-zero alphabets, so fall
  // back to the fixed table — it will never be consulted.
  bool any_dist = false;
  for (int l : dist_lengths) any_dist = any_dist || l > 0;
  if (!any_dist) dist_lengths.assign(30, 5);
  DSTORE_ASSIGN_OR_RETURN(HuffmanDecoder dist,
                          HuffmanDecoder::Build(dist_lengths));
  return std::make_pair(std::move(litlen), std::move(dist));
}

}  // namespace

StatusOr<Bytes> DeflateDecompress(const Bytes& input, size_t max_output) {
  BitReader reader(input);
  Bytes out;
  for (;;) {
    DSTORE_ASSIGN_OR_RETURN(uint32_t bfinal, reader.ReadBits(1));
    DSTORE_ASSIGN_OR_RETURN(uint32_t btype, reader.ReadBits(2));
    if (btype == 0) {
      reader.AlignToByte();
      uint8_t header[4];
      DSTORE_RETURN_IF_ERROR(reader.ReadBytes(header, 4));
      const uint16_t len =
          static_cast<uint16_t>(header[0] | (header[1] << 8));
      const uint16_t nlen =
          static_cast<uint16_t>(header[2] | (header[3] << 8));
      if (static_cast<uint16_t>(~len) != nlen) {
        return Status::Corruption("stored block LEN/NLEN mismatch");
      }
      const size_t old_size = out.size();
      out.resize(old_size + len);
      DSTORE_RETURN_IF_ERROR(reader.ReadBytes(out.data() + old_size, len));
      if (max_output != 0 && out.size() > max_output) {
        return Status::InvalidArgument("decompressed data exceeds max_output");
      }
    } else if (btype == 1) {
      std::vector<int> litlen_lengths(288);
      for (int i = 0; i <= 143; ++i) litlen_lengths[i] = 8;
      for (int i = 144; i <= 255; ++i) litlen_lengths[i] = 9;
      for (int i = 256; i <= 279; ++i) litlen_lengths[i] = 7;
      for (int i = 280; i <= 287; ++i) litlen_lengths[i] = 8;
      DSTORE_ASSIGN_OR_RETURN(HuffmanDecoder litlen,
                              HuffmanDecoder::Build(litlen_lengths));
      DSTORE_ASSIGN_OR_RETURN(HuffmanDecoder dist,
                              HuffmanDecoder::Build(std::vector<int>(30, 5)));
      DSTORE_RETURN_IF_ERROR(
          InflateBlockBody(&reader, litlen, &dist, max_output, &out));
    } else if (btype == 2) {
      DSTORE_ASSIGN_OR_RETURN(auto tables, ReadDynamicTables(&reader));
      DSTORE_RETURN_IF_ERROR(InflateBlockBody(&reader, tables.first,
                                              &tables.second, max_output,
                                              &out));
    } else {
      return Status::Corruption("reserved DEFLATE block type");
    }
    if (bfinal) break;
  }
  return out;
}

}  // namespace dstore
