#ifndef DSTORE_COMPRESS_CRC32_H_
#define DSTORE_COMPRESS_CRC32_H_

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace dstore {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
// by the gzip container and by store file formats for corruption detection.
// `seed` allows incremental computation: pass the previous result.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

inline uint32_t Crc32(const Bytes& data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace dstore

#endif  // DSTORE_COMPRESS_CRC32_H_
