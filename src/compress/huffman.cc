#include "compress/huffman.h"

#include <algorithm>
#include <cstdint>

namespace dstore {

namespace {

struct Package {
  uint64_t weight;
  // Leaf symbols contained in this package (with multiplicity across merges).
  std::vector<int> symbols;
};

bool WeightLess(const Package& a, const Package& b) {
  return a.weight < b.weight;
}

}  // namespace

std::vector<int> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                         int max_bits) {
  const size_t n = freqs.size();
  std::vector<int> lengths(n, 0);

  std::vector<Package> leaves;
  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] > 0) leaves.push_back({freqs[i], {static_cast<int>(i)}});
  }
  if (leaves.empty()) return lengths;
  if (leaves.size() == 1) {
    lengths[leaves[0].symbols[0]] = 1;
    return lengths;
  }
  std::sort(leaves.begin(), leaves.end(), WeightLess);

  // Package-merge: run max_bits rounds; each round pairs up the current list
  // and merges the pairs with the original leaves. After the final round the
  // first 2*(num_leaves - 1) packages determine the code lengths: a symbol's
  // length is the number of selected packages containing it.
  std::vector<Package> current = leaves;
  for (int level = 1; level < max_bits; ++level) {
    std::vector<Package> paired;
    for (size_t i = 0; i + 1 < current.size(); i += 2) {
      Package merged;
      merged.weight = current[i].weight + current[i + 1].weight;
      merged.symbols = current[i].symbols;
      merged.symbols.insert(merged.symbols.end(),
                            current[i + 1].symbols.begin(),
                            current[i + 1].symbols.end());
      paired.push_back(std::move(merged));
    }
    std::vector<Package> next;
    next.reserve(paired.size() + leaves.size());
    std::merge(paired.begin(), paired.end(), leaves.begin(), leaves.end(),
               std::back_inserter(next), WeightLess);
    current = std::move(next);
  }

  const size_t take = 2 * (leaves.size() - 1);
  for (size_t i = 0; i < take && i < current.size(); ++i) {
    for (int sym : current[i].symbols) ++lengths[sym];
  }
  return lengths;
}

std::vector<uint32_t> BuildCanonicalCodes(const std::vector<int>& lengths) {
  int max_len = 0;
  for (int l : lengths) max_len = std::max(max_len, l);

  std::vector<int> length_count(max_len + 1, 0);
  for (int l : lengths) {
    if (l > 0) ++length_count[l];
  }

  std::vector<uint32_t> next_code(max_len + 2, 0);
  uint32_t code = 0;
  for (int bits = 1; bits <= max_len; ++bits) {
    code = (code + static_cast<uint32_t>(length_count[bits - 1])) << 1;
    next_code[bits] = code;
  }

  std::vector<uint32_t> codes(lengths.size(), 0);
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) codes[i] = next_code[lengths[i]]++;
  }
  return codes;
}

StatusOr<HuffmanDecoder> HuffmanDecoder::Build(const std::vector<int>& lengths) {
  HuffmanDecoder decoder;
  int total = 0;
  for (size_t i = 0; i < lengths.size(); ++i) {
    const int l = lengths[i];
    if (l < 0 || l > kMaxBits) {
      return Status::Corruption("Huffman code length out of range");
    }
    if (l > 0) {
      ++decoder.count_[l];
      ++total;
      decoder.max_length_ = std::max(decoder.max_length_, l);
      decoder.min_length_ =
          decoder.min_length_ == 0 ? l : std::min(decoder.min_length_, l);
    }
  }
  if (total == 0) {
    return Status::Corruption("Huffman code has no symbols");
  }

  // Kraft inequality check: reject over-subscribed codes. (Incomplete codes
  // appear in legal DEFLATE streams for the distance alphabet, so undershoot
  // is allowed.)
  uint64_t kraft = 0;
  for (int l = 1; l <= kMaxBits; ++l) {
    kraft += static_cast<uint64_t>(decoder.count_[l]) << (kMaxBits - l);
  }
  if (kraft > (1ull << kMaxBits)) {
    return Status::Corruption("Huffman code is over-subscribed");
  }

  uint32_t code = 0;
  int index = 0;
  for (int l = 1; l <= kMaxBits; ++l) {
    code = (code + static_cast<uint32_t>(decoder.count_[l - 1])) << 1;
    decoder.first_code_[l] = code;
    decoder.first_index_[l] = index;
    index += decoder.count_[l];
  }

  // sorted_symbols_: symbols ordered by (length, symbol) — canonical order.
  decoder.sorted_symbols_.resize(total);
  std::vector<int> fill = std::vector<int>(kMaxBits + 1, 0);
  for (int l = 1; l <= kMaxBits; ++l) fill[l] = decoder.first_index_[l];
  for (size_t i = 0; i < lengths.size(); ++i) {
    if (lengths[i] > 0) {
      decoder.sorted_symbols_[fill[lengths[i]]++] = static_cast<int>(i);
    }
  }
  return decoder;
}

StatusOr<int> HuffmanDecoder::Decode(BitReader* reader) const {
  uint32_t code = 0;
  for (int length = 1; length <= max_length_; ++length) {
    DSTORE_ASSIGN_OR_RETURN(uint32_t bit, reader->ReadBits(1));
    code = (code << 1) | bit;
    if (length < min_length_) continue;
    const uint32_t first = first_code_[length];
    if (code >= first && code < first + static_cast<uint32_t>(count_[length])) {
      return sorted_symbols_[first_index_[length] + (code - first)];
    }
  }
  return Status::Corruption("invalid Huffman code in stream");
}

}  // namespace dstore
