#include "compress/gzip.h"

#include "compress/crc32.h"

namespace dstore {

namespace {
constexpr uint8_t kGzipMagic1 = 0x1f;
constexpr uint8_t kGzipMagic2 = 0x8b;
constexpr uint8_t kMethodDeflate = 8;
}  // namespace

Bytes GzipCompress(const Bytes& input, DeflateLevel level) {
  Bytes out;
  out.reserve(input.size() / 2 + 32);
  // Header: magic, method, flags=0, mtime=0, xfl=0, os=255 (unknown).
  const uint8_t header[10] = {kGzipMagic1, kGzipMagic2, kMethodDeflate,
                              0,           0,           0,
                              0,           0,           0,
                              255};
  out.insert(out.end(), header, header + sizeof(header));

  Bytes body = DeflateCompress(input, level);
  out.insert(out.end(), body.begin(), body.end());

  PutFixed32(&out, Crc32(input));
  PutFixed32(&out, static_cast<uint32_t>(input.size()));
  return out;
}

StatusOr<Bytes> GzipDecompress(const Bytes& input, size_t max_output) {
  if (input.size() < 18) {
    return Status::Corruption("gzip stream too short");
  }
  if (input[0] != kGzipMagic1 || input[1] != kGzipMagic2) {
    return Status::Corruption("bad gzip magic");
  }
  if (input[2] != kMethodDeflate) {
    return Status::NotSupported("unsupported gzip compression method");
  }
  const uint8_t flags = input[3];
  size_t pos = 10;

  // Skip optional header fields (FEXTRA, FNAME, FCOMMENT, FHCRC).
  if (flags & 0x04) {  // FEXTRA
    if (pos + 2 > input.size()) return Status::Corruption("truncated FEXTRA");
    const size_t xlen = input[pos] | (input[pos + 1] << 8);
    pos += 2 + xlen;
  }
  for (const uint8_t name_flag : {uint8_t{0x08}, uint8_t{0x10}}) {
    if (flags & name_flag) {  // FNAME / FCOMMENT: zero-terminated
      while (pos < input.size() && input[pos] != 0) ++pos;
      if (pos >= input.size()) return Status::Corruption("truncated string");
      ++pos;
    }
  }
  if (flags & 0x02) pos += 2;  // FHCRC
  if (pos + 8 > input.size()) {
    return Status::Corruption("gzip stream too short after header");
  }

  const Bytes body(input.begin() + static_cast<ptrdiff_t>(pos),
                   input.end() - 8);
  DSTORE_ASSIGN_OR_RETURN(Bytes out, DeflateDecompress(body, max_output));

  const uint8_t* trailer = input.data() + input.size() - 8;
  const uint32_t expected_crc = DecodeFixed32(trailer);
  const uint32_t expected_size = DecodeFixed32(trailer + 4);
  if (expected_size != static_cast<uint32_t>(out.size())) {
    return Status::Corruption("gzip ISIZE mismatch");
  }
  if (expected_crc != Crc32(out)) {
    return Status::Corruption("gzip CRC mismatch");
  }
  return out;
}

}  // namespace dstore
