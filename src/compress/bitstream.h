#ifndef DSTORE_COMPRESS_BITSTREAM_H_
#define DSTORE_COMPRESS_BITSTREAM_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace dstore {

// LSB-first bit writer, matching DEFLATE's bit packing: bits are written into
// each byte starting at the least significant position (RFC 1951 §3.1.1).
class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  // Writes the low `count` bits of `bits`, LSB first. count <= 32.
  void WriteBits(uint32_t bits, int count);

  // Writes a Huffman code, which RFC 1951 packs starting from the code's
  // most significant bit — i.e. the code must be emitted bit-reversed.
  void WriteHuffmanCode(uint32_t code, int length);

  // Pads the current byte with zero bits so the stream is byte-aligned.
  void AlignToByte();

  // Appends raw bytes; the stream must be byte-aligned.
  void WriteBytes(const uint8_t* data, size_t len);

  // Flushes any buffered partial byte. Call once at the end.
  void Finish() { AlignToByte(); }

 private:
  Bytes* out_;
  uint64_t bit_buffer_ = 0;
  int bit_count_ = 0;
};

// LSB-first bit reader over a byte buffer.
class BitReader {
 public:
  explicit BitReader(const Bytes& data) : data_(data) {}

  // Reads `count` bits (LSB first). Fails past end of input.
  StatusOr<uint32_t> ReadBits(int count);

  // Discards buffered bits so the next read starts at a byte boundary.
  void AlignToByte();

  // Copies `len` aligned bytes into `out`.
  Status ReadBytes(uint8_t* out, size_t len);

  // Byte position of the next unread byte (after AlignToByte).
  size_t BytePosition() const { return pos_; }

  bool AtEnd() const { return pos_ >= data_.size() && bit_count_ == 0; }

 private:
  const Bytes& data_;
  size_t pos_ = 0;
  uint64_t bit_buffer_ = 0;
  int bit_count_ = 0;
};

}  // namespace dstore

#endif  // DSTORE_COMPRESS_BITSTREAM_H_
