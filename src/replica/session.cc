#include "replica/session.h"

namespace dstore {
namespace replica {

namespace {
thread_local Session* g_current_session = nullptr;
}  // namespace

uint64_t Session::HighWaterFor(const std::string& group) const {
  MutexLock lock(mu_);
  auto it = marks_.find(group);
  return it == marks_.end() ? 0 : it->second;
}

void Session::NoteWrite(const std::string& group, uint64_t seq) {
  MutexLock lock(mu_);
  uint64_t& mark = marks_[group];
  if (seq > mark) mark = seq;
}

std::string Session::Describe() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [group, seq] : marks_) {
    if (!out.empty()) out += ' ';
    out += group + "=" + std::to_string(seq);
  }
  return out;
}

Session* CurrentSession() { return g_current_session; }

ScopedSession::ScopedSession(Session* session)
    : previous_(g_current_session) {
  g_current_session = session;
}

ScopedSession::~ScopedSession() { g_current_session = previous_; }

}  // namespace replica
}  // namespace dstore
