#include "replica/replicated_store.h"

namespace dstore {
namespace replica {

StatusOr<std::shared_ptr<ReplicatedStore>> ReplicatedStore::Create(
    std::vector<Backend> backends, ReplicaGroup::Options options) {
  std::vector<ReplicaGroup::ReplicaSpec> specs;
  specs.reserve(backends.size());
  for (auto& backend : backends) {
    if (backend.store == nullptr) {
      return Status::InvalidArgument("null replica backend");
    }
    specs.push_back({std::move(backend.name),
                     std::make_shared<LocalReplica>(std::move(backend.store))});
  }
  DSTORE_ASSIGN_OR_RETURN(auto group,
                          ReplicaGroup::Create(std::move(specs),
                                               std::move(options)));
  return std::make_shared<ReplicatedStore>(
      std::shared_ptr<ReplicaGroup>(std::move(group)));
}

uint64_t ReplicatedStore::SessionMinSeq() const {
  Session* session = CurrentSession();
  return session == nullptr ? 0 : session->HighWaterFor(group_->name());
}

void ReplicatedStore::NoteSessionWrite(uint64_t seq) const {
  Session* session = CurrentSession();
  if (session != nullptr) session->NoteWrite(group_->name(), seq);
}

Status ReplicatedStore::Put(const std::string& key, ValuePtr value) {
  DSTORE_ASSIGN_OR_RETURN(uint64_t seq,
                          group_->Write(OpType::kPut, key, std::move(value)));
  NoteSessionWrite(seq);
  return Status::OK();
}

StatusOr<ValuePtr> ReplicatedStore::Get(const std::string& key) {
  return group_->Read(key, SessionMinSeq());
}

Status ReplicatedStore::Delete(const std::string& key) {
  DSTORE_ASSIGN_OR_RETURN(uint64_t seq,
                          group_->Write(OpType::kDelete, key, nullptr));
  NoteSessionWrite(seq);
  return Status::OK();
}

StatusOr<bool> ReplicatedStore::Contains(const std::string& key) {
  return group_->ContainsRead(key, SessionMinSeq());
}

StatusOr<std::vector<std::string>> ReplicatedStore::ListKeys() {
  return group_->ListKeysRead(SessionMinSeq());
}

StatusOr<size_t> ReplicatedStore::Count() {
  return group_->CountRead(SessionMinSeq());
}

Status ReplicatedStore::Clear() {
  DSTORE_ASSIGN_OR_RETURN(uint64_t seq,
                          group_->Write(OpType::kClear, std::string(),
                                        nullptr));
  NoteSessionWrite(seq);
  return Status::OK();
}

std::string ReplicatedStore::Name() const {
  const auto status = group_->GetStatus();
  std::string name = "replicated(" + status.name;
  for (const auto& replica : status.replicas) {
    name += "," + replica.name;
  }
  name += ")";
  return name;
}

}  // namespace replica
}  // namespace dstore
