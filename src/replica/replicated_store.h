#ifndef DSTORE_REPLICA_REPLICATED_STORE_H_
#define DSTORE_REPLICA_REPLICATED_STORE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "replica/group.h"
#include "replica/session.h"
#include "store/key_value.h"

namespace dstore {
namespace replica {

// KeyValueStore facade over one ReplicaGroup: the decorator that makes a
// replica group composable with every other layer (sharding above it,
// retries/monitoring around it, any backend inside it). Writes replicate
// through the group's primary and ack at the configured W; reads come from
// the most-caught-up admissible replica, gated by the ambient Session's
// high-water mark when one is installed (see session.h).
class ReplicatedStore : public KeyValueStore {
 public:
  struct Backend {
    std::string name;
    std::shared_ptr<KeyValueStore> store;
  };

  // Wraps each backend in a LocalReplica; the first backend starts as
  // primary.
  static StatusOr<std::shared_ptr<ReplicatedStore>> Create(
      std::vector<Backend> backends, ReplicaGroup::Options options);

  // Adopts an already-built group (remote transports, tests).
  explicit ReplicatedStore(std::shared_ptr<ReplicaGroup> group)
      : group_(std::move(group)) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override;

  ReplicaGroup* group() { return group_.get(); }

 private:
  uint64_t SessionMinSeq() const;
  void NoteSessionWrite(uint64_t seq) const;

  const std::shared_ptr<ReplicaGroup> group_;
};

}  // namespace replica
}  // namespace dstore

#endif  // DSTORE_REPLICA_REPLICATED_STORE_H_
