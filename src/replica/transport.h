#ifndef DSTORE_REPLICA_TRANSPORT_H_
#define DSTORE_REPLICA_TRANSPORT_H_

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/sync.h"
#include "replica/log.h"
#include "store/cloud_client.h"
#include "store/key_value.h"

namespace dstore {
namespace replica {

// A replica's durable high-water marks: the leadership epoch it has accepted
// and the highest log sequence it has applied.
struct ReplicaState {
  uint64_t epoch = 0;
  uint64_t applied = 0;
};

// The status a replica answers when an apply carries a stale epoch — the
// fencing that stops a deposed primary's late writes from landing after
// failover. Deliberately NOT a transient error: the caller's leadership is
// gone, so retrying or failing over on its behalf would be wrong.
Status FencedStatus(uint64_t entry_epoch, uint64_t accepted_epoch);
bool IsFenced(const Status& status);

// How a ReplicaGroup talks to one replica. Two implementations: LocalReplica
// wraps an in-process KeyValueStore plus in-memory epoch/applied state;
// CloudReplica speaks the /replica/* verbs of a CloudStoreServer, whose
// state survives the client (so a rejoining group handle probes the truth).
class ReplicaTransport {
 public:
  virtual ~ReplicaTransport() = default;

  // Applies one log entry under `epoch`. Fenced (see above) when the
  // replica has accepted a higher epoch; idempotent when `entry.seq` is at
  // or below the replica's applied watermark.
  virtual Status Apply(const LogEntry& entry, uint64_t epoch) = 0;

  // Raises the replica's accepted epoch and caps its applied watermark at
  // `max_applied` (a new primary's history may be shorter than a deposed
  // one's — the surplus is fenced off and repaired by anti-entropy).
  virtual Status Fence(uint64_t epoch, uint64_t max_applied) = 0;

  // The replica's current state (used on rejoin and by status surfaces).
  virtual StatusOr<ReplicaState> Probe() = 0;

  // The read surface — the replica's backing store. Never null.
  virtual KeyValueStore* store() = 0;
};

// In-process replica: any KeyValueStore plus local metadata.
class LocalReplica : public ReplicaTransport {
 public:
  explicit LocalReplica(std::shared_ptr<KeyValueStore> store)
      : store_(std::move(store)) {}

  Status Apply(const LogEntry& entry, uint64_t epoch) override;
  Status Fence(uint64_t epoch, uint64_t max_applied) override;
  StatusOr<ReplicaState> Probe() override;
  KeyValueStore* store() override { return store_.get(); }

 private:
  const std::shared_ptr<KeyValueStore> store_;
  Mutex mu_;
  ReplicaState state_ GUARDED_BY(mu_);
};

// Remote replica behind a CloudStoreServer: applies and fencing go over the
// /replica/* verbs, so the epoch/applied watermarks live server-side and
// fencing holds across independent client handles (split-brain safety).
class CloudReplica : public ReplicaTransport {
 public:
  explicit CloudReplica(std::unique_ptr<CloudStoreClient> client)
      : client_(std::move(client)) {}

  Status Apply(const LogEntry& entry, uint64_t epoch) override;
  Status Fence(uint64_t epoch, uint64_t max_applied) override;
  StatusOr<ReplicaState> Probe() override;
  KeyValueStore* store() override { return client_.get(); }

 private:
  const std::unique_ptr<CloudStoreClient> client_;
};

}  // namespace replica
}  // namespace dstore

#endif  // DSTORE_REPLICA_TRANSPORT_H_
