#include "replica/placement.h"

namespace dstore {
namespace replica {

StatusOr<std::shared_ptr<ShardedStore>> BuildReplicatedRing(
    const ReplicatedRingOptions& options) {
  if (options.backend_factory == nullptr) {
    return Status::InvalidArgument("replicated ring needs a backend factory");
  }
  if (options.groups == 0 || options.replication_factor == 0) {
    return Status::InvalidArgument("groups and replication_factor must be > 0");
  }
  if (options.nodes.size() < options.replication_factor) {
    return Status::InvalidArgument(
        "replicated ring needs at least replication_factor nodes");
  }
  shard::HashRing ring(options.ring);
  for (const auto& node : options.nodes) ring.AddShard(node);

  ShardedStore::ShardList shards;
  for (size_t g = 0; g < options.groups; ++g) {
    const std::string group_name =
        options.group.name + "-g" + std::to_string(g);
    const std::vector<std::string> owners =
        ring.OwnersFor(group_name, options.replication_factor);
    std::vector<ReplicatedStore::Backend> backends;
    for (const auto& node : owners) {
      auto store = options.backend_factory(node, group_name);
      if (store == nullptr) {
        return Status::InvalidArgument("backend factory returned null for " +
                                       node + "/" + group_name);
      }
      backends.push_back({node, std::move(store)});
    }
    ReplicaGroup::Options group_options = options.group;
    group_options.name = group_name;
    DSTORE_ASSIGN_OR_RETURN(
        auto group_store,
        ReplicatedStore::Create(std::move(backends), std::move(group_options)));
    shards.emplace_back(group_name, std::move(group_store));
  }
  return std::make_shared<ShardedStore>(std::move(shards), options.shard);
}

}  // namespace replica
}  // namespace dstore
