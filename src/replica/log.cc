#include "replica/log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "compress/crc32.h"
#include "fault/fault.h"
#include "store/fs_util.h"

namespace dstore {
namespace replica {

namespace {

// File layout: a header record followed by one record per entry, each
// framed [fixed32 length][fixed32 crc32][payload]. The header payload is
// the magic "RL01" plus a varint base_seq, rewritten whenever trim or
// truncation rewrites the file.
constexpr char kMagic[] = "RL01";

void AppendFramedRecord(Bytes* dst, const Bytes& payload) {
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Crc32(payload));
  dst->insert(dst->end(), payload.begin(), payload.end());
}

StatusOr<Bytes> ReadFramedRecord(const Bytes& src, size_t* pos) {
  if (*pos + 8 > src.size()) return Status::Corruption("torn record frame");
  const uint32_t len = static_cast<uint32_t>(src[*pos]) |
                       static_cast<uint32_t>(src[*pos + 1]) << 8 |
                       static_cast<uint32_t>(src[*pos + 2]) << 16 |
                       static_cast<uint32_t>(src[*pos + 3]) << 24;
  const uint32_t crc = static_cast<uint32_t>(src[*pos + 4]) |
                       static_cast<uint32_t>(src[*pos + 5]) << 8 |
                       static_cast<uint32_t>(src[*pos + 6]) << 16 |
                       static_cast<uint32_t>(src[*pos + 7]) << 24;
  if (*pos + 8 + len > src.size()) return Status::Corruption("torn record");
  Bytes payload(src.begin() + *pos + 8, src.begin() + *pos + 8 + len);
  if (Crc32(payload) != crc) return Status::Corruption("record crc mismatch");
  *pos += 8 + len;
  return payload;
}

Bytes EncodeHeader(uint64_t base_seq) {
  Bytes payload;
  payload.insert(payload.end(), kMagic, kMagic + 4);
  PutVarint64(&payload, base_seq);
  return payload;
}

StatusOr<uint64_t> DecodeHeader(const Bytes& payload) {
  if (payload.size() < 4 || !std::equal(kMagic, kMagic + 4, payload.begin())) {
    return Status::Corruption("bad replication log magic");
  }
  size_t pos = 4;
  return GetVarint64(payload, &pos);
}

Status WriteAll(int fd, const uint8_t* data, size_t len,
                const std::string& what) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("append to " + what);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::string_view OpName(OpType op) {
  switch (op) {
    case OpType::kPut:
      return "put";
    case OpType::kDelete:
      return "delete";
    case OpType::kClear:
      return "clear";
  }
  return "unknown";
}

Bytes EncodeLogEntry(const LogEntry& entry) {
  Bytes out;
  PutVarint64(&out, entry.seq);
  PutVarint64(&out, entry.epoch);
  out.push_back(static_cast<uint8_t>(entry.op));
  out.push_back(entry.value != nullptr ? 1 : 0);
  PutLengthPrefixed(&out, entry.key);
  if (entry.value != nullptr) PutLengthPrefixed(&out, *entry.value);
  return out;
}

StatusOr<LogEntry> DecodeLogEntry(const Bytes& payload) {
  LogEntry entry;
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(entry.seq, GetVarint64(payload, &pos));
  DSTORE_ASSIGN_OR_RETURN(entry.epoch, GetVarint64(payload, &pos));
  if (pos + 2 > payload.size()) {
    return Status::Corruption("log entry truncated");
  }
  const uint8_t op = payload[pos++];
  if (op < static_cast<uint8_t>(OpType::kPut) ||
      op > static_cast<uint8_t>(OpType::kClear)) {
    return Status::Corruption("log entry: bad op");
  }
  entry.op = static_cast<OpType>(op);
  const bool has_value = payload[pos++] != 0;
  DSTORE_ASSIGN_OR_RETURN(Bytes key, GetLengthPrefixed(payload, &pos));
  entry.key.assign(key.begin(), key.end());
  if (has_value) {
    DSTORE_ASSIGN_OR_RETURN(Bytes value, GetLengthPrefixed(payload, &pos));
    entry.value = MakeValue(std::move(value));
  }
  return entry;
}

GroupLog::GroupLog(std::string name) : name_(std::move(name)) {}

StatusOr<std::unique_ptr<GroupLog>> GroupLog::Open(
    std::string name, const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("create log dir " + dir.string());
  std::filesystem::path path = dir / (name + ".rlog");
  auto log = std::unique_ptr<GroupLog>(new GroupLog(std::move(name), path));
  MutexLock lock(log->mu_);

  if (std::filesystem::exists(path, ec)) {
    // Recover: replay intact records; a torn or corrupt tail — the residue
    // of a crash mid-append — is cut off so later appends cannot land
    // behind garbage.
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError("open replication log " + path.string());
    Bytes contents;
    uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::IOError("read replication log " + path.string());
      }
      if (n == 0) break;
      contents.insert(contents.end(), buf, buf + n);
    }
    ::close(fd);

    size_t pos = 0;
    bool saw_header = false;
    while (pos < contents.size()) {
      const size_t record_start = pos;
      StatusOr<Bytes> payload = ReadFramedRecord(contents, &pos);
      if (!payload.ok()) {
        pos = record_start;
        break;
      }
      if (!saw_header) {
        DSTORE_ASSIGN_OR_RETURN(log->base_seq_, DecodeHeader(*payload));
        saw_header = true;
        continue;
      }
      StatusOr<LogEntry> entry = DecodeLogEntry(*payload);
      if (!entry.ok()) {
        pos = record_start;
        break;
      }
      log->entries_.push_back(std::move(entry).value());
    }
    if (pos < contents.size()) {
      if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
        return Status::IOError("truncate torn log tail " + path.string());
      }
    }
    if (!saw_header) {
      // Empty or header-torn file: start fresh below.
      log->entries_.clear();
      log->base_seq_ = 0;
      return log->RewriteLocked().ok()
                 ? StatusOr<std::unique_ptr<GroupLog>>(std::move(log))
                 : Status::IOError("reinitialize log " + path.string());
    }
    log->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (log->fd_ < 0) {
      return Status::IOError("reopen replication log " + path.string());
    }
    log->synced_bytes_ = pos;
    return log;
  }

  DSTORE_RETURN_IF_ERROR(log->RewriteLocked());
  return log;
}

GroupLog::~GroupLog() {
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Status GroupLog::Append(const LogEntry& entry) {
  MutexLock lock(mu_);
  const uint64_t expect =
      entries_.empty() ? base_seq_ + 1 : entries_.back().seq + 1;
  if (entry.seq != expect) {
    return Status::Internal("log " + name_ + ": non-contiguous append");
  }
  if (durable_) DSTORE_RETURN_IF_ERROR(AppendDurableLocked(entry));
  entries_.push_back(entry);
  return Status::OK();
}

Status GroupLog::AppendDurableLocked(const LogEntry& entry) {
  if (fd_ < 0) {
    return Status::IOError("replication log " + path_.string() +
                           " lost its append descriptor");
  }
  Bytes record;
  AppendFramedRecord(&record, EncodeLogEntry(entry));
  // A failed append must leave the file exactly at the durable watermark:
  // torn or duplicate bytes past it would make a retried append land behind
  // garbage, and recovery would then truncate away later fully-synced
  // records. (Crash points are exempt: they model process death, and the
  // torn artifact is what reopen-recovery is supposed to find.)
  auto restore = [this]() REQUIRES(mu_) {
    if (::ftruncate(fd_, static_cast<off_t>(synced_bytes_)) == 0 &&
        ::lseek(fd_, static_cast<off_t>(synced_bytes_), SEEK_SET) >= 0) {
      return;
    }
    // Unrestorable: drop the descriptor so later appends fail loudly
    // instead of corrupting the record stream.
    ::close(fd_);
    fd_ = -1;
  };
  const bool torn = fault::CrashPointFires("replica.log.torn_append");
  const size_t to_write = torn ? record.size() / 2 : record.size();
  const Status written = WriteAll(fd_, record.data(), to_write, path_.string());
  if (!written.ok()) {
    restore();
    return written;
  }
  if (torn) return fault::CrashedStatus("replica.log.torn_append");
  if (fault::CrashPointFires("replica.log.before_sync")) {
    // A crash before fsync loses whatever only the page cache held; model
    // it by cutting the file back to the durable watermark.
    (void)::ftruncate(fd_, static_cast<off_t>(synced_bytes_));
    (void)::lseek(fd_, static_cast<off_t>(synced_bytes_), SEEK_SET);
    return fault::CrashedStatus("replica.log.before_sync");
  }
  if (::fsync(fd_) != 0) {
    restore();
    return Status::IOError("fsync replication log " + path_.string());
  }
  synced_bytes_ += record.size();
  if (fault::CrashPointFires("replica.log.after_sync")) {
    // Durable, but the caller sees an error — the acked-or-not ambiguity
    // recovery has to tolerate.
    entries_.push_back(entry);
    return fault::CrashedStatus("replica.log.after_sync");
  }
  return Status::OK();
}

Status GroupLog::RewriteLocked() {
  if (!durable_) return Status::OK();
  Bytes contents;
  AppendFramedRecord(&contents, EncodeHeader(base_seq_));
  for (const auto& entry : entries_) {
    AppendFramedRecord(&contents, EncodeLogEntry(entry));
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::filesystem::path tmp = path_.string() + ".tmp";
  DSTORE_RETURN_IF_ERROR(WriteFileDurably(tmp, contents, contents.size()));
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) return Status::IOError("publish replication log " + path_.string());
  DSTORE_RETURN_IF_ERROR(SyncDir(path_.parent_path()));
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    return Status::IOError("reopen replication log " + path_.string());
  }
  synced_bytes_ = contents.size();
  return Status::OK();
}

uint64_t GroupLog::last_seq() const {
  MutexLock lock(mu_);
  return entries_.empty() ? base_seq_ : entries_.back().seq;
}

uint64_t GroupLog::base_seq() const {
  MutexLock lock(mu_);
  return base_seq_;
}

size_t GroupLog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

std::optional<LogEntry> GroupLog::EntryAt(uint64_t seq) const {
  MutexLock lock(mu_);
  if (seq <= base_seq_ || entries_.empty()) return std::nullopt;
  const uint64_t first = entries_.front().seq;
  if (seq < first || seq > entries_.back().seq) return std::nullopt;
  return entries_[seq - first];
}

std::vector<LogEntry> GroupLog::EntriesAfter(uint64_t seq,
                                             size_t limit) const {
  MutexLock lock(mu_);
  std::vector<LogEntry> out;
  for (const auto& entry : entries_) {
    if (out.size() >= limit) break;
    if (entry.seq > seq) out.push_back(entry);
  }
  return out;
}

Status GroupLog::TruncateTo(uint64_t seq) {
  MutexLock lock(mu_);
  while (!entries_.empty() && entries_.back().seq > seq) entries_.pop_back();
  if (base_seq_ > seq) base_seq_ = seq;
  return RewriteLocked();
}

Status GroupLog::TrimThrough(uint64_t seq) {
  MutexLock lock(mu_);
  bool changed = false;
  while (!entries_.empty() && entries_.front().seq <= seq) {
    entries_.pop_front();
    changed = true;
  }
  if (seq > base_seq_) {
    base_seq_ = seq;
    changed = true;
  }
  return changed ? RewriteLocked() : Status::OK();
}

}  // namespace replica
}  // namespace dstore
