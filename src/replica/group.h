#ifndef DSTORE_REPLICA_GROUP_H_
#define DSTORE_REPLICA_GROUP_H_

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "admit/breaker.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "replica/log.h"
#include "replica/transport.h"

namespace dstore {
namespace replica {

// One primary-backup replica group: the unit a ring slot maps to. Writes
// serialize into a GroupLog (the authoritative history) and apply to the
// primary inline; a background replicator streams the log in order to every
// replica that is behind — backups always, and the primary itself when a
// failed inline apply left a hole — so each replica always holds a *prefix*
// of the log. A write is acked once `write_quorum` replicas (primary
// included) have applied it — which is what makes failover lossless: with
// W >= 2 every acked entry is on at least one backup, and promotion picks
// the backup with the longest prefix.
//
//  * Hinted handoff: a down replica pins its unapplied log suffix (the
//    "hints"); on rejoin the replicator replays it in order. A rejoiner's
//    self-reported watermark is only trusted at the current epoch; a
//    stale-epoch rejoiner (a deposed primary that was down during the
//    promotion) is clamped to the group's own last-known watermark and
//    fenced before it serves again.
//  * Failover: manual (Promote) or automatic after `failover_after`
//    consecutive transient primary failures. Promotion bumps the group
//    epoch, truncates the log to the new primary's applied watermark, and
//    fences every reachable replica so the deposed primary's late writes
//    are rejected (replicas remember the highest accepted epoch — stale
//    epochs answer FencedStatus even from a different group handle).
//  * Reads: served by the most-caught-up live replica that passes its
//    circuit breaker, falling over on transient errors; `read_quorum`
//    replicas are compared and divergence is read-repaired when enabled.
//    A session min-seq gate (see session.h) keeps read-your-writes across
//    failover: only replicas at or past the caller's high-water mark answer.
//  * Anti-entropy: RepairPass compares Merkle-style bucketed digests of the
//    primary's backend against each live backup and copies/deletes the
//    differing keys (silent divergence — e.g. a deposed primary's fenced
//    surplus — converges back).
//
// Fault sites: "replica.handoff" (op replay) gates each handoff replay
// apply; "replica.promote" (op promote) can abort or delay a promotion;
// the GroupLog adds the replica.log.* crash points. Metrics are published
// as dstore_replica_* and the hot paths open replica.* spans.
//
// Thread-safe.
class ReplicaGroup {
 public:
  struct Options {
    std::string name = "group";  // metrics label, Name() component
    // Replicas that must have applied a write before it is acked (the
    // primary counts as one). 1 = ack on primary apply, replicate async.
    int write_quorum = 2;
    // Replicas consulted (and compared) per read.
    int read_quorum = 2;
    bool read_repair = true;
    // Promote automatically after this many consecutive transient primary
    // failures (0 disables auto-failover; Promote() still works).
    int failover_after = 3;
    // Consecutive replicator failures before a backup is marked down.
    int down_after = 2;
    // Bound on the quorum wait inside Write (TimedOut past it — the write
    // is then in the "uncertain" class retries may land twice, which
    // replicated puts/deletes absorb idempotently).
    int64_t write_wait_nanos = 10'000'000'000;
    // How often the replicator re-probes a down replica.
    int64_t rejoin_probe_nanos = 50'000'000;
    // Replicator idle poll (also woken by appends).
    int64_t replicator_idle_nanos = 2'000'000;
    // Buckets in the anti-entropy digest tree.
    size_t digest_buckets = 16;
    // Retained log entries tolerated before trimming fully-applied prefix.
    size_t trim_batch = 64;
    // Per-replica circuit breaker template (name/clock are filled in).
    admit::CircuitBreaker::Options breaker;
    // Sites "replica.handoff" and "replica.promote".
    std::shared_ptr<fault::FaultPlan> fault_plan;
    Clock* clock = nullptr;  // null = RealClock
    // Non-empty: the group log is made durable under this directory via
    // the fs_util helpers (one <name>.rlog file).
    std::filesystem::path log_dir;
  };

  struct ReplicaSpec {
    std::string name;
    std::shared_ptr<ReplicaTransport> transport;
  };

  // At least one replica; the first spec starts as primary. write_quorum
  // and read_quorum must be in [1, replicas].
  static StatusOr<std::unique_ptr<ReplicaGroup>> Create(
      std::vector<ReplicaSpec> replicas, Options options);

  ~ReplicaGroup();
  ReplicaGroup(const ReplicaGroup&) = delete;
  ReplicaGroup& operator=(const ReplicaGroup&) = delete;

  // --- Client surface (used by ReplicatedStore) ---

  // Replicates one mutation; returns its log sequence once `write_quorum`
  // replicas applied it. `value` must be non-null for kPut.
  StatusOr<uint64_t> Write(OpType op, const std::string& key, ValuePtr value);

  // Reads from the most-caught-up admissible replica whose applied
  // watermark is at least `min_seq` (0 = no session constraint).
  StatusOr<ValuePtr> Read(const std::string& key, uint64_t min_seq);
  StatusOr<bool> ContainsRead(const std::string& key, uint64_t min_seq);
  StatusOr<std::vector<std::string>> ListKeysRead(uint64_t min_seq);
  StatusOr<size_t> CountRead(uint64_t min_seq);

  // --- Membership / failover ---

  // Promotes `target` (or, when empty, the most-caught-up live backup).
  Status Promote(const std::string& target = std::string());

  // Marks a replica down (as the replicator would after repeated failures):
  // it stops serving reads and starts accumulating hints.
  Status MarkDown(const std::string& name);
  // Asks the replicator to re-probe a down replica now.
  Status Rejoin(const std::string& name);

  // Swaps in a fresh transport for a (non-primary) replica — the "node
  // restarted empty / was replaced" path. The replica is fenced to the
  // current epoch, bootstrapped from the primary's backend when the log no
  // longer holds its full replay suffix, and then caught up by replay.
  Status ReplaceReplica(const std::string& name,
                        std::shared_ptr<ReplicaTransport> transport);

  // --- Anti-entropy ---

  struct RepairStats {
    uint64_t replicas_checked = 0;
    uint64_t buckets_diverged = 0;
    uint64_t keys_repaired = 0;
  };
  // Compares bucketed digests of the primary's backend against every live
  // backup and repairs differing keys. Quiesces writes for its duration.
  StatusOr<RepairStats> RepairPass();

  // --- Introspection ---

  struct ReplicaInfo {
    std::string name;
    bool primary = false;
    bool up = true;
    uint64_t applied = 0;
    uint64_t lag = 0;    // last_seq - applied
    uint64_t hints = 0;  // pending replay entries while down
    std::string breaker;
  };
  struct GroupStatus {
    std::string name;
    uint64_t epoch = 0;
    uint64_t last_seq = 0;
    std::string primary;
    std::vector<ReplicaInfo> replicas;
  };
  GroupStatus GetStatus();

  // Blocks until every live replica has applied the whole log (test +
  // drain hook).
  Status WaitForReplication(int64_t timeout_nanos = 10'000'000'000);

  // One "promote to=<name> epoch=<e> applied=<seq> reason=<r>" line per
  // promotion — byte-stable across same-seed runs (the determinism test).
  std::string PromotionTrace();

  const std::string& name() const { return options_.name; }
  uint64_t epoch();
  std::string primary_name();
  GroupLog* log() { return log_.get(); }

 private:
  struct Member {
    std::string name;
    std::shared_ptr<ReplicaTransport> transport;
    std::unique_ptr<admit::CircuitBreaker> breaker;
    uint64_t applied = 0;
    bool up = true;
    int fail_streak = 0;
    int64_t next_probe_nanos = 0;
  };

  explicit ReplicaGroup(Options options);

  void ReplicatorLoop();
  // One replicator round: probe down replicas, stream one entry to the
  // most-behind live backup. Returns true when it did work.
  bool ReplicateOnceLocked() REQUIRES(mu_);
  Status PromoteLocked(const std::string& target, const std::string& reason)
      REQUIRES(mu_);
  void OnPrimaryFailureLocked(const Status& status) REQUIRES(mu_);
  void MaybeTrimLocked() REQUIRES(mu_);
  int AckCountLocked(uint64_t seq) const REQUIRES(mu_);
  int PotentialAcksLocked(uint64_t seq) const REQUIRES(mu_);
  uint64_t HintsPendingLocked() const REQUIRES(mu_);
  void RefreshGaugesLocked() REQUIRES(mu_);

  const Options options_;
  Clock* const clock_;
  std::unique_ptr<GroupLog> log_;

  // Writers (and RepairPass, which quiesces them) serialize here: log
  // appends must be seq-contiguous and primary applies seq-ordered. mu_ is
  // only ever held for bookkeeping — never across the log fsync or a
  // replica RPC — so reads, status, promotion, and the replicator do not
  // wait behind a write's network or disk latency.
  Mutex write_mu_ ACQUIRED_BEFORE(mu_);
  mutable Mutex mu_;
  CondVar work_cv_;  // replicator wakeups (appends, rejoin requests, stop)
  CondVar ack_cv_;   // quorum waiters (applied advances, down transitions)
  std::vector<Member> members_ GUARDED_BY(mu_);
  size_t primary_ GUARDED_BY(mu_) = 0;
  uint64_t epoch_ GUARDED_BY(mu_) = 1;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  // Highest sequence ever acknowledged to a client. Promotion refuses any
  // candidate whose applied watermark is below this: the only backup
  // holding an acked write may be transiently down, and promoting past it
  // would turn a blip into acknowledged-write loss.
  uint64_t acked_seq_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  // Transport currently receiving a Write()'s inline primary apply. The
  // replicator must not stream to it meanwhile: a concurrent backfill of an
  // earlier entry could land after the inline apply of a later one and
  // leave the older value on a shared key.
  std::shared_ptr<ReplicaTransport> inline_primary_ GUARDED_BY(mu_);
  std::string promotion_trace_ GUARDED_BY(mu_);
  std::thread replicator_;

  obs::Counter* writes_total_ = nullptr;
  obs::Counter* write_errors_total_ = nullptr;
  obs::Counter* reads_total_ = nullptr;
  obs::Counter* read_repair_total_ = nullptr;
  obs::Counter* repair_total_ = nullptr;
  obs::Counter* promotions_total_ = nullptr;
  obs::Counter* fenced_total_ = nullptr;
  obs::Counter* handoff_replayed_total_ = nullptr;
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Gauge* log_entries_gauge_ = nullptr;
  obs::Gauge* hints_pending_gauge_ = nullptr;
};

}  // namespace replica
}  // namespace dstore

#endif  // DSTORE_REPLICA_GROUP_H_
