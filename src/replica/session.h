#ifndef DSTORE_REPLICA_SESSION_H_
#define DSTORE_REPLICA_SESSION_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/sync.h"

namespace dstore {
namespace replica {

// A client session's read-your-writes state: one high-water mark per replica
// group, advanced to the log sequence of every write the session had
// acknowledged. Reads made under the session only accept replicas whose
// applied watermark has reached the mark — so a session never observes a
// store that is missing its own writes, even right after a failover (the
// promoted primary's prefix contains every acked sequence when W >= 2, so
// the mark stays satisfiable).
//
// Sessions are ambient, like admit::Deadline: install one with
// ScopedSession and every ReplicatedStore operation on the thread — however
// many decorator layers sit in between — picks it up without any API
// change. Thread-safe (one session may serve several threads).
class Session {
 public:
  uint64_t HighWaterFor(const std::string& group) const;
  void NoteWrite(const std::string& group, uint64_t seq);

  // "group=seq group=seq ..." in group order (status surfaces, tests).
  std::string Describe() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, uint64_t> marks_ GUARDED_BY(mu_);
};

// The session active on this thread, or null.
Session* CurrentSession();

// Installs `session` as this thread's ambient session for the scope.
// Nesting restores the previous session on destruction.
class ScopedSession {
 public:
  explicit ScopedSession(Session* session);
  ~ScopedSession();
  ScopedSession(const ScopedSession&) = delete;
  ScopedSession& operator=(const ScopedSession&) = delete;

 private:
  Session* previous_;
};

}  // namespace replica
}  // namespace dstore

#endif  // DSTORE_REPLICA_SESSION_H_
