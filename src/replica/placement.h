#ifndef DSTORE_REPLICA_PLACEMENT_H_
#define DSTORE_REPLICA_PLACEMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "replica/replicated_store.h"
#include "shard/ring.h"
#include "shard/sharded_store.h"

namespace dstore {
namespace replica {

// Builds the paper-shaped topology: a ShardedStore whose shards are replica
// groups, each group's members placed on distinct nodes by the consistent
// ring's successor lists (HashRing::OwnersFor). Group g's replica set is
// the first `replication_factor` distinct nodes clockwise of g's point, so
// adding or removing one node reshuffles only the groups whose owner lists
// changed.
struct ReplicatedRingOptions {
  // Node names; must have at least `replication_factor` entries.
  std::vector<std::string> nodes;
  // Number of replica groups (ring slots the outer store shards over).
  size_t groups = 8;
  size_t replication_factor = 3;
  // Builds the backend holding node `node`'s copy of group `group`. Each
  // (node, group) pair must get its own store — groups do not share key
  // namespaces.
  std::function<std::shared_ptr<KeyValueStore>(const std::string& node,
                                               const std::string& group)>
      backend_factory;
  // Template for every group (name is overridden per group).
  ReplicaGroup::Options group;
  // The outer sharded store and the placement ring over node names.
  ShardedStore::Options shard;
  shard::HashRing::Options ring;
};

StatusOr<std::shared_ptr<ShardedStore>> BuildReplicatedRing(
    const ReplicatedRingOptions& options);

}  // namespace replica
}  // namespace dstore

#endif  // DSTORE_REPLICA_PLACEMENT_H_
