#include "replica/transport.h"

namespace dstore {
namespace replica {

namespace {
constexpr char kFencedPrefix[] = "fenced:";
}  // namespace

Status FencedStatus(uint64_t entry_epoch, uint64_t accepted_epoch) {
  return Status::Unavailable(std::string(kFencedPrefix) + " write epoch " +
                             std::to_string(entry_epoch) +
                             " superseded by epoch " +
                             std::to_string(accepted_epoch));
}

bool IsFenced(const Status& status) {
  return status.IsUnavailable() &&
         status.message().rfind(kFencedPrefix, 0) == 0;
}

Status LocalReplica::Apply(const LogEntry& entry, uint64_t epoch) {
  {
    MutexLock lock(mu_);
    if (epoch < state_.epoch) return FencedStatus(epoch, state_.epoch);
    state_.epoch = epoch;
    if (entry.seq <= state_.applied) return Status::OK();  // replay
  }
  // The store call runs outside the metadata lock (it may be slow or
  // fault-injected); the group applies to any one replica from a single
  // thread at a time and in seq order (writers serialize on the group's
  // write mutex, and the replicator never streams to a transport with an
  // inline apply in flight), so there is no concurrent-apply race to guard.
  Status status;
  switch (entry.op) {
    case OpType::kPut:
      status = store_->Put(entry.key, entry.value);
      break;
    case OpType::kDelete:
      status = store_->Delete(entry.key);
      break;
    case OpType::kClear:
      status = store_->Clear();
      break;
  }
  if (!status.ok()) return status;
  MutexLock lock(mu_);
  if (entry.seq > state_.applied) state_.applied = entry.seq;
  return Status::OK();
}

Status LocalReplica::Fence(uint64_t epoch, uint64_t max_applied) {
  MutexLock lock(mu_);
  // A stale-epoch fence is a deposed handle trying to cap a more current
  // replica's watermark — refuse it the way Apply refuses stale writes.
  if (epoch < state_.epoch) return FencedStatus(epoch, state_.epoch);
  state_.epoch = epoch;
  if (state_.applied > max_applied) state_.applied = max_applied;
  return Status::OK();
}

StatusOr<ReplicaState> LocalReplica::Probe() {
  MutexLock lock(mu_);
  return state_;
}

Status CloudReplica::Apply(const LogEntry& entry, uint64_t epoch) {
  // The client maps the server's 412 fencing answer to an Unavailable
  // status whose message carries the same "fenced:" prefix IsFenced keys
  // on, so local and remote replicas reject stale epochs identically.
  return client_->ReplicaApply(std::string(OpName(entry.op)), entry.key,
                               entry.value.get(), entry.seq, epoch);
}

Status CloudReplica::Fence(uint64_t epoch, uint64_t max_applied) {
  return client_->ReplicaFence(epoch, max_applied);
}

StatusOr<ReplicaState> CloudReplica::Probe() {
  DSTORE_ASSIGN_OR_RETURN(auto state, client_->ReplicaStatus());
  ReplicaState out;
  out.epoch = state.first;
  out.applied = state.second;
  return out;
}

}  // namespace replica
}  // namespace dstore
