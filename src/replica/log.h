#ifndef DSTORE_REPLICA_LOG_H_
#define DSTORE_REPLICA_LOG_H_

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"

namespace dstore {
namespace replica {

// One replicated mutation. Sequence numbers are dense per group and assigned
// by the primary; `epoch` stamps which leadership term produced the entry so
// a deposed primary's tail can be fenced after failover.
enum class OpType : uint8_t {
  kPut = 1,
  kDelete = 2,
  kClear = 3,
};

std::string_view OpName(OpType op);

struct LogEntry {
  uint64_t seq = 0;
  uint64_t epoch = 0;
  OpType op = OpType::kPut;
  std::string key;
  ValuePtr value;  // null for kDelete / kClear
};

Bytes EncodeLogEntry(const LogEntry& entry);
StatusOr<LogEntry> DecodeLogEntry(const Bytes& payload);

// The per-group replication log: the ordered record of mutations the primary
// streams to backups. Retains the suffix of entries not yet applied by every
// replica (a down replica therefore pins its hinted-handoff suffix in the
// log until it rejoins and replays it).
//
// Two modes: in-memory (default — replication state only has to outlive the
// process for crash tests, not for correctness, since backends hold the
// data), or durable, where every append is CRC-framed into <dir>/<name>.rlog
// and fsynced before it is acknowledged, and truncation/trim rewrite the
// file through the fs_util temp-write -> rename -> SyncDir publish path.
// Recovery truncates a torn tail, CrashMonkey-style.
//
// Crash points (see fault.h): replica.log.torn_append (half the record's
// bytes reach the file), replica.log.before_sync (appended but unsynced
// bytes are discarded), replica.log.after_sync (durable, but the caller
// sees an error).
//
// Thread-safe.
class GroupLog {
 public:
  // In-memory log.
  explicit GroupLog(std::string name);

  // Durable log backed by <dir>/<name>.rlog; recovers any existing entries,
  // truncating a torn or corrupt tail.
  static StatusOr<std::unique_ptr<GroupLog>> Open(
      std::string name, const std::filesystem::path& dir);

  ~GroupLog();
  GroupLog(const GroupLog&) = delete;
  GroupLog& operator=(const GroupLog&) = delete;

  // Appends one entry; `entry.seq` must be last_seq() + 1. Durable mode
  // fsyncs before returning OK.
  Status Append(const LogEntry& entry) EXCLUDES(mu_) DSTORE_BLOCKING;

  // Highest appended sequence (0 when nothing was ever appended).
  uint64_t last_seq() const EXCLUDES(mu_);
  // Highest trimmed-away sequence; retained entries are (base_seq, last_seq].
  uint64_t base_seq() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);

  // The entry with exactly `seq`, or nullopt when trimmed or not appended.
  std::optional<LogEntry> EntryAt(uint64_t seq) const EXCLUDES(mu_);
  std::vector<LogEntry> EntriesAfter(uint64_t seq, size_t limit) const
      EXCLUDES(mu_);

  // Failover: drops every entry with seq > `seq` — the unacked tail of a
  // deposed primary that the new primary's history does not contain.
  Status TruncateTo(uint64_t seq) EXCLUDES(mu_) DSTORE_BLOCKING;

  // Retention: drops every entry with seq <= `seq`. Callers only trim
  // through the minimum applied sequence across all replicas (down ones
  // included), so a rejoining replica always finds its replay suffix.
  Status TrimThrough(uint64_t seq) EXCLUDES(mu_) DSTORE_BLOCKING;

  const std::string& name() const { return name_; }
  bool durable() const { return durable_; }

 private:
  GroupLog(std::string name, std::filesystem::path path)
      : name_(std::move(name)), path_(std::move(path)), durable_(true) {}

  Status AppendDurableLocked(const LogEntry& entry) REQUIRES(mu_)
      DSTORE_BLOCKING;
  // Rewrites the whole retained log through temp-write -> rename -> SyncDir
  // (truncate/trim paths), then reopens the append descriptor.
  Status RewriteLocked() REQUIRES(mu_) DSTORE_BLOCKING;

  const std::string name_;
  const std::filesystem::path path_;  // empty in memory mode
  const bool durable_ = false;

  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;  // append descriptor; -1 in memory mode
  std::deque<LogEntry> entries_ GUARDED_BY(mu_);
  uint64_t base_seq_ GUARDED_BY(mu_) = 0;
  uint64_t synced_bytes_ GUARDED_BY(mu_) = 0;  // durable watermark
};

}  // namespace replica
}  // namespace dstore

#endif  // DSTORE_REPLICA_LOG_H_
