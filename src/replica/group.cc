#include "replica/group.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/hash.h"
#include "obs/trace.h"

namespace dstore {
namespace replica {

namespace {

// The transient-error class: worth retrying, failing over, or marking a
// replica down for. Fenced rejections are deliberately excluded — they mean
// this handle's leadership is stale, not that the replica is sick.
bool IsTransient(const Status& status) {
  if (IsFenced(status)) return false;
  return status.IsUnavailable() || status.IsIOError() || status.IsTimedOut() ||
         status.IsOverloaded();
}

uint64_t ValueDigest(const std::string& key, const Bytes& value) {
  return Mix64(Fnv1a64(key) ^ Mix64(Fnv1a64(value.data(), value.size())));
}

}  // namespace

ReplicaGroup::ReplicaGroup(Options options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : RealClock::Default()) {}

StatusOr<std::unique_ptr<ReplicaGroup>> ReplicaGroup::Create(
    std::vector<ReplicaSpec> replicas, Options options) {
  if (replicas.empty()) {
    return Status::InvalidArgument("replica group needs at least one replica");
  }
  const int n = static_cast<int>(replicas.size());
  if (options.write_quorum < 1 || options.write_quorum > n ||
      options.read_quorum < 1 || options.read_quorum > n) {
    return Status::InvalidArgument("replica quorums must be in [1, replicas]");
  }
  auto group = std::unique_ptr<ReplicaGroup>(new ReplicaGroup(options));
  if (!group->options_.log_dir.empty()) {
    DSTORE_ASSIGN_OR_RETURN(
        group->log_,
        GroupLog::Open(group->options_.name, group->options_.log_dir));
  } else {
    group->log_ = std::make_unique<GroupLog>(group->options_.name);
  }

  obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
  const obs::Labels labels = {{"group", group->options_.name}};
  group->writes_total_ = registry->GetCounter(
      "dstore_replica_writes_total", labels, "Acknowledged replicated writes.");
  group->write_errors_total_ =
      registry->GetCounter("dstore_replica_write_errors_total", labels,
                           "Replicated writes that surfaced an error.");
  group->reads_total_ = registry->GetCounter(
      "dstore_replica_reads_total", labels, "Replicated reads served.");
  group->read_repair_total_ = registry->GetCounter(
      "dstore_replica_read_repair_total", labels,
      "Divergent replica values rewritten by read repair.");
  group->repair_total_ = registry->GetCounter(
      "dstore_replica_repair_total", labels,
      "Keys repaired by anti-entropy passes.");
  group->promotions_total_ = registry->GetCounter(
      "dstore_replica_promotions_total", labels, "Primary promotions.");
  group->fenced_total_ = registry->GetCounter(
      "dstore_replica_fenced_total", labels,
      "Replicas fenced to a new epoch during promotion.");
  group->handoff_replayed_total_ = registry->GetCounter(
      "dstore_replica_handoff_replayed_total", labels,
      "Hinted-handoff log entries replayed to rejoining replicas.");
  group->epoch_gauge_ = registry->GetGauge(
      "dstore_replica_epoch", labels, "Current group leadership epoch.");
  group->log_entries_gauge_ =
      registry->GetGauge("dstore_replica_log_entries", labels,
                         "Replication log entries currently retained.");
  group->hints_pending_gauge_ =
      registry->GetGauge("dstore_replica_hints_pending", labels,
                         "Log entries pending replay to down replicas.");

  {
    MutexLock lock(group->mu_);
    group->next_seq_ = group->log_->last_seq();
    std::vector<StatusOr<ReplicaState>> probes;
    for (auto& spec : replicas) {
      Member member;
      member.name = std::move(spec.name);
      member.transport = std::move(spec.transport);
      admit::CircuitBreaker::Options breaker = group->options_.breaker;
      breaker.name = group->options_.name + "/" + member.name;
      if (breaker.clock == nullptr) breaker.clock = group->clock_;
      member.breaker = std::make_unique<admit::CircuitBreaker>(breaker);
      probes.push_back(member.transport->Probe());
      group->members_.push_back(std::move(member));
    }
    // The group's epoch is the highest any reachable replica has accepted;
    // only members at that epoch may vouch for their own watermark.
    for (const auto& probe : probes) {
      if (probe.ok()) group->epoch_ = std::max(group->epoch_, probe->epoch);
    }
    for (size_t i = 0; i < group->members_.size(); ++i) {
      Member& member = group->members_[i];
      const StatusOr<ReplicaState>& probe = probes[i];
      if (!probe.ok()) {
        member.up = false;
        member.next_probe_nanos =
            group->clock_->NowNanos() + group->options_.rejoin_probe_nanos;
        continue;
      }
      if (probe->epoch == group->epoch_ || probe->applied == 0) {
        member.applied = std::min(probe->applied, group->next_seq_);
        // Cold-start ack estimate: every acked entry is on some replica, so
        // the highest current-epoch watermark bounds what promotion must
        // keep.
        group->acked_seq_ = std::max(group->acked_seq_, member.applied);
        continue;
      }
      // Stale-epoch replica at cold start — e.g. a primary deposed by a
      // promotion this handle never saw. Its self-reported applied still
      // counts a truncated old-epoch tail, and with no prior clamp of our
      // own the divergence point is unknown: trust nothing. Fence it to
      // zero and rebuild it by full replay — or, when the log's prefix is
      // already trimmed, leave it down for the ReplaceReplica bootstrap.
      member.applied = 0;
      if (member.transport->Fence(group->epoch_, 0).ok()) {
        group->fenced_total_->Increment();
        if (group->log_->base_seq() == 0) continue;
      }
      member.up = false;
      member.next_probe_nanos =
          group->clock_->NowNanos() + group->options_.rejoin_probe_nanos;
    }
    group->epoch_gauge_->Set(static_cast<double>(group->epoch_));
    group->RefreshGaugesLocked();
  }
  group->replicator_ = std::thread([raw = group.get()] {
    raw->ReplicatorLoop();
  });
  return group;
}

ReplicaGroup::~ReplicaGroup() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    work_cv_.NotifyAll();
    ack_cv_.NotifyAll();
  }
  if (replicator_.joinable()) replicator_.join();
}

StatusOr<uint64_t> ReplicaGroup::Write(OpType op, const std::string& key,
                                       ValuePtr value) {
  if (op == OpType::kPut && value == nullptr) {
    return Status::InvalidArgument("null value");
  }
  obs::Span span("replica." + std::string(OpName(op)));
  span.SetAttribute("group", options_.name);
  // Writers serialize on write_mu_; mu_ guards only the bookkeeping
  // segments, so the log fsync and the primary's apply RPC below never
  // block reads, status, promotion, or the replicator.
  MutexLock write_lock(write_mu_);
  LogEntry entry;
  entry.op = op;
  entry.key = key;
  entry.value = std::move(value);
  std::shared_ptr<ReplicaTransport> primary_transport;
  size_t primary_index = 0;
  uint64_t write_epoch = 0;
  bool apply_inline = false;
  {
    MutexLock lock(mu_);
    if (!members_[primary_].up && options_.failover_after > 0) {
      (void)PromoteLocked(std::string(), "primary down at write");
    }
    if (!members_[primary_].up) {
      write_errors_total_->Increment();
      return Status::Unavailable("group " + options_.name +
                                 ": no live primary");
    }
    if (PotentialAcksLocked(next_seq_ + 1) < options_.write_quorum) {
      write_errors_total_->Increment();
      return Status::Unavailable(
          "group " + options_.name + ": write quorum unavailable (need w=" +
          std::to_string(options_.write_quorum) + ")");
    }
    entry.seq = next_seq_ + 1;
    entry.epoch = epoch_;
    write_epoch = epoch_;
    primary_index = primary_;
    primary_transport = members_[primary_].transport;
    // Apply inline only when the primary holds the full prefix. A hole — a
    // previously failed inline apply — is instead backfilled in order by
    // the replicator, so the primary's watermark can never jump a gap and
    // later claim history its backend does not hold.
    apply_inline = members_[primary_].applied == next_seq_;
  }

  Status status = log_->Append(entry);  // durable-mode fsync, outside mu_
  if (!status.ok()) {
    MutexLock lock(mu_);
    write_errors_total_->Increment();
    if (epoch_ != write_epoch) {
      // A promotion truncated the log mid-append; the refusal is the
      // failover speaking, not an I/O fault.
      return Status::Unavailable("group " + options_.name +
                                 ": superseded by failover during write");
    }
    span.SetStatus(status);
    return status;
  }
  {
    MutexLock lock(mu_);
    if (epoch_ != write_epoch) {
      // A promotion raced the append. If the entry landed anyway (the new
      // history happened to end exactly at its predecessor), drop it: it
      // carries the deposed epoch and was never acked.
      (void)log_->TruncateTo(entry.seq - 1);
      write_errors_total_->Increment();
      return Status::Unavailable("group " + options_.name +
                                 ": superseded by failover during write");
    }
    next_seq_ = entry.seq;
    if (apply_inline) inline_primary_ = primary_transport;
    RefreshGaugesLocked();
    work_cv_.NotifyAll();  // backups may stream the new entry now
  }

  if (apply_inline) {
    status = primary_transport->Apply(entry, write_epoch);
    MutexLock lock(mu_);
    if (inline_primary_ == primary_transport) inline_primary_ = nullptr;
    Member& primary = members_[primary_index];
    const bool valid =
        primary.transport == primary_transport && epoch_ == write_epoch;
    if (!status.ok()) {
      write_errors_total_->Increment();
      span.SetStatus(status);
      if (valid && primary_index == primary_) OnPrimaryFailureLocked(status);
      // The entry stays logged with the watermark pinned below it; the
      // replicator now owns backfilling the primary's hole.
      work_cv_.NotifyAll();
      return status;
    }
    if (valid) {
      primary.fail_streak = 0;
      if (entry.seq == primary.applied + 1) primary.applied = entry.seq;
      ack_cv_.NotifyAll();
    }
  }

  {
    MutexLock lock(mu_);
    const uint64_t seq = entry.seq;
    const int64_t deadline = clock_->NowNanos() + options_.write_wait_nanos;
    while (AckCountLocked(seq) < options_.write_quorum) {
      if (stop_) {
        write_errors_total_->Increment();
        return Status::Unavailable("group " + options_.name +
                                   ": shutting down");
      }
      if (next_seq_ < seq) {
        // A promotion truncated the (unacked) entry out of the log.
        write_errors_total_->Increment();
        return Status::Unavailable("group " + options_.name +
                                   ": write truncated by failover");
      }
      if (PotentialAcksLocked(seq) < options_.write_quorum) {
        write_errors_total_->Increment();
        return Status::Unavailable(
            "group " + options_.name +
            ": write quorum lost while awaiting replication");
      }
      if (clock_->NowNanos() >= deadline) {
        write_errors_total_->Increment();
        return Status::TimedOut("group " + options_.name +
                                ": replication quorum wait timed out");
      }
      ack_cv_.WaitFor(mu_, std::chrono::milliseconds(20));
    }
    if (seq > acked_seq_) acked_seq_ = seq;
  }
  writes_total_->Increment();
  span.SetAttribute("seq", std::to_string(entry.seq));
  return entry.seq;
}

int ReplicaGroup::AckCountLocked(uint64_t seq) const {
  int acks = 0;
  for (const auto& m : members_) {
    if (m.applied >= seq) ++acks;
  }
  return acks;
}

int ReplicaGroup::PotentialAcksLocked(uint64_t seq) const {
  int potential = 0;
  for (const auto& m : members_) {
    if (m.applied >= seq || m.up) ++potential;
  }
  return potential;
}

uint64_t ReplicaGroup::HintsPendingLocked() const {
  uint64_t hints = 0;
  for (const auto& m : members_) {
    if (!m.up && next_seq_ > m.applied) hints += next_seq_ - m.applied;
  }
  return hints;
}

void ReplicaGroup::RefreshGaugesLocked() {
  log_entries_gauge_->Set(static_cast<double>(log_->size()));
  hints_pending_gauge_->Set(static_cast<double>(HintsPendingLocked()));
}

void ReplicaGroup::OnPrimaryFailureLocked(const Status& status) {
  if (!IsTransient(status)) return;
  Member& primary = members_[primary_];
  primary.fail_streak++;
  if (options_.failover_after > 0 &&
      primary.fail_streak >= options_.failover_after) {
    primary.up = false;
    primary.next_probe_nanos =
        clock_->NowNanos() + options_.rejoin_probe_nanos;
    ack_cv_.NotifyAll();
    (void)PromoteLocked(std::string(), "primary failure streak");
  }
}

Status ReplicaGroup::Promote(const std::string& target) {
  obs::Span span("replica.promote");
  span.SetAttribute("group", options_.name);
  MutexLock lock(mu_);
  Status status = PromoteLocked(target, "manual");
  span.SetStatus(status);
  return status;
}

Status ReplicaGroup::PromoteLocked(const std::string& target,
                                   const std::string& reason) {
  if (options_.fault_plan != nullptr) {
    if (auto fault = options_.fault_plan->Evaluate("replica.promote",
                                                   "promote")) {
      if (fault->latency_nanos > 0) clock_->SleepFor(fault->latency_nanos);
      if (fault->kind == fault::FaultKind::kError ||
          fault->kind == fault::FaultKind::kErrorAfterApply) {
        return fault->ToStatus("replica.promote", "promote");
      }
    }
  }
  // Most-caught-up live backup; name-ordered tie-break keeps the choice —
  // and therefore the promotion trace — deterministic. A backup below the
  // acked watermark is never eligible: the holder of an acked write may
  // merely be down for a blip, and promoting past it would lose the write
  // for good. Better to stay headless until a holder rejoins.
  size_t best = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i == primary_ || !members_[i].up) continue;
    if (members_[i].applied < acked_seq_) continue;
    if (!target.empty()) {
      if (members_[i].name == target) best = i;
      continue;
    }
    if (best == members_.size() ||
        members_[i].applied > members_[best].applied ||
        (members_[i].applied == members_[best].applied &&
         members_[i].name < members_[best].name)) {
      best = i;
    }
  }
  if (best == members_.size()) {
    return Status::Unavailable(
        "group " + options_.name +
        ": no promotable backup holding every acknowledged write" +
        (target.empty() ? "" : " named " + target));
  }
  epoch_++;
  const uint64_t cut = members_[best].applied;
  // The deposed primary's unacked tail (entries past the new primary's
  // prefix) is dropped: no acked write is in it when W >= 2, and keeping it
  // would resurrect writes the new history never saw.
  Status status = log_->TruncateTo(cut);
  if (!status.ok()) return status;
  next_seq_ = cut;
  for (auto& m : members_) {
    if (m.applied > cut) m.applied = cut;
  }
  primary_ = best;
  members_[best].fail_streak = 0;
  for (auto& m : members_) {
    if (!m.up) continue;
    if (m.transport->Fence(epoch_, cut).ok()) fenced_total_->Increment();
  }
  promotions_total_->Increment();
  epoch_gauge_->Set(static_cast<double>(epoch_));
  promotion_trace_ += "promote to=" + members_[best].name +
                      " epoch=" + std::to_string(epoch_) +
                      " applied=" + std::to_string(cut) + " reason=" + reason +
                      "\n";
  RefreshGaugesLocked();
  work_cv_.NotifyAll();
  ack_cv_.NotifyAll();
  return Status::OK();
}

StatusOr<ValuePtr> ReplicaGroup::Read(const std::string& key,
                                      uint64_t min_seq) {
  obs::Span span("replica.get");
  span.SetAttribute("group", options_.name);
  struct Candidate {
    size_t index;
    uint64_t applied;
    bool primary;
    std::shared_ptr<ReplicaTransport> transport;
  };
  std::vector<Candidate> candidates;
  bool any_up = false;
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < members_.size(); ++i) {
      const Member& m = members_[i];
      if (!m.up) continue;
      any_up = true;
      if (m.applied < min_seq) continue;
      candidates.push_back({i, m.applied, i == primary_, m.transport});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.applied != b.applied) return a.applied > b.applied;
              if (a.primary != b.primary) return a.primary;
              return a.index < b.index;
            });
  if (candidates.empty()) {
    return any_up
               ? Status::Unavailable(
                     "group " + options_.name +
                     ": no replica at session high-water mark yet (min_seq=" +
                     std::to_string(min_seq) + ")")
               : Status::Unavailable("group " + options_.name +
                                     ": no live replica");
  }

  struct ReadResult {
    Candidate candidate;
    bool found = false;
    ValuePtr value;
  };
  std::vector<ReadResult> results;
  Status last_error = Status::OK();
  const size_t want =
      options_.read_repair ? static_cast<size_t>(options_.read_quorum) : 1;
  for (const auto& candidate : candidates) {
    if (results.size() >= want) break;
    admit::CircuitBreaker* breaker;
    {
      MutexLock lock(mu_);
      if (members_[candidate.index].transport != candidate.transport) continue;
      breaker = members_[candidate.index].breaker.get();
    }
    if (!breaker->Admit().ok()) continue;  // breaker gates selection
    StatusOr<ValuePtr> value = candidate.transport->store()->Get(key);
    const Status status = value.ok() || value.status().IsNotFound()
                              ? Status::OK()
                              : value.status();
    breaker->OnResult(status);
    if (status.ok()) {
      ReadResult result;
      result.candidate = candidate;
      result.found = value.ok();
      if (value.ok()) result.value = std::move(value).value();
      results.push_back(std::move(result));
      MutexLock lock(mu_);
      members_[candidate.index].fail_streak = 0;
    } else {
      last_error = status;
      MutexLock lock(mu_);
      if (members_[candidate.index].transport != candidate.transport ||
          !IsTransient(status)) {
        continue;
      }
      if (candidate.index == primary_) {
        OnPrimaryFailureLocked(status);
      } else {
        Member& m = members_[candidate.index];
        m.fail_streak++;
        if (m.fail_streak >= options_.down_after) {
          m.up = false;
          m.next_probe_nanos =
              clock_->NowNanos() + options_.rejoin_probe_nanos;
          ack_cv_.NotifyAll();
        }
      }
    }
  }
  if (results.empty()) {
    span.MarkError();
    return last_error.ok() ? Status::Unavailable("group " + options_.name +
                                                 ": all replica reads failed")
                           : last_error;
  }
  reads_total_->Increment();

  // The most-caught-up successful read is authoritative (candidates were
  // sorted); divergent peers — normal lag or silent corruption alike — are
  // rewritten when read repair is on.
  const ReadResult& authority = results.front();
  if (options_.read_repair) {
    for (size_t i = 1; i < results.size(); ++i) {
      const ReadResult& other = results[i];
      const bool diverged =
          other.found != authority.found ||
          (other.found && *other.value != *authority.value);
      if (!diverged) continue;
      KeyValueStore* store = other.candidate.transport->store();
      const Status repaired = authority.found
                                  ? store->Put(key, authority.value)
                                  : store->Delete(key);
      if (repaired.ok()) read_repair_total_->Increment();
    }
  }
  if (!authority.found) return Status::NotFound("no such key");
  return authority.value;
}

StatusOr<bool> ReplicaGroup::ContainsRead(const std::string& key,
                                          uint64_t min_seq) {
  DSTORE_ASSIGN_OR_RETURN(ValuePtr value, [&]() -> StatusOr<ValuePtr> {
    auto result = Read(key, min_seq);
    if (!result.ok() && result.status().IsNotFound()) return ValuePtr();
    return result;
  }());
  return value != nullptr;
}

StatusOr<std::vector<std::string>> ReplicaGroup::ListKeysRead(
    uint64_t min_seq) {
  obs::Span span("replica.list");
  struct Candidate {
    uint64_t applied;
    bool primary;
    std::shared_ptr<ReplicaTransport> transport;
  };
  std::vector<Candidate> candidates;
  {
    MutexLock lock(mu_);
    for (size_t i = 0; i < members_.size(); ++i) {
      const Member& m = members_[i];
      if (m.up && m.applied >= min_seq) {
        candidates.push_back({m.applied, i == primary_, m.transport});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.applied != b.applied) return a.applied > b.applied;
              return a.primary && !b.primary;
            });
  Status last_error =
      Status::Unavailable("group " + options_.name + ": no live replica");
  for (const auto& candidate : candidates) {
    auto keys = candidate.transport->store()->ListKeys();
    if (keys.ok()) {
      reads_total_->Increment();
      return keys;
    }
    last_error = keys.status();
  }
  return last_error;
}

StatusOr<size_t> ReplicaGroup::CountRead(uint64_t min_seq) {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                          ListKeysRead(min_seq));
  return keys.size();
}

Status ReplicaGroup::MarkDown(const std::string& name) {
  MutexLock lock(mu_);
  for (auto& m : members_) {
    if (m.name != name) continue;
    m.up = false;
    m.fail_streak = 0;
    m.next_probe_nanos = clock_->NowNanos() + options_.rejoin_probe_nanos;
    RefreshGaugesLocked();
    ack_cv_.NotifyAll();
    return Status::OK();
  }
  return Status::NotFound("no replica named " + name);
}

Status ReplicaGroup::Rejoin(const std::string& name) {
  MutexLock lock(mu_);
  for (auto& m : members_) {
    if (m.name != name) continue;
    m.next_probe_nanos = 0;
    work_cv_.NotifyAll();
    return Status::OK();
  }
  return Status::NotFound("no replica named " + name);
}

Status ReplicaGroup::ReplaceReplica(
    const std::string& name, std::shared_ptr<ReplicaTransport> transport) {
  MutexLock lock(mu_);
  size_t index = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].name == name) index = i;
  }
  if (index == members_.size()) {
    return Status::NotFound("no replica named " + name);
  }
  if (index == primary_) {
    return Status::InvalidArgument("cannot replace the live primary; promote "
                                   "another replica first");
  }
  DSTORE_RETURN_IF_ERROR(transport->Fence(epoch_, 0));
  DSTORE_ASSIGN_OR_RETURN(ReplicaState state, transport->Probe());
  Member& member = members_[index];
  member.transport = std::move(transport);
  member.fail_streak = 0;
  member.applied = std::min(state.applied, next_seq_);
  if (member.applied < log_->base_seq()) {
    // The log no longer holds this replica's replay suffix (it was trimmed
    // while the slot was healthy elsewhere). Bootstrap: copy the primary's
    // current state wholesale, then let ordered replay of the retained
    // suffix converge it — put/delete/clear are state-overwriting, so
    // replaying an old suffix over a newer snapshot lands on the primary's
    // final state.
    KeyValueStore* source = members_[primary_].transport->store();
    KeyValueStore* target = member.transport->store();
    DSTORE_RETURN_IF_ERROR(target->Clear());
    DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                            source->ListKeys());
    for (const auto& key : keys) {
      auto value = source->Get(key);
      if (!value.ok()) {
        if (value.status().IsNotFound()) continue;  // raced a delete
        return value.status();
      }
      DSTORE_RETURN_IF_ERROR(target->Put(key, std::move(value).value()));
    }
    member.applied = log_->base_seq();
  }
  member.up = true;
  RefreshGaugesLocked();
  work_cv_.NotifyAll();
  ack_cv_.NotifyAll();
  return Status::OK();
}

StatusOr<ReplicaGroup::RepairStats> ReplicaGroup::RepairPass() {
  obs::Span span("replica.repair");
  span.SetAttribute("group", options_.name);
  RepairStats stats;
  // Quiesce writes for the pass: write_mu_ blocks writers, mu_ holds off
  // the replicator's target selection, so the digests race nothing.
  MutexLock write_lock(write_mu_);
  MutexLock lock(mu_);
  if (!members_[primary_].up) {
    return Status::Unavailable("group " + options_.name +
                               ": no live primary to repair from");
  }
  const size_t buckets = std::max<size_t>(1, options_.digest_buckets);
  KeyValueStore* source = members_[primary_].transport->store();

  // Merkle-style two-level digest: per-bucket XOR of (key, value) hashes.
  // XOR keeps the fold order-independent, so two stores with equal contents
  // digest equally no matter how ListKeys orders them.
  auto digest = [&](KeyValueStore* store)
      -> StatusOr<std::pair<std::vector<uint64_t>,
                            std::map<size_t, std::vector<std::string>>>> {
    std::vector<uint64_t> tree(buckets, 0);
    std::map<size_t, std::vector<std::string>> keys_by_bucket;
    DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, store->ListKeys());
    for (const auto& key : keys) {
      auto value = store->Get(key);
      if (!value.ok()) {
        if (value.status().IsNotFound()) continue;
        return value.status();
      }
      const size_t bucket = Mix64(Fnv1a64(key)) % buckets;
      tree[bucket] ^= ValueDigest(key, **value);
      keys_by_bucket[bucket].push_back(key);
    }
    return std::make_pair(std::move(tree), std::move(keys_by_bucket));
  };

  DSTORE_ASSIGN_OR_RETURN(auto source_digest, digest(source));
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i == primary_ || !members_[i].up) continue;
    KeyValueStore* target = members_[i].transport->store();
    auto target_digest = digest(target);
    if (!target_digest.ok()) continue;  // unreadable replica: skip this pass
    stats.replicas_checked++;
    for (size_t bucket = 0; bucket < buckets; ++bucket) {
      if (source_digest.first[bucket] == target_digest->first[bucket]) {
        continue;
      }
      stats.buckets_diverged++;
      // Union of both sides' keys in the differing bucket; the primary's
      // value (or absence) wins.
      std::vector<std::string> keys = source_digest.second[bucket];
      const auto& extra = target_digest->second[bucket];
      keys.insert(keys.end(), extra.begin(), extra.end());
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      for (const auto& key : keys) {
        auto want = source->Get(key);
        auto have = target->Get(key);
        const bool want_found = want.ok();
        const bool have_found = have.ok();
        if (!want_found && !want.status().IsNotFound()) continue;
        if (!have_found && !have.status().IsNotFound()) continue;
        const bool same = want_found == have_found &&
                          (!want_found || **want == **have);
        if (same) continue;
        const Status repaired = want_found
                                    ? target->Put(key, std::move(want).value())
                                    : target->Delete(key);
        if (repaired.ok()) {
          stats.keys_repaired++;
          repair_total_->Increment();
        }
      }
    }
  }
  span.SetAttribute("keys_repaired", std::to_string(stats.keys_repaired));
  return stats;
}

ReplicaGroup::GroupStatus ReplicaGroup::GetStatus() {
  MutexLock lock(mu_);
  GroupStatus status;
  status.name = options_.name;
  status.epoch = epoch_;
  status.last_seq = next_seq_;
  status.primary = members_[primary_].name;
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member& m = members_[i];
    ReplicaInfo info;
    info.name = m.name;
    info.primary = i == primary_;
    info.up = m.up;
    info.applied = m.applied;
    info.lag = next_seq_ > m.applied ? next_seq_ - m.applied : 0;
    info.hints = m.up ? 0 : info.lag;
    info.breaker =
        std::string(admit::CircuitBreaker::StateName(m.breaker->state()));
    status.replicas.push_back(std::move(info));
  }
  return status;
}

Status ReplicaGroup::WaitForReplication(int64_t timeout_nanos) {
  const int64_t deadline = clock_->NowNanos() + timeout_nanos;
  MutexLock lock(mu_);
  for (;;) {
    bool caught_up = true;
    for (const auto& m : members_) {
      if (m.up && m.applied < next_seq_) caught_up = false;
    }
    if (caught_up) return Status::OK();
    if (clock_->NowNanos() >= deadline) {
      return Status::TimedOut("group " + options_.name +
                              ": replication did not drain in time");
    }
    ack_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
  }
}

std::string ReplicaGroup::PromotionTrace() {
  MutexLock lock(mu_);
  return promotion_trace_;
}

uint64_t ReplicaGroup::epoch() {
  MutexLock lock(mu_);
  return epoch_;
}

std::string ReplicaGroup::primary_name() {
  MutexLock lock(mu_);
  return members_[primary_].name;
}

void ReplicaGroup::MaybeTrimLocked() {
  uint64_t min_applied = next_seq_;
  for (const auto& m : members_) {
    min_applied = std::min(min_applied, m.applied);
  }
  if (min_applied > log_->base_seq() &&
      min_applied - log_->base_seq() >= options_.trim_batch) {
    (void)log_->TrimThrough(min_applied);  // retried next round on failure
  }
}

bool ReplicaGroup::ReplicateOnceLocked() {
  // Down-replica probes (breaker-gated — the same selection gate reads
  // use, so a tripping replica is probed at the breaker's pace, not ours).
  const int64_t now = clock_->NowNanos();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].up || now < members_[i].next_probe_nanos) continue;
    members_[i].next_probe_nanos = now + options_.rejoin_probe_nanos;
    auto transport = members_[i].transport;
    admit::CircuitBreaker* breaker = members_[i].breaker.get();
    mu_.Unlock();
    StatusOr<ReplicaState> probe =
        Status::Unavailable("probe short-circuited");
    if (breaker->Admit().ok()) {
      probe = transport->Probe();
      breaker->OnResult(probe.ok() ? Status::OK() : probe.status());
    }
    mu_.Lock();
    if (stop_) return false;
    Member& member = members_[i];
    if (member.up || member.transport != transport) continue;
    if (!probe.ok()) continue;
    if (probe->epoch > epoch_) {
      // The replica accepted a newer epoch than this handle knows: we are
      // the stale side. Leave it down rather than graft our superseded
      // history onto it.
      continue;
    }
    uint64_t applied = std::min(probe->applied, next_seq_);
    if (probe->epoch < epoch_ && probe->applied > 0) {
      // Stale-epoch rejoiner — e.g. a deposed primary that was down during
      // the promotion and missed its fence. Its self-reported watermark
      // still counts the truncated old-epoch tail, so trust only the
      // group's own clamp (promotion caps every member, down ones
      // included), and fence the replica so replay actually re-applies
      // past the clamp instead of being skipped as idempotent.
      applied = std::min(applied, member.applied);
      const uint64_t fence_epoch = epoch_;
      mu_.Unlock();
      const Status fenced = transport->Fence(fence_epoch, applied);
      mu_.Lock();
      if (stop_) return false;
      if (member.up || member.transport != transport ||
          epoch_ != fence_epoch) {
        continue;
      }
      if (!fenced.ok()) continue;  // retry at the next probe
      fenced_total_->Increment();
    }
    if (applied < log_->base_seq()) continue;  // needs ReplaceReplica
    member.applied = applied;
    member.up = true;
    member.fail_streak = 0;
    if (member.applied < next_seq_) {
      // The retained suffix now replays as hinted handoff.
      handoff_replayed_total_->Increment(next_seq_ - member.applied);
    }
    RefreshGaugesLocked();
    ack_cv_.NotifyAll();
    return true;
  }

  // Stream the next entry to the most-behind live replica — the primary
  // included: a failed inline apply leaves a hole at the front of the
  // primary's suffix that only ordered replay may fill (Write never jumps
  // the watermark). Skip the transport a Write() is applying to inline, so
  // a backfilled entry cannot land after a later one on a shared key.
  size_t target = members_.size();
  for (size_t i = 0; i < members_.size(); ++i) {
    if (!members_[i].up) continue;
    if (members_[i].applied >= next_seq_) continue;
    if (members_[i].transport == inline_primary_) continue;
    if (target == members_.size() ||
        members_[i].applied < members_[target].applied) {
      target = i;
    }
  }
  if (target == members_.size()) {
    MaybeTrimLocked();
    return false;
  }
  Member& member = members_[target];
  std::optional<LogEntry> entry = log_->EntryAt(member.applied + 1);
  if (!entry.has_value()) return false;  // trimmed out from under: rejoin path
  const uint64_t epoch_snapshot = epoch_;
  auto transport = member.transport;

  if (options_.fault_plan != nullptr) {
    if (auto fault =
            options_.fault_plan->Evaluate("replica.handoff", "replay")) {
      if (fault->latency_nanos > 0) {
        mu_.Unlock();
        clock_->SleepFor(fault->latency_nanos);
        mu_.Lock();
        if (stop_) return false;
      }
      if (fault->kind == fault::FaultKind::kError) {
        Member& m = members_[target];
        if (m.transport == transport) {
          m.fail_streak++;
          if (m.fail_streak >= options_.down_after) {
            m.up = false;
            m.next_probe_nanos =
                clock_->NowNanos() + options_.rejoin_probe_nanos;
            RefreshGaugesLocked();
            ack_cv_.NotifyAll();
          }
        }
        return true;
      }
    }
  }

  mu_.Unlock();
  const Status status = transport->Apply(*entry, epoch_snapshot);
  mu_.Lock();
  if (stop_) return false;
  Member& m = members_[target];
  if (m.transport != transport || epoch_ != epoch_snapshot) return true;
  if (status.ok()) {
    if (entry->seq == m.applied + 1) m.applied = entry->seq;
    m.fail_streak = 0;
    MaybeTrimLocked();
    RefreshGaugesLocked();
    ack_cv_.NotifyAll();
  } else if (target == primary_ && IsTransient(status)) {
    // Backfilling the primary's own hole failed: this is a primary
    // failure, so route it through the failover counter.
    OnPrimaryFailureLocked(status);
  } else if (IsTransient(status) || IsFenced(status)) {
    m.fail_streak++;
    if (m.fail_streak >= options_.down_after) {
      m.up = false;
      m.next_probe_nanos = clock_->NowNanos() + options_.rejoin_probe_nanos;
      RefreshGaugesLocked();
      ack_cv_.NotifyAll();
    }
  }
  return true;
}

void ReplicaGroup::ReplicatorLoop() {
  MutexLock lock(mu_);
  while (!stop_) {
    if (!ReplicateOnceLocked()) {
      if (stop_) break;
      work_cv_.WaitFor(
          mu_, std::chrono::nanoseconds(options_.replicator_idle_nanos));
    }
  }
}

}  // namespace replica
}  // namespace dstore
