#include "udsm/workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace dstore {

namespace {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0;
  const double mean = Mean(xs);
  double sum_sq = 0;
  for (double x : xs) sum_sq += (x - mean) * (x - mean);
  return std::sqrt(sum_sq / static_cast<double>(xs.size()));
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const Config& config, const Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : RealClock::Default()) {}

Status WorkloadGenerator::UseDataFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open data file: " + path);
  file_data_.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  if (file_data_.empty()) {
    return Status::InvalidArgument("data file is empty: " + path);
  }
  return Status::OK();
}

void WorkloadGenerator::UseDataSource(DataSource source) {
  source_ = std::move(source);
}

Bytes WorkloadGenerator::MakeObject(size_t size, Random* rng) {
  if (source_) return source_(size, rng);
  if (!file_data_.empty()) {
    Bytes out;
    out.reserve(size);
    while (out.size() < size) {
      const size_t take = std::min(file_data_.size(), size - out.size());
      out.insert(out.end(), file_data_.begin(),
                 file_data_.begin() + static_cast<ptrdiff_t>(take));
    }
    return out;
  }
  return rng->CompressibleBytes(size, config_.redundancy);
}

StatusOr<std::vector<WorkloadGenerator::SizePoint>>
WorkloadGenerator::MeasureStore(KeyValueStore* store) {
  std::vector<SizePoint> points;
  Random rng(config_.seed);
  for (size_t size : config_.sizes) {
    std::vector<double> read_runs, write_runs;
    for (int run = 0; run < config_.runs; ++run) {
      // Fresh objects each run; distinct keys avoid cross-run caching in
      // the store's own layers.
      std::vector<std::string> keys;
      std::vector<Bytes> objects;
      for (int i = 0; i < config_.ops_per_size; ++i) {
        keys.push_back("wl_" + std::to_string(size) + "_" +
                       std::to_string(run) + "_" + std::to_string(i));
        objects.push_back(MakeObject(size, &rng));
      }

      Stopwatch write_watch(clock_);
      for (int i = 0; i < config_.ops_per_size; ++i) {
        DSTORE_RETURN_IF_ERROR(
            store->Put(keys[i], MakeValue(Bytes(objects[i]))));
      }
      write_runs.push_back(write_watch.ElapsedMillis() /
                           config_.ops_per_size);

      Stopwatch read_watch(clock_);
      for (int i = 0; i < config_.ops_per_size; ++i) {
        DSTORE_ASSIGN_OR_RETURN(ValuePtr value, store->Get(keys[i]));
        if (value->size() != size) {
          return Status::Internal("size mismatch reading back object");
        }
      }
      read_runs.push_back(read_watch.ElapsedMillis() / config_.ops_per_size);

      for (const std::string& key : keys) {
        DSTORE_RETURN_IF_ERROR(store->Delete(key));
      }
    }
    SizePoint point;
    point.size = size;
    point.read_ms = Mean(read_runs);
    point.write_ms = Mean(write_runs);
    point.read_stddev_ms = Stddev(read_runs);
    point.write_stddev_ms = Stddev(write_runs);
    points.push_back(point);
  }
  return points;
}

StatusOr<std::vector<WorkloadGenerator::CachedReadPoint>>
WorkloadGenerator::MeasureCachedReads(KeyValueStore* store, Cache* cache) {
  std::vector<CachedReadPoint> points;
  Random rng(config_.seed);
  for (size_t size : config_.sizes) {
    std::vector<double> miss_runs, hit_runs;
    for (int run = 0; run < config_.runs; ++run) {
      std::vector<std::string> keys;
      for (int i = 0; i < config_.ops_per_size; ++i) {
        const std::string key = "wlc_" + std::to_string(size) + "_" +
                                std::to_string(run) + "_" + std::to_string(i);
        keys.push_back(key);
        Bytes object = MakeObject(size, &rng);
        DSTORE_RETURN_IF_ERROR(store->Put(key, MakeValue(Bytes(object))));
        DSTORE_RETURN_IF_ERROR(cache->Put(key, MakeValue(std::move(object))));
      }

      // Miss path: read through the store interface.
      Stopwatch miss_watch(clock_);
      for (const std::string& key : keys) {
        DSTORE_ASSIGN_OR_RETURN(ValuePtr value, store->Get(key));
        (void)value;
      }
      miss_runs.push_back(miss_watch.ElapsedMillis() / config_.ops_per_size);

      // Hit path: read from the cache (100% hit rate).
      Stopwatch hit_watch(clock_);
      for (const std::string& key : keys) {
        DSTORE_ASSIGN_OR_RETURN(ValuePtr value, cache->Get(key));
        (void)value;
      }
      hit_runs.push_back(hit_watch.ElapsedMillis() / config_.ops_per_size);

      for (const std::string& key : keys) {
        DSTORE_RETURN_IF_ERROR(store->Delete(key));
        DSTORE_RETURN_IF_ERROR(cache->Delete(key));
      }
    }

    CachedReadPoint point;
    point.size = size;
    point.miss_ms = Mean(miss_runs);
    point.hit_ms = Mean(hit_runs);
    for (double rate : config_.hit_rates) {
      point.extrapolated_ms.push_back(rate * point.hit_ms +
                                      (1.0 - rate) * point.miss_ms);
    }
    points.push_back(std::move(point));
  }
  return points;
}

StatusOr<std::vector<WorkloadGenerator::OverheadPoint>>
WorkloadGenerator::MeasureCipher(Cipher* cipher) {
  std::vector<OverheadPoint> points;
  Random rng(config_.seed);
  for (size_t size : config_.sizes) {
    std::vector<double> enc_runs, dec_runs;
    for (int run = 0; run < config_.runs; ++run) {
      std::vector<Bytes> plaintexts, ciphertexts;
      for (int i = 0; i < config_.ops_per_size; ++i) {
        plaintexts.push_back(MakeObject(size, &rng));
      }
      Stopwatch enc_watch(clock_);
      for (const Bytes& plain : plaintexts) {
        DSTORE_ASSIGN_OR_RETURN(Bytes encrypted, cipher->Encrypt(plain));
        ciphertexts.push_back(std::move(encrypted));
      }
      enc_runs.push_back(enc_watch.ElapsedMillis() / config_.ops_per_size);

      Stopwatch dec_watch(clock_);
      for (const Bytes& encrypted : ciphertexts) {
        DSTORE_ASSIGN_OR_RETURN(Bytes decrypted, cipher->Decrypt(encrypted));
        if (decrypted.size() != size) {
          return Status::Internal("decryption size mismatch");
        }
      }
      dec_runs.push_back(dec_watch.ElapsedMillis() / config_.ops_per_size);
    }
    OverheadPoint point;
    point.size = size;
    point.forward_ms = Mean(enc_runs);
    point.backward_ms = Mean(dec_runs);
    point.ratio = 1.0;
    points.push_back(point);
  }
  return points;
}

StatusOr<std::vector<WorkloadGenerator::OverheadPoint>>
WorkloadGenerator::MeasureCodec(Codec* codec) {
  std::vector<OverheadPoint> points;
  Random rng(config_.seed);
  for (size_t size : config_.sizes) {
    std::vector<double> comp_runs, decomp_runs;
    double ratio_sum = 0;
    int ratio_count = 0;
    for (int run = 0; run < config_.runs; ++run) {
      std::vector<Bytes> inputs, compressed;
      for (int i = 0; i < config_.ops_per_size; ++i) {
        inputs.push_back(MakeObject(size, &rng));
      }
      Stopwatch comp_watch(clock_);
      for (const Bytes& input : inputs) {
        DSTORE_ASSIGN_OR_RETURN(Bytes output, codec->Compress(input));
        compressed.push_back(std::move(output));
      }
      comp_runs.push_back(comp_watch.ElapsedMillis() / config_.ops_per_size);

      for (size_t i = 0; i < inputs.size(); ++i) {
        if (!inputs[i].empty()) {
          ratio_sum += static_cast<double>(compressed[i].size()) /
                       static_cast<double>(inputs[i].size());
          ++ratio_count;
        }
      }

      Stopwatch decomp_watch(clock_);
      for (const Bytes& input : compressed) {
        DSTORE_ASSIGN_OR_RETURN(Bytes output, codec->Decompress(input));
        if (output.size() != size) {
          return Status::Internal("decompression size mismatch");
        }
      }
      decomp_runs.push_back(decomp_watch.ElapsedMillis() /
                            config_.ops_per_size);
    }
    OverheadPoint point;
    point.size = size;
    point.forward_ms = Mean(comp_runs);
    point.backward_ms = Mean(decomp_runs);
    point.ratio = ratio_count == 0 ? 1.0 : ratio_sum / ratio_count;
    points.push_back(point);
  }
  return points;
}

Status WorkloadGenerator::WriteTable(
    const std::string& path, const std::vector<std::string>& columns,
    const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open output file: " + path);
  out << "#";
  for (const std::string& column : columns) out << " " << column;
  out << "\n";
  char buf[32];
  for (const auto& row : rows) {
    bool first = true;
    for (double value : row) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      if (!first) out << " ";
      out << buf;
      first = false;
    }
    out << "\n";
  }
  return out.good() ? Status::OK()
                    : Status::IOError("write failed: " + path);
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double s, uint64_t seed)
    : n_(std::max<uint64_t>(n, 1)),
      s_(std::clamp(s, 0.0, 0.999)),  // the transform needs s < 1
      rng_(seed) {
  if (s_ <= 0) return;  // uniform; no zeta needed
  for (uint64_t i = 1; i <= n_; ++i) zetan_ += 1.0 / std::pow(i, s_);
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, s_);
  alpha_ = 1.0 / (1.0 - s_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - s_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  if (s_ <= 0) return rng_.Uniform(n_);
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, s_)) return 1;
  const auto rank = static_cast<uint64_t>(
      n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::min(rank, n_ - 1);
}

}  // namespace dstore
