#include "udsm/udsm.h"

namespace dstore {

Udsm::Udsm() : Udsm(Options()) {}

Udsm::Udsm(const Options& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.async_threads)),
      monitor_(std::make_shared<PerformanceMonitor>(
          options.monitor_recent_window)) {}

Status Udsm::RegisterStore(const std::string& name,
                           std::shared_ptr<KeyValueStore> store) {
  if (store == nullptr) {
    return Status::InvalidArgument("cannot register a null store");
  }
  if (name.empty()) {
    return Status::InvalidArgument("store name must not be empty");
  }
  Entry entry;
  entry.raw = store;
  entry.monitored =
      options_.monitor
          ? std::make_shared<MonitoredStore>(std::move(store), monitor_)
          : entry.raw;
  MutexLock lock(mu_);
  stores_[name] = std::move(entry);
  return Status::OK();
}

Status Udsm::UnregisterStore(const std::string& name) {
  MutexLock lock(mu_);
  if (stores_.erase(name) == 0) {
    return Status::NotFound("no store registered as: " + name);
  }
  return Status::OK();
}

KeyValueStore* Udsm::GetStore(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = stores_.find(name);
  return it == stores_.end() ? nullptr : it->second.monitored.get();
}

std::shared_ptr<KeyValueStore> Udsm::GetStoreShared(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = stores_.find(name);
  return it == stores_.end() ? nullptr : it->second.monitored;
}

StatusOr<AsyncStore> Udsm::GetAsyncStore(const std::string& name) const {
  std::shared_ptr<KeyValueStore> store = GetStoreShared(name);
  if (store == nullptr) {
    return Status::NotFound("no store registered as: " + name);
  }
  return AsyncStore(std::move(store), pool_.get());
}

std::vector<std::string> Udsm::StoreNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, entry] : stores_) names.push_back(name);
  return names;
}

}  // namespace dstore
