#include "udsm/mirrored_store.h"

#include <set>

namespace dstore {

MirroredStore::MirroredStore(
    std::vector<std::shared_ptr<KeyValueStore>> replicas,
    const Options& options)
    : replicas_(std::move(replicas)), options_(options) {}

size_t MirroredStore::RequiredAcks() const {
  switch (options_.write_concern) {
    case WriteConcern::kAll:
      return replicas_.size();
    case WriteConcern::kQuorum:
      return replicas_.size() / 2 + 1;
    case WriteConcern::kOne:
      return 1;
  }
  return replicas_.size();
}

Status MirroredStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  size_t acks = 0;
  Status last_error;
  for (auto& replica : replicas_) {
    const Status status = replica->Put(key, value);
    if (status.ok()) {
      ++acks;
    } else {
      last_error = status;
    }
  }
  if (acks >= RequiredAcks()) return Status::OK();
  return Status(last_error.ok() ? StatusCode::kUnavailable : last_error.code(),
                "write concern not met (" + std::to_string(acks) + "/" +
                    std::to_string(RequiredAcks()) + " acks): " +
                    last_error.message());
}

StatusOr<ValuePtr> MirroredStore::Get(const std::string& key) {
  std::vector<size_t> missed;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    auto value = replicas_[i]->Get(key);
    if (value.ok()) {
      if (options_.read_repair) {
        for (size_t j : missed) {
          replicas_[j]->Put(key, *value).ok();  // best effort
        }
      }
      return value;
    }
    if (value.status().IsNotFound()) missed.push_back(i);
  }
  return Status::NotFound("key missing from every replica: " + key);
}

Status MirroredStore::Delete(const std::string& key) {
  size_t acks = 0;
  Status last_error;
  for (auto& replica : replicas_) {
    const Status status = replica->Delete(key);
    if (status.ok()) {
      ++acks;
    } else {
      last_error = status;
    }
  }
  if (acks >= RequiredAcks()) return Status::OK();
  return last_error;
}

StatusOr<bool> MirroredStore::Contains(const std::string& key) {
  for (auto& replica : replicas_) {
    auto present = replica->Contains(key);
    if (present.ok() && *present) return true;
  }
  return false;
}

StatusOr<std::vector<std::string>> MirroredStore::ListKeys() {
  // Union over replicas, so keys surviving on any replica are visible.
  std::set<std::string> keys;
  Status last_error;
  bool any_ok = false;
  for (auto& replica : replicas_) {
    auto replica_keys = replica->ListKeys();
    if (!replica_keys.ok()) {
      last_error = replica_keys.status();
      continue;
    }
    any_ok = true;
    keys.insert(replica_keys->begin(), replica_keys->end());
  }
  if (!any_ok) return last_error;
  return std::vector<std::string>(keys.begin(), keys.end());
}

StatusOr<size_t> MirroredStore::Count() {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, ListKeys());
  return keys.size();
}

Status MirroredStore::Clear() {
  Status first_error;
  for (auto& replica : replicas_) {
    const Status status = replica->Clear();
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

std::string MirroredStore::Name() const {
  std::string name = "mirror(";
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i > 0) name += ",";
    name += replicas_[i]->Name();
  }
  return name + ")";
}

StatusOr<MirroredStore::ConsistencyReport> MirroredStore::CheckConsistency() {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, ListKeys());
  ConsistencyReport report;
  for (const std::string& key : keys) {
    Divergence divergence;
    divergence.key = key;
    bool differs = false;
    std::string first_etag;
    bool first = true;
    for (auto& replica : replicas_) {
      auto value = replica->Get(key);
      std::string etag;
      if (value.ok()) etag = ComputeEtag(**value);
      divergence.etags.push_back(etag);
      if (first) {
        first_etag = etag;
        first = false;
      } else if (etag != first_etag) {
        differs = true;
      }
    }
    ++report.keys_checked;
    if (differs) report.divergent.push_back(std::move(divergence));
  }
  return report;
}

Status MirroredStore::Repair(size_t source_index) {
  if (source_index >= replicas_.size()) {
    return Status::InvalidArgument("no such replica");
  }
  KeyValueStore& source = *replicas_[source_index];
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> source_keys,
                          source.ListKeys());
  const std::set<std::string> source_set(source_keys.begin(),
                                         source_keys.end());

  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (i == source_index) continue;
    KeyValueStore& target = *replicas_[i];
    // Copy everything the source has that the target lacks or differs on.
    for (const std::string& key : source_keys) {
      DSTORE_ASSIGN_OR_RETURN(ValuePtr value, source.Get(key));
      auto existing = target.Get(key);
      if (existing.ok() && **existing == *value) continue;
      DSTORE_RETURN_IF_ERROR(target.Put(key, value));
    }
    // Remove target keys the source does not have.
    DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> target_keys,
                            target.ListKeys());
    for (const std::string& key : target_keys) {
      if (source_set.count(key) == 0) {
        DSTORE_RETURN_IF_ERROR(target.Delete(key));
      }
    }
  }
  return Status::OK();
}

}  // namespace dstore
