#include "udsm/monitor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/trace.h"

namespace dstore {

void PerformanceMonitor::Record(const std::string& store,
                                const std::string& op, double millis,
                                bool ok) {
  obs::Histogram* latency = nullptr;
  obs::Counter* op_errors = nullptr;
  {
    MutexLock lock(mu_);
    Track& track = tracks_[{store, op}];
    track.summary.Add(millis);
    if (!ok) ++track.summary.errors;

    track.recent.push_back(millis);
    while (track.recent.size() > recent_window_) track.recent.pop_front();

    if (registry_ != nullptr && track.latency == nullptr) {
      const obs::Labels labels = {{"op", op}, {"store", store}};
      track.latency = registry_->GetHistogram(
          "dstore_op_latency_ms", labels,
          "Latency of monitored store operations in milliseconds.");
      track.op_errors = registry_->GetCounter(
          "dstore_op_errors_total", labels,
          "Monitored store operations that returned an error.");
    }
    latency = track.latency;
    op_errors = track.op_errors;
  }
  // Registry instruments are internally synchronized; publish outside mu_.
  if (latency != nullptr) latency->Record(millis);
  if (!ok && op_errors != nullptr) op_errors->Increment();
}

OpSummary PerformanceMonitor::Summary(const std::string& store,
                                      const std::string& op) const {
  MutexLock lock(mu_);
  auto it = tracks_.find({store, op});
  return it == tracks_.end() ? OpSummary{} : it->second.summary;
}

std::vector<double> PerformanceMonitor::RecentSamples(
    const std::string& store, const std::string& op) const {
  MutexLock lock(mu_);
  auto it = tracks_.find({store, op});
  if (it == tracks_.end()) return {};
  return std::vector<double>(it->second.recent.begin(),
                             it->second.recent.end());
}

double PerformanceMonitor::RecentPercentileMs(const std::string& store,
                                              const std::string& op,
                                              double p) const {
  std::vector<double> samples = RecentSamples(store, op);
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1 - frac) + samples[hi] * frac;
}

std::vector<std::pair<std::string, std::string>> PerformanceMonitor::Tracked()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(tracks_.size());
  for (const auto& [key, track] : tracks_) out.push_back(key);
  return out;
}

std::string PerformanceMonitor::Report() const {
  // Percentiles come from the recent window; take them before locking (the
  // helper locks internally).
  std::map<TrackKey, std::pair<double, double>> percentiles;
  for (const auto& key : Tracked()) {
    percentiles[key] = {RecentPercentileMs(key.first, key.second, 50),
                        RecentPercentileMs(key.first, key.second, 95)};
  }
  MutexLock lock(mu_);
  std::string out =
      "store           op        count   errors  mean_ms    min_ms    max_ms"
      "    p50_ms    p95_ms\n";
  char line[256];
  for (const auto& [key, track] : tracks_) {
    const OpSummary& s = track.summary;
    const auto [p50, p95] = percentiles[key];
    std::snprintf(line, sizeof(line),
                  "%-15s %-9s %7llu %7llu %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.errors), s.MeanMs(),
                  s.min_ms, s.max_ms, p50, p95);
    out += line;
  }
  return out;
}

void PerformanceMonitor::Reset() {
  MutexLock lock(mu_);
  tracks_.clear();
}

Status PerformanceMonitor::SaveTo(KeyValueStore* store,
                                  const std::string& key) const {
  Bytes out;
  {
    MutexLock lock(mu_);
    PutVarint64(&out, tracks_.size());
    for (const auto& [track_key, track] : tracks_) {
      PutLengthPrefixed(&out, track_key.first);
      PutLengthPrefixed(&out, track_key.second);
      const OpSummary& s = track.summary;
      PutVarint64(&out, s.count);
      PutVarint64(&out, s.errors);
      // The on-disk form predates the Welford representation: it stores the
      // raw sum of squares, which SumSqMs() derives back from (mean, m2).
      for (double d : {s.total_ms, s.min_ms, s.max_ms, s.SumSqMs()}) {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        PutFixed64(&out, bits);
      }
    }
  }
  return store->Put(key, MakeValue(std::move(out)));
}

Status PerformanceMonitor::LoadFrom(KeyValueStore* store,
                                    const std::string& key) {
  DSTORE_ASSIGN_OR_RETURN(ValuePtr data, store->Get(key));
  std::map<TrackKey, Track> tracks;
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(*data, &pos));
  for (uint64_t i = 0; i < count; ++i) {
    DSTORE_ASSIGN_OR_RETURN(Bytes store_name, GetLengthPrefixed(*data, &pos));
    DSTORE_ASSIGN_OR_RETURN(Bytes op_name, GetLengthPrefixed(*data, &pos));
    Track track;
    OpSummary& s = track.summary;
    DSTORE_ASSIGN_OR_RETURN(s.count, GetVarint64(*data, &pos));
    DSTORE_ASSIGN_OR_RETURN(s.errors, GetVarint64(*data, &pos));
    double sum_sq = 0;
    for (double* d : {&s.total_ms, &s.min_ms, &s.max_ms, &sum_sq}) {
      if (pos + 8 > data->size()) {
        return Status::Corruption("truncated monitor snapshot");
      }
      const uint64_t bits = DecodeFixed64(data->data() + pos);
      pos += 8;
      std::memcpy(d, &bits, sizeof(*d));
    }
    // Rebuild the Welford state from the serialized moments. m2 can come
    // out slightly negative from rounding; clamp to keep variance >= 0.
    if (s.count > 0) {
      s.mean_ms = s.total_ms / static_cast<double>(s.count);
      s.m2_ms = std::max(
          0.0, sum_sq - static_cast<double>(s.count) * s.mean_ms * s.mean_ms);
    }
    tracks.emplace(TrackKey{ToString(store_name), ToString(op_name)},
                   std::move(track));
  }
  MutexLock lock(mu_);
  tracks_ = std::move(tracks);
  return Status::OK();
}

namespace {

// Times `fn` and records the result under (store, op). Also opens a trace
// span so a sampled request shows the monitored operation as one tree node.
template <typename Fn>
auto Timed(PerformanceMonitor* monitor, const Clock* clock,
           const std::string& store, const char* op, Fn&& fn) {
  obs::Span span(store + "." + op);
  Stopwatch watch(clock);
  auto result = fn();
  bool ok;
  if constexpr (std::is_same_v<decltype(result), Status>) {
    ok = result.ok();
  } else {
    ok = result.ok();
  }
  monitor->Record(store, op, watch.ElapsedMillis(), ok);
  return result;
}

}  // namespace

Status MonitoredStore::Put(const std::string& key, ValuePtr value) {
  return Timed(monitor_.get(), clock_, Name(), "put",
               [&] { return inner_->Put(key, std::move(value)); });
}

StatusOr<ValuePtr> MonitoredStore::Get(const std::string& key) {
  return Timed(monitor_.get(), clock_, Name(), "get",
               [&] { return inner_->Get(key); });
}

Status MonitoredStore::Delete(const std::string& key) {
  return Timed(monitor_.get(), clock_, Name(), "delete",
               [&] { return inner_->Delete(key); });
}

StatusOr<bool> MonitoredStore::Contains(const std::string& key) {
  return Timed(monitor_.get(), clock_, Name(), "contains",
               [&] { return inner_->Contains(key); });
}

StatusOr<std::vector<std::string>> MonitoredStore::ListKeys() {
  return Timed(monitor_.get(), clock_, Name(), "list",
               [&] { return inner_->ListKeys(); });
}

StatusOr<size_t> MonitoredStore::Count() {
  return Timed(monitor_.get(), clock_, Name(), "count",
               [&] { return inner_->Count(); });
}

Status MonitoredStore::Clear() {
  return Timed(monitor_.get(), clock_, Name(), "clear",
               [&] { return inner_->Clear(); });
}

StatusOr<ConditionalGetResult> MonitoredStore::GetIfChanged(
    const std::string& key, const std::string& etag) {
  return Timed(monitor_.get(), clock_, Name(), "conditional_get",
               [&] { return inner_->GetIfChanged(key, etag); });
}

}  // namespace dstore
