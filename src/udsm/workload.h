#ifndef DSTORE_UDSM_WORKLOAD_H_
#define DSTORE_UDSM_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "compress/codec.h"
#include "crypto/cipher.h"
#include "store/key_value.h"

namespace dstore {

// The UDSM workload generator (paper Section II.A): drives any store through
// the common key-value interface across a range of object sizes, measures
// read/write latency, extrapolates cached-read latency for caller-chosen hit
// rates, measures encryption/compression overhead, and writes gnuplot-ready
// text files. "The workload generator was a critical component in generating
// the performance data in Section V" — it is likewise what our bench/
// binaries are built on.
class WorkloadGenerator {
 public:
  struct Config {
    // Object sizes to sweep (bytes). Defaults cover the paper's 1B..1MB
    // log-scale x-axis.
    std::vector<size_t> sizes = {1,      10,      100,     1000,   10000,
                                 100000, 1000000};
    // Operations measured per (size, run).
    int ops_per_size = 10;
    // Experiments are averaged over this many runs ("each data point is
    // averaged over 4 runs", paper Section V).
    int runs = 4;
    // Synthetic data redundancy in [0,1] (see Random::CompressibleBytes).
    double redundancy = 0.5;
    uint64_t seed = 42;
    // Cache hit rates to extrapolate for cached-read measurements.
    std::vector<double> hit_rates = {0.0, 0.25, 0.5, 0.75, 1.0};
  };

  // Source of test objects. Defaults to synthetic data; callers may supply
  // their own objects ("users can provide their own data objects ... either
  // by placing the data in input files or writing a user-defined method").
  using DataSource = std::function<Bytes(size_t size, Random* rng)>;

  explicit WorkloadGenerator(const Config& config,
                             const Clock* clock = nullptr);

  // Uses `path`'s contents (tiled/truncated to each requested size).
  Status UseDataFile(const std::string& path);
  void UseDataSource(DataSource source);

  // --- Measurements ---

  struct SizePoint {
    size_t size = 0;
    double read_ms = 0;
    double write_ms = 0;
    double read_stddev_ms = 0;
    double write_stddev_ms = 0;
  };

  // Measures raw read/write latency per size (Figs. 9 & 10 series).
  StatusOr<std::vector<SizePoint>> MeasureStore(KeyValueStore* store);

  struct CachedReadPoint {
    size_t size = 0;
    double miss_ms = 0;  // read via the store (no caching)
    double hit_ms = 0;   // read via the cache (100% hit rate)
    // extrapolated[i] = hit_rates[i]*hit_ms + (1-hit_rates[i])*miss_ms
    std::vector<double> extrapolated_ms;
  };

  // Measures the no-cache and 100%-hit paths, then extrapolates each
  // configured hit rate (paper: "Multiple runs were made to determine read
  // latencies ... without caching and with caching when the hit rate is
  // 100%. From these numbers, the workload generator can extrapolate
  // performance for different hit rates."). Figs. 11-19.
  StatusOr<std::vector<CachedReadPoint>> MeasureCachedReads(
      KeyValueStore* store, Cache* cache);

  struct OverheadPoint {
    size_t size = 0;
    double forward_ms = 0;   // encrypt / compress
    double backward_ms = 0;  // decrypt / decompress
    double ratio = 0;        // output/input size (compression only)
  };

  // Fig. 20: AES encryption/decryption overhead per size.
  StatusOr<std::vector<OverheadPoint>> MeasureCipher(Cipher* cipher);
  // Fig. 21: gzip compression/decompression overhead per size.
  StatusOr<std::vector<OverheadPoint>> MeasureCodec(Codec* codec);

  // --- Output ---
  // Writes whitespace-separated columns with a '#' header line — directly
  // loadable by gnuplot / spreadsheets (paper: "Data from performance
  // testing is stored in text files").
  static Status WriteTable(const std::string& path,
                           const std::vector<std::string>& columns,
                           const std::vector<std::vector<double>>& rows);

  const Config& config() const { return config_; }

 private:
  Bytes MakeObject(size_t size, Random* rng);

  Config config_;
  const Clock* clock_;
  DataSource source_;
  Bytes file_data_;
};

// Seeded Zipfian rank generator over [0, n): rank 0 is the hottest key and
// popularity falls off as 1/rank^s. With s=0 the draw is uniform; YCSB's
// default skew is s=0.99, where a handful of keys absorb most of the
// traffic. The shard bench uses this to make hot-shard imbalance — the
// failure mode consistent hashing alone does not fix — actually measurable,
// and any workload can plug NextKey() in as a key source.
//
// Uses the Gray et al. rejection-free transform YCSB popularized: O(n) zeta
// precompute at construction, O(1) per draw, fully determined by the seed.
class ZipfianGenerator {
 public:
  // Requires n >= 1 and s in [0, 1); s is clamped just below 1.
  ZipfianGenerator(uint64_t n, double s, uint64_t seed);

  uint64_t Next();  // a rank in [0, n)
  std::string NextKey(const std::string& prefix) {
    return prefix + std::to_string(Next());
  }

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  Random rng_;
  double zetan_ = 0;  // generalized harmonic number H_{n,s}
  double alpha_ = 0;
  double eta_ = 0;
};

}  // namespace dstore

#endif  // DSTORE_UDSM_WORKLOAD_H_
