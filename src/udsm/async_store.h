#ifndef DSTORE_UDSM_ASYNC_STORE_H_
#define DSTORE_UDSM_ASYNC_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/listenable_future.h"
#include "common/thread_pool.h"
#include "store/key_value.h"

namespace dstore {

// The UDSM's asynchronous (nonblocking) interface (paper Section II.A):
// every operation returns immediately with a ListenableFuture; the actual
// data store call runs on a shared thread pool ("the UDSM uses thread pools
// ... which avoids the costly creation of new threads"). Because it wraps
// the common KeyValueStore interface, EVERY registered store gets an async
// interface for free — "even if a data store fails to provide a client
// supporting asynchronous operations".
//
// Callers can block (future.Get()), poll (IsDone), or register callbacks
// (AddListener) — the ListenableFuture pattern the Java UDSM borrows from
// Guava.
class AsyncStore {
 public:
  // Does not take ownership of `pool`; `store` is shared with the caller.
  AsyncStore(std::shared_ptr<KeyValueStore> store, ThreadPool* pool)
      : store_(std::move(store)), pool_(pool) {}

  ListenableFuture<Status> PutAsync(const std::string& key, ValuePtr value) {
    auto store = store_;
    return RunAsync<Status>(pool_, [store, key, value = std::move(value)] {
      return store->Put(key, value);
    });
  }

  ListenableFuture<StatusOr<ValuePtr>> GetAsync(const std::string& key) {
    auto store = store_;
    return RunAsync<StatusOr<ValuePtr>>(pool_,
                                        [store, key] { return store->Get(key); });
  }

  ListenableFuture<Status> DeleteAsync(const std::string& key) {
    auto store = store_;
    return RunAsync<Status>(pool_, [store, key] { return store->Delete(key); });
  }

  ListenableFuture<StatusOr<bool>> ContainsAsync(const std::string& key) {
    auto store = store_;
    return RunAsync<StatusOr<bool>>(
        pool_, [store, key] { return store->Contains(key); });
  }

  ListenableFuture<StatusOr<std::vector<std::string>>> ListKeysAsync() {
    auto store = store_;
    return RunAsync<StatusOr<std::vector<std::string>>>(
        pool_, [store] { return store->ListKeys(); });
  }

  ListenableFuture<StatusOr<size_t>> CountAsync() {
    auto store = store_;
    return RunAsync<StatusOr<size_t>>(pool_,
                                      [store] { return store->Count(); });
  }

  ListenableFuture<Status> ClearAsync() {
    auto store = store_;
    return RunAsync<Status>(pool_, [store] { return store->Clear(); });
  }

  KeyValueStore* store() { return store_.get(); }
  ThreadPool* pool() { return pool_; }

 private:
  std::shared_ptr<KeyValueStore> store_;
  ThreadPool* pool_;
};

}  // namespace dstore

#endif  // DSTORE_UDSM_ASYNC_STORE_H_
