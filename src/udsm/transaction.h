#ifndef DSTORE_UDSM_TRANSACTION_H_
#define DSTORE_UDSM_TRANSACTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "store/key_value.h"

namespace dstore {

// Atomic updates across multiple data stores — the paper's stated future
// work ("providing more coordinated features across multiple data stores
// such as atomic updates and two-phase commits", Section VII) — implemented
// entirely client-side, in keeping with the paper's no-server-changes
// philosophy.
//
// Protocol (a two-phase commit with a client-kept decision journal):
//   1. PREPARE  — every Put is staged under a reserved key in its target
//                 store; a journal record (phase=prepared) in the
//                 coordinator store lists every participant.
//   2. DECIDE   — the journal record is flipped to phase=committing. This
//                 single write is the commit point.
//   3. APPLY    — staged values are promoted to their final keys, deletes
//                 are applied, staging keys are removed.
//   4. FORGET   — the journal record is deleted.
//
// If the client dies at any point, Recover() completes the protocol from
// the journal: transactions that reached phase=committing are rolled
// forward (staged values are still in the stores), earlier ones are rolled
// back. Journal durability is that of the coordinator store, so pick a
// durable one (file store, SQL store).
//
// Not a substitute for a real distributed transaction manager: there are
// no locks, so concurrent writers to the same keys can interleave between
// APPLY steps. What it guarantees is all-or-nothing visibility of the
// transaction's writes once recovery has run.
class MultiStoreTransaction {
 public:
  // `coordinator` holds the journal. `txn_id` must be unique per
  // transaction (e.g. from MakeTransactionId).
  MultiStoreTransaction(std::shared_ptr<KeyValueStore> coordinator,
                        std::string txn_id);
  ~MultiStoreTransaction();

  MultiStoreTransaction(const MultiStoreTransaction&) = delete;
  MultiStoreTransaction& operator=(const MultiStoreTransaction&) = delete;

  // Queues a write of `value` to `key` in `store`. `store_name` identifies
  // the store for recovery (use its UDSM registration name).
  void Put(std::shared_ptr<KeyValueStore> store, std::string store_name,
           std::string key, ValuePtr value);

  // Queues a delete.
  void Delete(std::shared_ptr<KeyValueStore> store, std::string store_name,
              std::string key);

  // Runs the protocol. On error before the commit point, all staging is
  // rolled back and no final key was touched. On error after the commit
  // point, the error is returned but Recover() can complete the
  // transaction. At most one Commit per object.
  Status Commit();

  // Explicitly rolls back a not-yet-committed transaction (removes staged
  // values and the journal record). Called automatically by the destructor
  // if Commit was never attempted.
  Status Abort();

  // Completes in-doubt transactions found in `coordinator`'s journal.
  // `stores` maps store names (as passed to Put/Delete) to live stores.
  // Transactions that reached the commit point are rolled forward; others
  // are rolled back. Unknown store names make recovery fail (nothing is
  // half-applied; re-run with the full map).
  static Status Recover(
      KeyValueStore* coordinator,
      const std::map<std::string, std::shared_ptr<KeyValueStore>>& stores);

  // Journal keys this module reserves (exposed for store housekeeping).
  static bool IsInternalKey(const std::string& key);

 private:
  struct Op {
    std::shared_ptr<KeyValueStore> store;
    std::string store_name;
    std::string key;
    ValuePtr value;  // null = delete
    std::string staged_key;
  };

  enum class Phase : uint8_t { kPrepared = 1, kCommitting = 2 };

  std::string JournalKey() const;
  Bytes EncodeJournal(Phase phase) const;
  Status WriteJournal(Phase phase);
  Status StageAll();
  Status PromoteAll();
  Status UnstageAll();

  std::shared_ptr<KeyValueStore> coordinator_;
  std::string txn_id_;
  std::vector<Op> ops_;
  bool commit_attempted_ = false;
  bool committed_ = false;
};

// Generates a unique transaction id (time + randomness).
std::string MakeTransactionId();

}  // namespace dstore

#endif  // DSTORE_UDSM_TRANSACTION_H_
