#include "udsm/transaction.h"

#include <chrono>
#include <random>

namespace dstore {

namespace {
constexpr char kJournalPrefix[] = "~txnlog!";
constexpr char kStagePrefix[] = "~txnstage!";
}  // namespace

std::string MakeTransactionId() {
  const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  std::random_device rd;
  const uint64_t nonce = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  Bytes id;
  PutFixed64(&id, static_cast<uint64_t>(now));
  PutFixed64(&id, nonce);
  return HexEncode(id);
}

bool MultiStoreTransaction::IsInternalKey(const std::string& key) {
  return key.rfind(kJournalPrefix, 0) == 0 || key.rfind(kStagePrefix, 0) == 0;
}

MultiStoreTransaction::MultiStoreTransaction(
    std::shared_ptr<KeyValueStore> coordinator, std::string txn_id)
    : coordinator_(std::move(coordinator)), txn_id_(std::move(txn_id)) {}

MultiStoreTransaction::~MultiStoreTransaction() {
  if (!commit_attempted_) Abort().ok();
}

void MultiStoreTransaction::Put(std::shared_ptr<KeyValueStore> store,
                                std::string store_name, std::string key,
                                ValuePtr value) {
  Op op;
  op.store = std::move(store);
  op.store_name = std::move(store_name);
  op.staged_key = std::string(kStagePrefix) + txn_id_ + "!" +
                  std::to_string(ops_.size());
  op.key = std::move(key);
  op.value = std::move(value);
  ops_.push_back(std::move(op));
}

void MultiStoreTransaction::Delete(std::shared_ptr<KeyValueStore> store,
                                   std::string store_name, std::string key) {
  Put(std::move(store), std::move(store_name), std::move(key), nullptr);
}

std::string MultiStoreTransaction::JournalKey() const {
  return std::string(kJournalPrefix) + txn_id_;
}

Bytes MultiStoreTransaction::EncodeJournal(Phase phase) const {
  Bytes out;
  out.push_back(static_cast<uint8_t>(phase));
  PutVarint64(&out, ops_.size());
  for (const Op& op : ops_) {
    PutLengthPrefixed(&out, op.store_name);
    PutLengthPrefixed(&out, op.key);
    out.push_back(op.value == nullptr ? 1 : 0);
    PutLengthPrefixed(&out, op.staged_key);
  }
  return out;
}

Status MultiStoreTransaction::WriteJournal(Phase phase) {
  return coordinator_->Put(JournalKey(), MakeValue(EncodeJournal(phase)));
}

Status MultiStoreTransaction::StageAll() {
  for (const Op& op : ops_) {
    if (op.value == nullptr) continue;  // deletes stage nothing
    DSTORE_RETURN_IF_ERROR(op.store->Put(op.staged_key, op.value));
  }
  return Status::OK();
}

Status MultiStoreTransaction::PromoteAll() {
  for (const Op& op : ops_) {
    if (op.value == nullptr) {
      DSTORE_RETURN_IF_ERROR(op.store->Delete(op.key));
    } else {
      DSTORE_RETURN_IF_ERROR(op.store->Put(op.key, op.value));
      DSTORE_RETURN_IF_ERROR(op.store->Delete(op.staged_key));
    }
  }
  return Status::OK();
}

Status MultiStoreTransaction::UnstageAll() {
  Status first_error;
  for (const Op& op : ops_) {
    if (op.value == nullptr) continue;
    const Status status = op.store->Delete(op.staged_key);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

Status MultiStoreTransaction::Commit() {
  if (commit_attempted_) {
    return Status::InvalidArgument("transaction already committed/aborted");
  }
  commit_attempted_ = true;

  // PREPARE: journal first, then stage values.
  DSTORE_RETURN_IF_ERROR(WriteJournal(Phase::kPrepared));
  Status staged = StageAll();
  if (!staged.ok()) {
    UnstageAll().ok();
    coordinator_->Delete(JournalKey()).ok();
    return staged;
  }

  // DECIDE: the commit point.
  DSTORE_RETURN_IF_ERROR(WriteJournal(Phase::kCommitting));
  committed_ = true;

  // APPLY + FORGET. Errors past the commit point leave the journal in
  // place so Recover() can finish the job.
  DSTORE_RETURN_IF_ERROR(PromoteAll());
  return coordinator_->Delete(JournalKey());
}

Status MultiStoreTransaction::Abort() {
  if (committed_) {
    return Status::InvalidArgument("cannot abort a committed transaction");
  }
  commit_attempted_ = true;
  UnstageAll().ok();
  return coordinator_->Delete(JournalKey());
}

Status MultiStoreTransaction::Recover(
    KeyValueStore* coordinator,
    const std::map<std::string, std::shared_ptr<KeyValueStore>>& stores) {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                          coordinator->ListKeys());
  for (const std::string& key : keys) {
    if (key.rfind(kJournalPrefix, 0) != 0) continue;
    DSTORE_ASSIGN_OR_RETURN(ValuePtr record, coordinator->Get(key));
    const Bytes& data = *record;
    if (data.empty()) return Status::Corruption("empty transaction journal");
    const auto phase = static_cast<Phase>(data[0]);
    size_t pos = 1;
    DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(data, &pos));

    struct JournalOp {
      std::shared_ptr<KeyValueStore> store;
      std::string key;
      bool is_delete;
      std::string staged_key;
    };
    std::vector<JournalOp> ops;
    for (uint64_t i = 0; i < count; ++i) {
      DSTORE_ASSIGN_OR_RETURN(Bytes store_name, GetLengthPrefixed(data, &pos));
      DSTORE_ASSIGN_OR_RETURN(Bytes op_key, GetLengthPrefixed(data, &pos));
      if (pos >= data.size()) return Status::Corruption("truncated journal");
      const bool is_delete = data[pos++] != 0;
      DSTORE_ASSIGN_OR_RETURN(Bytes staged_key, GetLengthPrefixed(data, &pos));
      auto it = stores.find(ToString(store_name));
      if (it == stores.end()) {
        return Status::NotFound("recovery needs unknown store: " +
                                ToString(store_name));
      }
      ops.push_back(JournalOp{it->second, ToString(op_key), is_delete,
                              ToString(staged_key)});
    }

    if (phase == Phase::kCommitting) {
      // Roll forward: promote whatever is still staged.
      for (const JournalOp& op : ops) {
        if (op.is_delete) {
          DSTORE_RETURN_IF_ERROR(op.store->Delete(op.key));
          continue;
        }
        auto staged = op.store->Get(op.staged_key);
        if (staged.ok()) {
          DSTORE_RETURN_IF_ERROR(op.store->Put(op.key, *staged));
          DSTORE_RETURN_IF_ERROR(op.store->Delete(op.staged_key));
        }
        // Staged value gone => this op was already promoted pre-crash.
      }
    } else {
      // Roll back: drop any staged values; final keys were never written.
      for (const JournalOp& op : ops) {
        if (!op.is_delete) op.store->Delete(op.staged_key).ok();
      }
    }
    DSTORE_RETURN_IF_ERROR(coordinator->Delete(key));
  }
  return Status::OK();
}

}  // namespace dstore
