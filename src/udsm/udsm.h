#ifndef DSTORE_UDSM_UDSM_H_
#define DSTORE_UDSM_UDSM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/thread_pool.h"
#include "store/key_value.h"
#include "udsm/async_store.h"
#include "udsm/monitor.h"
#include "udsm/workload.h"

namespace dstore {

// The Universal Data Store Manager (paper Section II.A): one object through
// which an application reaches multiple heterogeneous data stores — file
// systems, SQL databases, cloud object stores, caches — all behind the
// common key-value interface, each optionally wrapped with performance
// monitoring, and every one reachable both synchronously and asynchronously.
//
//   Udsm udsm(Udsm::Options{...});
//   udsm.RegisterStore("cloud", std::move(cloud_client));
//   udsm.RegisterStore("file", std::move(file_store));
//   auto* store = udsm.GetStore("cloud");        // sync interface
//   auto async = udsm.GetAsyncStore("cloud");    // nonblocking interface
//   auto* native = udsm.GetNative<SqlClient>("sql");  // native escape hatch
//
// Stores registered here can be freely substituted for one another by name —
// "it is easy for an application to switch from using one data store to
// another".
class Udsm {
 public:
  struct Options {
    // Thread pool size for the asynchronous interface ("users can specify
    // the thread pool size via a configuration parameter").
    size_t async_threads = 8;
    // Wrap every registered store with latency monitoring.
    bool monitor = true;
    // Detailed samples kept per (store, op) by the monitor.
    size_t monitor_recent_window = 1024;
  };

  Udsm();
  explicit Udsm(const Options& options);

  Udsm(const Udsm&) = delete;
  Udsm& operator=(const Udsm&) = delete;

  // Registers `store` under `name`. Re-registering a name replaces the old
  // store (the paper: "designed to allow new clients for the same data
  // store to replace older ones as the clients evolve").
  Status RegisterStore(const std::string& name,
                       std::shared_ptr<KeyValueStore> store);

  Status UnregisterStore(const std::string& name);

  // Synchronous common interface (monitored if Options::monitor).
  // Returns nullptr if `name` is unknown.
  KeyValueStore* GetStore(const std::string& name) const;
  std::shared_ptr<KeyValueStore> GetStoreShared(const std::string& name) const;

  // Asynchronous interface over the same store, backed by the shared pool.
  StatusOr<AsyncStore> GetAsyncStore(const std::string& name) const;

  // Native-interface escape hatch: the underlying client, downcast to its
  // concrete type (e.g. SqlClient to issue SQL). Null if the name is
  // unknown or the type does not match.
  template <typename T>
  T* GetNative(const std::string& name) const {
    MutexLock lock(mu_);
    auto it = stores_.find(name);
    if (it == stores_.end()) return nullptr;
    return dynamic_cast<T*>(it->second.raw.get());
  }

  std::vector<std::string> StoreNames() const;

  PerformanceMonitor* monitor() const { return monitor_.get(); }
  ThreadPool* pool() const { return pool_.get(); }

  // Builds a workload generator sharing no UDSM state (convenience).
  WorkloadGenerator MakeWorkloadGenerator(
      const WorkloadGenerator::Config& config) const {
    return WorkloadGenerator(config);
  }

 private:
  struct Entry {
    std::shared_ptr<KeyValueStore> raw;        // the registered client
    std::shared_ptr<KeyValueStore> monitored;  // raw or monitoring wrapper
  };

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<PerformanceMonitor> monitor_;
  mutable Mutex mu_;
  std::map<std::string, Entry> stores_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_UDSM_UDSM_H_
