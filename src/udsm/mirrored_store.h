#ifndef DSTORE_UDSM_MIRRORED_STORE_H_
#define DSTORE_UDSM_MIRRORED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "store/key_value.h"

namespace dstore {

// Replicates data across several heterogeneous stores behind the common
// key-value interface — the paper's second future-work thread ("techniques
// for providing data consistency between different data stores",
// Section VII) plus its observation that via the common interface "any data
// store can serve as a ... secondary repository for one of the other data
// stores".
//
// Writes fan out to every replica, succeeding according to the write
// concern. Reads try replicas in order and can repair stragglers in the
// background of the read path. CheckConsistency() diffs replica contents by
// value digest; Repair() converges every replica to a chosen source.
class MirroredStore : public KeyValueStore {
 public:
  enum class WriteConcern {
    kAll,     // fail unless every replica acknowledged
    kQuorum,  // majority must acknowledge
    kOne,     // any single acknowledgement suffices
  };

  struct Options {
    WriteConcern write_concern = WriteConcern::kAll;
    // On a read served by a fallback replica, copy the value into replicas
    // that missed it.
    bool read_repair = true;
  };

  struct Divergence {
    std::string key;
    // etag per replica; empty string = key missing from that replica.
    std::vector<std::string> etags;
  };

  struct ConsistencyReport {
    size_t keys_checked = 0;
    std::vector<Divergence> divergent;
    bool consistent() const { return divergent.empty(); }
  };

  // At least one replica. Replica 0 is the preferred read target and the
  // default repair source.
  MirroredStore(std::vector<std::shared_ptr<KeyValueStore>> replicas,
                const Options& options);
  explicit MirroredStore(std::vector<std::shared_ptr<KeyValueStore>> replicas)
      : MirroredStore(std::move(replicas), Options()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override;

  // Compares all replicas key by key (by content digest).
  StatusOr<ConsistencyReport> CheckConsistency();

  // Makes every replica match replica `source_index`: missing/divergent
  // keys are overwritten, keys absent from the source are deleted.
  Status Repair(size_t source_index = 0);

  size_t replica_count() const { return replicas_.size(); }

 private:
  size_t RequiredAcks() const;

  std::vector<std::shared_ptr<KeyValueStore>> replicas_;
  Options options_;
};

}  // namespace dstore

#endif  // DSTORE_UDSM_MIRRORED_STORE_H_
