#ifndef DSTORE_UDSM_MONITOR_H_
#define DSTORE_UDSM_MONITOR_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"
#include "store/key_value.h"

namespace dstore {

// Summary statistics for one (store, operation) pair. Variance is tracked
// with Welford's online algorithm (running mean + sum of squared deviations)
// rather than a raw sum of squares: sum_sq/n - mean^2 cancels
// catastrophically when latencies are large relative to their spread.
struct OpSummary {
  uint64_t count = 0;
  uint64_t errors = 0;
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double mean_ms = 0;  // Welford running mean
  double m2_ms = 0;    // Welford sum of squared deviations from the mean

  // Folds one observation into the summary.
  void Add(double millis) {
    if (count == 0) {
      min_ms = millis;
      max_ms = millis;
    } else {
      if (millis < min_ms) min_ms = millis;
      if (millis > max_ms) max_ms = millis;
    }
    ++count;
    total_ms += millis;
    const double delta = millis - mean_ms;
    mean_ms += delta / static_cast<double>(count);
    m2_ms += delta * (millis - mean_ms);
  }

  double MeanMs() const { return count == 0 ? 0 : mean_ms; }
  // Population variance, matching the historical sum_sq/n - mean^2 value.
  double VarianceMs() const {
    return count < 2 ? 0 : m2_ms / static_cast<double>(count);
  }
  // The raw second moment, for the (unchanged) serialized form.
  double SumSqMs() const {
    return m2_ms + static_cast<double>(count) * mean_ms * mean_ms;
  }
};

// The UDSM's performance monitor (paper Section II.A): per store and per
// operation it keeps (a) running summary statistics over ALL requests and
// (b) a bounded window of detailed recent samples — "the capability to
// collect detailed data for recent requests while only retaining summary
// statistics for older data". Snapshots can be rendered as text or persisted
// into any registered data store.
class PerformanceMonitor {
 public:
  // Keep at most `recent_window` detailed samples per (store, op). Every
  // Record() is additionally published into `registry` as the
  // dstore_op_latency_ms{store=,op=} histogram and the
  // dstore_op_errors_total{store=,op=} counter, so one monitored UDSM
  // lights up the process-wide /metrics pipeline. Pass nullptr to keep the
  // monitor purely local (e.g. hermetic tests).
  explicit PerformanceMonitor(
      size_t recent_window = 1024,
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default())
      : recent_window_(recent_window), registry_(registry) {}

  // Records one operation taking `millis`, successful or not.
  void Record(const std::string& store, const std::string& op, double millis,
              bool ok = true);

  OpSummary Summary(const std::string& store, const std::string& op) const;

  // Detailed latencies of the most recent requests (oldest first).
  std::vector<double> RecentSamples(const std::string& store,
                                    const std::string& op) const;

  // Percentile over the recent window (p in [0,100]); 0 if no samples.
  double RecentPercentileMs(const std::string& store, const std::string& op,
                            double p) const;

  // All (store, op) pairs seen so far.
  std::vector<std::pair<std::string, std::string>> Tracked() const;

  // Human-readable report of every tracked pair.
  std::string Report() const;

  void Reset();

  // Persists all summaries into `store` under `key` (paper: "performance
  // data can be stored persistently using any of the data stores supported
  // by the UDSM"), and restores them later.
  Status SaveTo(KeyValueStore* store, const std::string& key) const;
  Status LoadFrom(KeyValueStore* store, const std::string& key);

 private:
  struct Track {
    OpSummary summary;
    std::deque<double> recent;
    // Registry instruments for this (store, op), fetched once on first
    // Record and reused; null when the monitor has no registry.
    obs::Histogram* latency = nullptr;
    obs::Counter* op_errors = nullptr;
  };

  using TrackKey = std::pair<std::string, std::string>;

  size_t recent_window_;
  obs::MetricsRegistry* registry_;
  mutable Mutex mu_;
  std::map<TrackKey, Track> tracks_ GUARDED_BY(mu_);
};

// KeyValueStore decorator that times every operation into a
// PerformanceMonitor — how the UDSM monitors any store through the common
// interface without per-store code.
class MonitoredStore : public KeyValueStore {
 public:
  MonitoredStore(std::shared_ptr<KeyValueStore> inner,
                 std::shared_ptr<PerformanceMonitor> monitor,
                 const Clock* clock = nullptr)
      : inner_(std::move(inner)),
        monitor_(std::move(monitor)),
        clock_(clock != nullptr ? clock : RealClock::Default()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  StatusOr<ConditionalGetResult> GetIfChanged(const std::string& key,
                                              const std::string& etag) override;
  std::string Name() const override { return inner_->Name(); }

  KeyValueStore* inner() { return inner_.get(); }

 private:
  std::shared_ptr<KeyValueStore> inner_;
  std::shared_ptr<PerformanceMonitor> monitor_;
  const Clock* clock_;
};

}  // namespace dstore

#endif  // DSTORE_UDSM_MONITOR_H_
