#ifndef DSTORE_UDSM_MONITOR_H_
#define DSTORE_UDSM_MONITOR_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "store/key_value.h"

namespace dstore {

// Summary statistics for one (store, operation) pair.
struct OpSummary {
  uint64_t count = 0;
  uint64_t errors = 0;
  double total_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  double sum_sq_ms = 0;  // for variance

  double MeanMs() const { return count == 0 ? 0 : total_ms / count; }
  double VarianceMs() const {
    if (count < 2) return 0;
    const double mean = MeanMs();
    return sum_sq_ms / count - mean * mean;
  }
};

// The UDSM's performance monitor (paper Section II.A): per store and per
// operation it keeps (a) running summary statistics over ALL requests and
// (b) a bounded window of detailed recent samples — "the capability to
// collect detailed data for recent requests while only retaining summary
// statistics for older data". Snapshots can be rendered as text or persisted
// into any registered data store.
class PerformanceMonitor {
 public:
  // Keep at most `recent_window` detailed samples per (store, op).
  explicit PerformanceMonitor(size_t recent_window = 1024)
      : recent_window_(recent_window) {}

  // Records one operation taking `millis`, successful or not.
  void Record(const std::string& store, const std::string& op, double millis,
              bool ok = true);

  OpSummary Summary(const std::string& store, const std::string& op) const;

  // Detailed latencies of the most recent requests (oldest first).
  std::vector<double> RecentSamples(const std::string& store,
                                    const std::string& op) const;

  // Percentile over the recent window (p in [0,100]); 0 if no samples.
  double RecentPercentileMs(const std::string& store, const std::string& op,
                            double p) const;

  // All (store, op) pairs seen so far.
  std::vector<std::pair<std::string, std::string>> Tracked() const;

  // Human-readable report of every tracked pair.
  std::string Report() const;

  void Reset();

  // Persists all summaries into `store` under `key` (paper: "performance
  // data can be stored persistently using any of the data stores supported
  // by the UDSM"), and restores them later.
  Status SaveTo(KeyValueStore* store, const std::string& key) const;
  Status LoadFrom(KeyValueStore* store, const std::string& key);

 private:
  struct Track {
    OpSummary summary;
    std::deque<double> recent;
  };

  using TrackKey = std::pair<std::string, std::string>;

  size_t recent_window_;
  mutable std::mutex mu_;
  std::map<TrackKey, Track> tracks_;
};

// KeyValueStore decorator that times every operation into a
// PerformanceMonitor — how the UDSM monitors any store through the common
// interface without per-store code.
class MonitoredStore : public KeyValueStore {
 public:
  MonitoredStore(std::shared_ptr<KeyValueStore> inner,
                 std::shared_ptr<PerformanceMonitor> monitor,
                 const Clock* clock = nullptr)
      : inner_(std::move(inner)),
        monitor_(std::move(monitor)),
        clock_(clock != nullptr ? clock : RealClock::Default()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  StatusOr<ConditionalGetResult> GetIfChanged(const std::string& key,
                                              const std::string& etag) override;
  std::string Name() const override { return inner_->Name(); }

  KeyValueStore* inner() { return inner_.get(); }

 private:
  std::shared_ptr<KeyValueStore> inner_;
  std::shared_ptr<PerformanceMonitor> monitor_;
  const Clock* clock_;
};

}  // namespace dstore

#endif  // DSTORE_UDSM_MONITOR_H_
