#ifndef DSTORE_DELTA_ROLLING_HASH_H_
#define DSTORE_DELTA_ROLLING_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dstore {

// Rabin-Karp polynomial rolling hash over a fixed-size window. The hash for
// the window starting at i+1 is computed in O(1) from the hash at i, which is
// what makes the delta encoder's "hash every subarray of length WINDOW_SIZE"
// step linear (paper Section IV).
//
// H(b[i..i+w)) = sum_{k} b[i+k] * kBase^(w-1-k)  (mod 2^64)
class RollingHash {
 public:
  explicit RollingHash(size_t window_size);

  size_t window_size() const { return window_size_; }

  // Hash of the full window starting at `data`.
  uint64_t Hash(const uint8_t* data) const;

  // Given hash over b[i..i+w), returns hash over b[i+1..i+w+1):
  // `out_byte` is b[i], `in_byte` is b[i+w].
  uint64_t Roll(uint64_t hash, uint8_t out_byte, uint8_t in_byte) const;

 private:
  static constexpr uint64_t kBase = 1000000007ULL;

  size_t window_size_;
  uint64_t top_power_;  // kBase^(window_size-1)
};

}  // namespace dstore

#endif  // DSTORE_DELTA_ROLLING_HASH_H_
