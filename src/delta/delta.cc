#include "delta/delta.h"

#include <unordered_map>

#include "delta/rolling_hash.h"

namespace dstore {

namespace {

constexpr uint8_t kDeltaMagic = 0xd1;
constexpr uint8_t kOpCopy = 0x00;
constexpr uint8_t kOpAdd = 0x01;

void EmitAdd(Bytes* out, const Bytes& literal, DeltaStats* stats) {
  if (literal.empty()) return;
  out->push_back(kOpAdd);
  PutLengthPrefixed(out, literal);
  if (stats != nullptr) {
    ++stats->add_ops;
    stats->added_bytes += literal.size();
  }
}

void EmitCopy(Bytes* out, size_t offset, size_t length, DeltaStats* stats) {
  out->push_back(kOpCopy);
  PutVarint64(out, offset);
  PutVarint64(out, length);
  if (stats != nullptr) {
    ++stats->copy_ops;
    stats->copied_bytes += length;
  }
}

}  // namespace

Bytes EncodeDelta(const Bytes& base, const Bytes& target,
                  const DeltaOptions& options, DeltaStats* stats) {
  if (stats != nullptr) *stats = DeltaStats{};
  Bytes out;
  out.push_back(kDeltaMagic);

  const size_t w = options.window_size < 2 ? 2 : options.window_size;
  if (base.size() < w || target.size() < w) {
    EmitAdd(&out, target, stats);
    return out;
  }

  // Index windows of the base by rolling hash (every stride-th position).
  const size_t stride = options.index_stride == 0 ? 1 : options.index_stride;
  RollingHash hasher(w);
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  index.reserve(base.size() / stride + 1);
  {
    uint64_t h = hasher.Hash(base.data());
    for (size_t i = 0;; ++i) {
      if (i % stride == 0) {
        auto& bucket = index[h];
        if (bucket.size() < options.max_candidates_per_bucket) {
          bucket.push_back(static_cast<uint32_t>(i));
        }
      }
      if (i + w >= base.size()) break;
      h = hasher.Roll(h, base[i], base[i + w]);
    }
  }

  Bytes pending;  // literal bytes not yet emitted
  size_t pos = 0;
  uint64_t h = hasher.Hash(target.data());
  bool hash_valid = true;

  while (pos < target.size()) {
    size_t best_len = 0;
    size_t best_off = 0;
    if (hash_valid && pos + w <= target.size()) {
      auto it = index.find(h);
      if (it != index.end()) {
        for (uint32_t cand : it->second) {
          // Verify the candidate (hashes can collide), then extend forward.
          const size_t max_len =
              std::min(base.size() - cand, target.size() - pos);
          if (max_len < w) continue;
          size_t len = 0;
          while (len < max_len && base[cand + len] == target[pos + len]) {
            ++len;
          }
          if (len >= w && len > best_len) {
            best_len = len;
            best_off = cand;
          }
        }
      }
    }

    if (best_len > 0) {
      // Extend the match backward into pending literals when possible. The
      // extension lengthens the COPY with bytes that were already consumed
      // from the target (they sit in `pending`), so the scan position must
      // advance by the *forward* length only.
      const size_t forward_len = best_len;
      while (!pending.empty() && best_off > 0 &&
             base[best_off - 1] == pending.back()) {
        --best_off;
        ++best_len;
        pending.pop_back();
      }
      EmitAdd(&out, pending, stats);
      pending.clear();
      EmitCopy(&out, best_off, best_len, stats);
      pos += forward_len;
      if (pos + w <= target.size()) {
        h = hasher.Hash(target.data() + pos);
        hash_valid = true;
      } else {
        hash_valid = false;
      }
    } else {
      pending.push_back(target[pos]);
      if (pos + w < target.size()) {
        h = hasher.Roll(h, target[pos], target[pos + w]);
      } else {
        hash_valid = false;
      }
      ++pos;
    }
  }
  EmitAdd(&out, pending, stats);
  return out;
}

StatusOr<std::vector<DeltaOp>> ParseDelta(const Bytes& delta) {
  if (delta.empty() || delta[0] != kDeltaMagic) {
    return Status::Corruption("bad delta magic");
  }
  std::vector<DeltaOp> ops;
  size_t pos = 1;
  while (pos < delta.size()) {
    const uint8_t tag = delta[pos++];
    if (tag == kOpCopy) {
      DeltaOp op;
      op.is_copy = true;
      DSTORE_ASSIGN_OR_RETURN(op.offset, GetVarint64(delta, &pos));
      DSTORE_ASSIGN_OR_RETURN(op.length, GetVarint64(delta, &pos));
      ops.push_back(std::move(op));
    } else if (tag == kOpAdd) {
      DeltaOp op;
      op.is_copy = false;
      op.offset = 0;
      op.length = 0;
      DSTORE_ASSIGN_OR_RETURN(op.literal, GetLengthPrefixed(delta, &pos));
      ops.push_back(std::move(op));
    } else {
      return Status::Corruption("unknown delta op tag");
    }
  }
  return ops;
}

StatusOr<Bytes> ApplyDelta(const Bytes& base, const Bytes& delta) {
  DSTORE_ASSIGN_OR_RETURN(std::vector<DeltaOp> ops, ParseDelta(delta));
  Bytes out;
  for (const DeltaOp& op : ops) {
    if (op.is_copy) {
      if (op.offset + op.length > base.size()) {
        return Status::Corruption("delta copy op exceeds base size");
      }
      out.insert(out.end(),
                 base.begin() + static_cast<ptrdiff_t>(op.offset),
                 base.begin() + static_cast<ptrdiff_t>(op.offset + op.length));
    } else {
      out.insert(out.end(), op.literal.begin(), op.literal.end());
    }
  }
  return out;
}

}  // namespace dstore
