#ifndef DSTORE_DELTA_DELTA_H_
#define DSTORE_DELTA_DELTA_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dstore {

// Delta encoding (paper Section IV): when a client updates object o1, it can
// send the server a delta against the previous version instead of the whole
// object. The encoder hashes every WINDOW_SIZE-byte subarray of the base with
// a Rabin-Karp rolling hash; matches of at least WINDOW_SIZE bytes are
// extended to maximal length and emitted as COPY ops, everything else as ADD
// ops — the Fig. 8 "(0,5) [9,7] (7,6)" scheme generalized to byte arrays.

struct DeltaOptions {
  // Minimum match length. "Matching substrings should have a minimum length,
  // WINDOW_SIZE (e.g. 5)" — shorter matches cost more to encode than raw
  // bytes (paper Section IV).
  size_t window_size = 5;
  // Cap on base positions examined per hash bucket (guards degenerate
  // inputs, e.g. a base that is one repeated byte).
  size_t max_candidates_per_bucket = 16;
  // Index every `index_stride`-th base position instead of all of them:
  // encoding gets ~stride× faster and the index ~stride× smaller, at the
  // cost of missing matches shorter than window_size + stride - 1.
  size_t index_stride = 1;
};

struct DeltaStats {
  size_t copy_ops = 0;
  size_t add_ops = 0;
  size_t copied_bytes = 0;  // bytes reused from the base
  size_t added_bytes = 0;   // literal bytes carried in the delta
};

// Computes a delta such that ApplyDelta(base, delta) == target. Always
// succeeds; if base and target share nothing, the delta degenerates to one
// ADD of the whole target. `stats`, if non-null, receives op counts.
Bytes EncodeDelta(const Bytes& base, const Bytes& target,
                  const DeltaOptions& options = {},
                  DeltaStats* stats = nullptr);

// Reconstructs the target from the base and a delta produced by EncodeDelta.
StatusOr<Bytes> ApplyDelta(const Bytes& base, const Bytes& delta);

// Parsed form of a delta, exposed for tests and tooling.
struct DeltaOp {
  bool is_copy;
  uint64_t offset;  // copy: offset into base
  uint64_t length;  // copy: byte count
  Bytes literal;    // add: bytes to append
};

StatusOr<std::vector<DeltaOp>> ParseDelta(const Bytes& delta);

}  // namespace dstore

#endif  // DSTORE_DELTA_DELTA_H_
