#include "delta/rolling_hash.h"

namespace dstore {

RollingHash::RollingHash(size_t window_size) : window_size_(window_size) {
  top_power_ = 1;
  for (size_t i = 1; i < window_size_; ++i) top_power_ *= kBase;
}

uint64_t RollingHash::Hash(const uint8_t* data) const {
  uint64_t h = 0;
  for (size_t i = 0; i < window_size_; ++i) {
    h = h * kBase + data[i];
  }
  return h;
}

uint64_t RollingHash::Roll(uint64_t hash, uint8_t out_byte,
                           uint8_t in_byte) const {
  return (hash - out_byte * top_power_) * kBase + in_byte;
}

}  // namespace dstore
