#include "dscl/dscl.h"

namespace dstore {

namespace {
Status NoCache() { return Status::NotSupported("Dscl built without a cache"); }
Status NoCipher() {
  return Status::NotSupported("Dscl built without a cipher");
}
Status NoCodec() { return Status::NotSupported("Dscl built without a codec"); }
}  // namespace

Status Dscl::CachePut(const std::string& key, ValuePtr value,
                      int64_t ttl_nanos, const std::string& etag) {
  if (cache_ == nullptr) return NoCache();
  return cache_->PutWithTtl(key, std::move(value), ttl_nanos, etag);
}

StatusOr<ValuePtr> Dscl::CacheGet(const std::string& key) {
  if (cache_ == nullptr) return NoCache();
  return cache_->Get(key);
}

StatusOr<ExpiringCache::Entry> Dscl::CacheGetEntry(const std::string& key) {
  if (cache_ == nullptr) return NoCache();
  return cache_->GetEntry(key);
}

Status Dscl::CacheDelete(const std::string& key) {
  if (cache_ == nullptr) return NoCache();
  return cache_->Delete(key);
}

Status Dscl::CacheRevalidate(const std::string& key, int64_t ttl_nanos) {
  if (cache_ == nullptr) return NoCache();
  return cache_->Touch(key, ttl_nanos);
}

CacheStats Dscl::GetCacheStats() const {
  return cache_ == nullptr ? CacheStats{} : cache_->Stats();
}

StatusOr<Bytes> Dscl::Encrypt(const Bytes& plaintext) {
  if (cipher_ == nullptr) return NoCipher();
  return cipher_->Encrypt(plaintext);
}

StatusOr<Bytes> Dscl::Decrypt(const Bytes& ciphertext) {
  if (cipher_ == nullptr) return NoCipher();
  return cipher_->Decrypt(ciphertext);
}

StatusOr<Bytes> Dscl::Compress(const Bytes& input) {
  if (codec_ == nullptr) return NoCodec();
  return codec_->Compress(input);
}

StatusOr<Bytes> Dscl::Decompress(const Bytes& input) {
  if (codec_ == nullptr) return NoCodec();
  return codec_->Decompress(input);
}

Bytes Dscl::EncodeObjectDelta(const Bytes& base, const Bytes& target,
                              DeltaStats* stats) {
  return EncodeDelta(base, target, delta_options_, stats);
}

StatusOr<Bytes> Dscl::ApplyObjectDelta(const Bytes& base, const Bytes& delta) {
  return ApplyDelta(base, delta);
}

DsclBuilder& DsclBuilder::WithCache(std::unique_ptr<Cache> cache,
                                    const Clock* clock) {
  cache_ = std::make_shared<ExpiringCache>(
      std::move(cache), clock != nullptr ? clock : RealClock::Default());
  return *this;
}

DsclBuilder& DsclBuilder::WithCipher(std::unique_ptr<Cipher> cipher) {
  cipher_ = std::move(cipher);
  return *this;
}

DsclBuilder& DsclBuilder::WithCodec(std::unique_ptr<Codec> codec) {
  codec_ = std::move(codec);
  return *this;
}

DsclBuilder& DsclBuilder::WithDeltaOptions(const DeltaOptions& options) {
  delta_options_ = options;
  return *this;
}

std::unique_ptr<Dscl> DsclBuilder::Build() {
  auto dscl = std::unique_ptr<Dscl>(new Dscl());
  dscl->cache_ = std::move(cache_);
  dscl->cipher_ = std::move(cipher_);
  dscl->codec_ = std::move(codec_);
  dscl->delta_options_ = delta_options_;
  return dscl;
}

}  // namespace dstore
