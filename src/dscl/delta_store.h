#ifndef DSTORE_DSCL_DELTA_STORE_H_
#define DSTORE_DSCL_DELTA_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/sync.h"
#include "delta/delta.h"
#include "store/key_value.h"

namespace dstore {

// Client-managed delta encoding over a server with NO delta support (paper
// Section IV): "The client communicates an update to the server by storing
// a delta at the server with an appropriate name. After some number of
// deltas have been sent to the server, the client will send a complete
// object ... If a delta encoded object needs to be read from the server,
// the base object and all deltas will have to be retrieved."
//
// Layout in the underlying store, for a logical key K:
//   K            -> metadata: varint chain length N
//   K@base       -> full base object
//   K@delta.1..N -> successive deltas
//
// Writes send only the delta when it is small enough (relative to
// Options::delta_threshold) and the chain is shorter than
// Options::max_chain_length; otherwise the full object is written and the
// chain collapsed. Transfer accounting (logical vs actual bytes) backs the
// delta-encoding benchmark.
class DeltaStore : public KeyValueStore {
 public:
  struct Options {
    // Collapse the chain after this many deltas (reads must fetch base +
    // every delta, so long chains make reads expensive).
    size_t max_chain_length = 8;
    // Send a delta only if it is smaller than threshold * full size.
    double delta_threshold = 0.5;
    DeltaOptions delta;
  };

  struct TransferStats {
    uint64_t logical_put_bytes = 0;  // sum of full object sizes written
    uint64_t actual_put_bytes = 0;   // bytes actually sent (delta or full)
    uint64_t delta_puts = 0;
    uint64_t full_puts = 0;
    uint64_t chain_collapses = 0;
  };

  DeltaStore(std::shared_ptr<KeyValueStore> base, const Options& options);
  explicit DeltaStore(std::shared_ptr<KeyValueStore> base)
      : DeltaStore(std::move(base), Options()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return base_->Name() + "+delta"; }

  TransferStats GetTransferStats() const;

 private:
  static std::string BaseKey(const std::string& key) { return key + "@base"; }
  static std::string DeltaKey(const std::string& key, size_t index) {
    return key + "@delta." + std::to_string(index);
  }

  // Reconstructs the current value (base + deltas).
  StatusOr<Bytes> Reconstruct(const std::string& key, uint64_t chain_length)
      REQUIRES(mu_);
  // Writes a full object and deletes any delta chain.
  Status PutFull(const std::string& key, const Bytes& value,
                 uint64_t old_chain_length) REQUIRES(mu_);

  std::shared_ptr<KeyValueStore> base_;
  Options options_;

  mutable Mutex mu_;
  // Client-side memory of each key's current full value, so deltas can be
  // computed without a read-back from the server.
  std::unordered_map<std::string, Bytes> last_value_ GUARDED_BY(mu_);
  TransferStats stats_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_DSCL_DELTA_STORE_H_
