#ifndef DSTORE_DSCL_TRANSFORMER_H_
#define DSTORE_DSCL_TRANSFORMER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "compress/codec.h"
#include "crypto/cipher.h"

namespace dstore {

// A reversible byte transformation applied to values on their way to a data
// store (and reversed on the way back). Compression and encryption — the
// DSCL's two value-pipeline features — are both transformers, so a client
// can compose them ("the DSCL compression capabilities can also be used to
// reduce the size of cached objects ... data should often be encrypted
// before it is cached", paper Section III).
class ValueTransformer {
 public:
  virtual ~ValueTransformer() = default;

  // Encoding direction (e.g. compress, encrypt).
  virtual StatusOr<Bytes> Apply(const Bytes& input) = 0;
  // Decoding direction (e.g. decompress, decrypt).
  virtual StatusOr<Bytes> Reverse(const Bytes& input) = 0;

  virtual std::string name() const = 0;
};

// Compression as a transformer.
class CompressionTransformer : public ValueTransformer {
 public:
  explicit CompressionTransformer(std::unique_ptr<Codec> codec)
      : codec_(std::move(codec)) {}

  StatusOr<Bytes> Apply(const Bytes& input) override {
    return codec_->Compress(input);
  }
  StatusOr<Bytes> Reverse(const Bytes& input) override {
    return codec_->Decompress(input);
  }
  std::string name() const override { return codec_->name(); }

 private:
  std::unique_ptr<Codec> codec_;
};

// Encryption as a transformer.
class EncryptionTransformer : public ValueTransformer {
 public:
  explicit EncryptionTransformer(std::unique_ptr<Cipher> cipher)
      : cipher_(std::move(cipher)) {}

  StatusOr<Bytes> Apply(const Bytes& input) override {
    return cipher_->Encrypt(input);
  }
  StatusOr<Bytes> Reverse(const Bytes& input) override {
    return cipher_->Decrypt(input);
  }
  std::string name() const override { return cipher_->name(); }

 private:
  std::unique_ptr<Cipher> cipher_;
};

// Ordered pipeline of transformers. Apply runs front to back; Reverse runs
// back to front. The canonical order is compress-then-encrypt: ciphertext
// is incompressible, so the opposite order wastes the codec.
class TransformChain {
 public:
  TransformChain() = default;

  void Add(std::unique_ptr<ValueTransformer> transformer) {
    transformers_.push_back(std::move(transformer));
  }

  bool empty() const { return transformers_.empty(); }
  size_t size() const { return transformers_.size(); }

  StatusOr<Bytes> Apply(const Bytes& input) const {
    Bytes current = input;
    for (const auto& transformer : transformers_) {
      DSTORE_ASSIGN_OR_RETURN(current, transformer->Apply(current));
    }
    return current;
  }

  StatusOr<Bytes> Reverse(const Bytes& input) const {
    Bytes current = input;
    for (auto it = transformers_.rbegin(); it != transformers_.rend(); ++it) {
      DSTORE_ASSIGN_OR_RETURN(current, (*it)->Reverse(current));
    }
    return current;
  }

  // "gzip+aes-cbc" style description.
  std::string Describe() const {
    std::string out;
    for (const auto& transformer : transformers_) {
      if (!out.empty()) out += "+";
      out += transformer->name();
    }
    return out.empty() ? "none" : out;
  }

 private:
  std::vector<std::unique_ptr<ValueTransformer>> transformers_;
};

// Convenience factory: the standard compress-then-encrypt chain. Either
// piece may be null to skip it.
StatusOr<std::shared_ptr<TransformChain>> MakeStandardChain(
    std::unique_ptr<Codec> codec, std::unique_ptr<Cipher> cipher);

}  // namespace dstore

#endif  // DSTORE_DSCL_TRANSFORMER_H_
