#ifndef DSTORE_DSCL_INVALIDATION_H_
#define DSTORE_DSCL_INVALIDATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cache/cache.h"
#include "common/sync.h"
#include "store/key_value.h"

namespace dstore {

// Stronger cache consistency — the use case the paper calls "most
// compelling" for its in-progress consistency work (Section VII). When
// several enhanced clients cache the same backing store, a write through
// one client must invalidate the others' cached copies; otherwise they
// serve stale data until their TTLs expire.
//
// InvalidationBus is a process-wide publish/subscribe channel for key
// invalidations. InvalidatingStore publishes every mutation of a shared
// store onto a bus; SubscribeCache wires a bus to any Cache so published
// keys are evicted. Cross-process propagation would ride the remote-cache
// protocol; within one process this gives read-your-writes across clients
// sharing a bus.
class InvalidationBus {
 public:
  using Callback = std::function<void(const std::string& key)>;
  using Subscription = uint64_t;

  // Registers `callback`, invoked synchronously on every Publish.
  Subscription Subscribe(Callback callback);
  void Unsubscribe(Subscription subscription);

  // Notifies all subscribers that `key` changed (or was deleted).
  void Publish(const std::string& key);

  size_t subscriber_count() const;

 private:
  mutable Mutex mu_;
  std::map<Subscription, Callback> subscribers_ GUARDED_BY(mu_);
  Subscription next_id_ GUARDED_BY(mu_) = 1;
};

// Evicts `cache` entries for every key published on `bus`. Returns a guard;
// destroying it unsubscribes. `cache` must outlive the guard.
class CacheInvalidationSubscription {
 public:
  CacheInvalidationSubscription(std::shared_ptr<InvalidationBus> bus,
                                Cache* cache);
  ~CacheInvalidationSubscription();

  CacheInvalidationSubscription(const CacheInvalidationSubscription&) = delete;
  CacheInvalidationSubscription& operator=(
      const CacheInvalidationSubscription&) = delete;

 private:
  std::shared_ptr<InvalidationBus> bus_;
  InvalidationBus::Subscription subscription_;
};

// KeyValueStore decorator that publishes every Put/Delete/Clear on a bus.
// Wrap the SHARED base store with this once, then hand the wrapped store to
// each enhanced client.
class InvalidatingStore : public KeyValueStore {
 public:
  InvalidatingStore(std::shared_ptr<KeyValueStore> inner,
                    std::shared_ptr<InvalidationBus> bus)
      : inner_(std::move(inner)), bus_(std::move(bus)) {}

  Status Put(const std::string& key, ValuePtr value) override {
    DSTORE_RETURN_IF_ERROR(inner_->Put(key, std::move(value)));
    bus_->Publish(key);
    return Status::OK();
  }

  StatusOr<ValuePtr> Get(const std::string& key) override {
    return inner_->Get(key);
  }

  Status Delete(const std::string& key) override {
    DSTORE_RETURN_IF_ERROR(inner_->Delete(key));
    bus_->Publish(key);
    return Status::OK();
  }

  StatusOr<bool> Contains(const std::string& key) override {
    return inner_->Contains(key);
  }
  StatusOr<std::vector<std::string>> ListKeys() override {
    return inner_->ListKeys();
  }
  StatusOr<size_t> Count() override { return inner_->Count(); }

  Status Clear() override {
    DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, inner_->ListKeys());
    DSTORE_RETURN_IF_ERROR(inner_->Clear());
    for (const std::string& key : keys) bus_->Publish(key);
    return Status::OK();
  }

  StatusOr<ConditionalGetResult> GetIfChanged(
      const std::string& key, const std::string& etag) override {
    return inner_->GetIfChanged(key, etag);
  }

  std::string Name() const override { return inner_->Name() + "+inval"; }

  InvalidationBus* bus() { return bus_.get(); }

 private:
  std::shared_ptr<KeyValueStore> inner_;
  std::shared_ptr<InvalidationBus> bus_;
};

}  // namespace dstore

#endif  // DSTORE_DSCL_INVALIDATION_H_
