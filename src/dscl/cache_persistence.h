#ifndef DSTORE_DSCL_CACHE_PERSISTENCE_H_
#define DSTORE_DSCL_CACHE_PERSISTENCE_H_

#include <string>

#include "cache/cache.h"
#include "common/status.h"
#include "store/key_value.h"

namespace dstore {

// Cache warm-state persistence (paper Section III): "it is also often
// desirable to store some data from a cache persistently before shutting
// down a cache process. That way, when the cache is restarted, it can
// quickly be brought to a warm state by reading in the data previously
// stored persistently."
//
// SaveCacheToStore serializes up to `max_entries` cached entries into a
// single value in any KeyValueStore (a durable one, presumably);
// LoadCacheFromStore repopulates a cache from such a snapshot. The snapshot
// is a point-in-time copy; entries evicted or changed afterwards are not
// tracked.

// `max_entries` == 0 means all entries.
Status SaveCacheToStore(Cache* cache, KeyValueStore* store,
                        const std::string& snapshot_key,
                        size_t max_entries = 0);

// Returns the number of entries loaded into `cache`.
StatusOr<size_t> LoadCacheFromStore(Cache* cache, KeyValueStore* store,
                                    const std::string& snapshot_key);

}  // namespace dstore

#endif  // DSTORE_DSCL_CACHE_PERSISTENCE_H_
