#ifndef DSTORE_DSCL_DSCL_H_
#define DSTORE_DSCL_DSCL_H_

#include <memory>
#include <string>

#include "cache/expiring_cache.h"
#include "common/clock.h"
#include "compress/codec.h"
#include "crypto/cipher.h"
#include "delta/delta.h"
#include "dscl/enhanced_store.h"
#include "dscl/transformer.h"
#include "store/key_value.h"

namespace dstore {

// The Data Store Client Library facade — the paper's *second* (loosely
// coupled) integration approach: "provide the DSCL to users and allow them
// to implement their own customized caching solutions using the DSCL API"
// (Section III). The application makes explicit calls for caching,
// encryption, compression, and delta encoding, independent of any data
// store; nothing here touches a server.
//
// Build one with DsclBuilder, plugging in whichever cache / cipher / codec
// implementations the application wants (the modular architecture of
// Fig. 2/4). The same components can instead be wired into an EnhancedStore
// for the tightly integrated approach — and combining both, as the paper
// recommends, means wrapping the store *and* keeping a Dscl handle for
// fine-grained control.
class Dscl {
 public:
  // --- Cache operations (expiration managed here, not by the cache). ---
  Status CachePut(const std::string& key, ValuePtr value,
                  int64_t ttl_nanos = 0, const std::string& etag = "");
  // Fresh value or kExpired / kNotFound.
  StatusOr<ValuePtr> CacheGet(const std::string& key);
  // Stale-tolerant read: also returns expired entries with their etag.
  StatusOr<ExpiringCache::Entry> CacheGetEntry(const std::string& key);
  Status CacheDelete(const std::string& key);
  Status CacheRevalidate(const std::string& key, int64_t ttl_nanos);
  CacheStats GetCacheStats() const;

  // --- Encryption. ---
  StatusOr<Bytes> Encrypt(const Bytes& plaintext);
  StatusOr<Bytes> Decrypt(const Bytes& ciphertext);

  // --- Compression. ---
  StatusOr<Bytes> Compress(const Bytes& input);
  StatusOr<Bytes> Decompress(const Bytes& input);

  // --- Delta encoding. ---
  Bytes EncodeObjectDelta(const Bytes& base, const Bytes& target,
                          DeltaStats* stats = nullptr);
  StatusOr<Bytes> ApplyObjectDelta(const Bytes& base, const Bytes& delta);

  // Component access for advanced callers.
  ExpiringCache* cache() { return cache_.get(); }
  Cipher* cipher() { return cipher_.get(); }
  Codec* codec() { return codec_.get(); }

 private:
  friend class DsclBuilder;
  Dscl() = default;

  std::shared_ptr<ExpiringCache> cache_;
  std::unique_ptr<Cipher> cipher_;
  std::unique_ptr<Codec> codec_;
  DeltaOptions delta_options_;
};

// Assembles a Dscl from pluggable parts. Every part is optional; using an
// omitted feature returns NotSupported.
class DsclBuilder {
 public:
  DsclBuilder& WithCache(std::unique_ptr<Cache> cache,
                         const Clock* clock = nullptr);
  DsclBuilder& WithCipher(std::unique_ptr<Cipher> cipher);
  DsclBuilder& WithCodec(std::unique_ptr<Codec> codec);
  DsclBuilder& WithDeltaOptions(const DeltaOptions& options);

  std::unique_ptr<Dscl> Build();

 private:
  std::shared_ptr<ExpiringCache> cache_;
  std::unique_ptr<Cipher> cipher_;
  std::unique_ptr<Codec> codec_;
  DeltaOptions delta_options_;
};

}  // namespace dstore

#endif  // DSTORE_DSCL_DSCL_H_
