#include "dscl/cache_persistence.h"

#include <utility>

#include "fault/fault.h"

namespace dstore {

namespace {
constexpr uint8_t kSnapshotVersion = 1;
}  // namespace

Status SaveCacheToStore(Cache* cache, KeyValueStore* store,
                        const std::string& snapshot_key, size_t max_entries) {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, cache->Keys());
  if (max_entries > 0 && keys.size() > max_entries) {
    keys.resize(max_entries);
  }

  Bytes out;
  out.push_back(kSnapshotVersion);
  size_t written = 0;
  Bytes body;
  for (const std::string& key : keys) {
    auto value = cache->Get(key);
    if (!value.ok()) continue;  // evicted or expired since enumeration
    PutLengthPrefixed(&body, key);
    PutLengthPrefixed(&body, **value);
    ++written;
  }
  PutVarint64(&out, written);
  out.insert(out.end(), body.begin(), body.end());
  if (fault::CrashPointFires("cache.snapshot.torn_save")) {
    // Crash mid-save: half the snapshot reaches the store. A later load
    // must reject it without polluting the cache.
    out.resize(out.size() / 2);
    store->Put(snapshot_key, MakeValue(std::move(out))).ok();
    return fault::CrashedStatus("cache.snapshot.torn_save");
  }
  return store->Put(snapshot_key, MakeValue(std::move(out)));
}

StatusOr<size_t> LoadCacheFromStore(Cache* cache, KeyValueStore* store,
                                    const std::string& snapshot_key) {
  DSTORE_ASSIGN_OR_RETURN(ValuePtr snapshot, store->Get(snapshot_key));
  const Bytes& data = *snapshot;
  if (data.empty() || data[0] != kSnapshotVersion) {
    return Status::Corruption("bad cache snapshot header");
  }
  size_t pos = 1;
  DSTORE_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(data, &pos));
  // Decode the whole snapshot before touching the cache so a truncated or
  // corrupt snapshot (e.g. a torn save) fails atomically instead of leaving
  // a partially loaded cache behind.
  std::vector<std::pair<std::string, ValuePtr>> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DSTORE_ASSIGN_OR_RETURN(Bytes key, GetLengthPrefixed(data, &pos));
    DSTORE_ASSIGN_OR_RETURN(Bytes value, GetLengthPrefixed(data, &pos));
    entries.emplace_back(ToString(key), MakeValue(std::move(value)));
  }
  size_t loaded = 0;
  for (auto& [key, value] : entries) {
    DSTORE_RETURN_IF_ERROR(cache->Put(key, std::move(value)));
    ++loaded;
  }
  return loaded;
}

}  // namespace dstore
