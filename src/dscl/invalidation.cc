#include "dscl/invalidation.h"

#include <vector>

namespace dstore {

InvalidationBus::Subscription InvalidationBus::Subscribe(Callback callback) {
  MutexLock lock(mu_);
  const Subscription id = next_id_++;
  subscribers_.emplace(id, std::move(callback));
  return id;
}

void InvalidationBus::Unsubscribe(Subscription subscription) {
  MutexLock lock(mu_);
  subscribers_.erase(subscription);
}

void InvalidationBus::Publish(const std::string& key) {
  // Copy callbacks out so a subscriber can (un)subscribe from its callback
  // without deadlocking.
  std::vector<Callback> callbacks;
  {
    MutexLock lock(mu_);
    callbacks.reserve(subscribers_.size());
    for (const auto& [id, callback] : subscribers_) {
      callbacks.push_back(callback);
    }
  }
  for (const auto& callback : callbacks) callback(key);
}

size_t InvalidationBus::subscriber_count() const {
  MutexLock lock(mu_);
  return subscribers_.size();
}

CacheInvalidationSubscription::CacheInvalidationSubscription(
    std::shared_ptr<InvalidationBus> bus, Cache* cache)
    : bus_(std::move(bus)) {
  subscription_ = bus_->Subscribe(
      [cache](const std::string& key) { cache->Delete(key).ok(); });
}

CacheInvalidationSubscription::~CacheInvalidationSubscription() {
  bus_->Unsubscribe(subscription_);
}

}  // namespace dstore
