#ifndef DSTORE_DSCL_TIERED_STORE_H_
#define DSTORE_DSCL_TIERED_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "store/key_value.h"

namespace dstore {

// The paper's *third* caching approach (Section III): because every data
// store implements the common key-value interface, "any data store supported
// by the UDSM can function as a cache or secondary repository for another
// data store". TieredStore composes two KeyValueStores: reads try `front`
// first and fall back to `back`, populating `front` on a miss; writes go to
// both (write-through) or invalidate `front`.
//
// Unlike EnhancedStore this deliberately has no expiration management — the
// paper notes the UDSM-level approach "lacks some of the caching features
// provided by the DSCL such as expiration time management".
class TieredStore : public KeyValueStore {
 public:
  enum class WritePolicy { kWriteThrough, kInvalidate };

  struct Stats {
    uint64_t front_hits = 0;
    uint64_t front_misses = 0;
  };

  TieredStore(std::shared_ptr<KeyValueStore> front,
              std::shared_ptr<KeyValueStore> back,
              WritePolicy policy = WritePolicy::kWriteThrough)
      : front_(std::move(front)), back_(std::move(back)), policy_(policy) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override {
    return back_->ListKeys();
  }
  StatusOr<size_t> Count() override { return back_->Count(); }
  Status Clear() override;
  std::string Name() const override {
    return back_->Name() + "<-" + front_->Name();
  }

  Stats GetStats() const;

 private:
  std::shared_ptr<KeyValueStore> front_;
  std::shared_ptr<KeyValueStore> back_;
  WritePolicy policy_;
  mutable std::atomic<uint64_t> front_hits_{0};
  mutable std::atomic<uint64_t> front_misses_{0};
};

}  // namespace dstore

#endif  // DSTORE_DSCL_TIERED_STORE_H_
