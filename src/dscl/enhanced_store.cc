#include "dscl/enhanced_store.h"

#include "obs/trace.h"

namespace dstore {

EnhancedStore::EnhancedStore(std::shared_ptr<KeyValueStore> base,
                             std::shared_ptr<ExpiringCache> cache,
                             std::shared_ptr<TransformChain> chain,
                             const Options& options)
    : base_(std::move(base)),
      cache_(std::move(cache)),
      chain_(std::move(chain)),
      options_(options) {
  auto* registry = obs::MetricsRegistry::Default();
  const obs::Labels labels = {{"store", base_->Name()}};
  obs_hits_ = registry->GetCounter(
      "dstore_enhanced_cache_hits_total", labels,
      "Fresh integrated-cache hits served without server contact.");
  obs_misses_ = registry->GetCounter(
      "dstore_enhanced_cache_misses_total", labels,
      "Gets that fetched the value from the base store.");
  obs_revalidations_ = registry->GetCounter(
      "dstore_enhanced_revalidations_total", labels,
      "Expired cache hits that sent a conditional GET.");
  obs_revalidations_saved_ = registry->GetCounter(
      "dstore_enhanced_revalidations_saved_total", labels,
      "Conditional GETs answered 304 (no value transferred).");
}

StatusOr<Bytes> EnhancedStore::Encode(const Bytes& value) const {
  if (chain_ == nullptr || chain_->empty()) return value;
  obs::Span span("transform.encode", obs::Stage::kTransform);
  return chain_->Apply(value);
}

StatusOr<ValuePtr> EnhancedStore::Decode(const Bytes& value) const {
  if (chain_ == nullptr || chain_->empty()) return MakeValue(Bytes(value));
  obs::Span span("transform.decode", obs::Stage::kTransform);
  DSTORE_ASSIGN_OR_RETURN(Bytes decoded, chain_->Reverse(value));
  return MakeValue(std::move(decoded));
}

Status EnhancedStore::CacheValue(const std::string& key,
                                 const ValuePtr& decoded, const Bytes& encoded,
                                 const std::string& etag) {
  if (cache_ == nullptr) return Status::OK();
  const ValuePtr to_cache =
      options_.cache_encoded ? MakeValue(Bytes(encoded)) : decoded;
  return cache_->PutWithTtl(key, to_cache, options_.cache_ttl_nanos, etag);
}

Status EnhancedStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  obs::Span span("enhanced.put");
  DSTORE_ASSIGN_OR_RETURN(Bytes encoded, Encode(*value));
  {
    obs::Span base_span("base.put", obs::Stage::kBackend);
    DSTORE_RETURN_IF_ERROR(base_->Put(key, MakeValue(Bytes(encoded))));
  }

  if (cache_ == nullptr) return Status::OK();
  switch (options_.write_policy) {
    case WritePolicy::kWriteThrough:
      return CacheValue(key, value, encoded, ComputeEtag(encoded));
    case WritePolicy::kInvalidate:
      return cache_->Delete(key);
    case WritePolicy::kBypass:
      return Status::OK();
  }
  return Status::OK();
}

StatusOr<ValuePtr> EnhancedStore::FetchAndCache(const std::string& key) {
  auto encoded = [&] {
    obs::Span span("base.get", obs::Stage::kBackend);
    return base_->Get(key);
  }();
  DSTORE_RETURN_IF_ERROR(encoded.status());
  DSTORE_ASSIGN_OR_RETURN(ValuePtr decoded, Decode(**encoded));
  DSTORE_RETURN_IF_ERROR(
      CacheValue(key, decoded, **encoded, ComputeEtag(**encoded)));
  return decoded;
}

StatusOr<ValuePtr> EnhancedStore::Get(const std::string& key) {
  obs::Span get_span("enhanced.get");

  if (cache_ == nullptr) {
    auto encoded = [&] {
      obs::Span span("base.get", obs::Stage::kBackend);
      return base_->Get(key);
    }();
    DSTORE_RETURN_IF_ERROR(encoded.status());
    return Decode(**encoded);
  }

  auto entry = [&] {
    obs::Span span("cache.lookup");
    return cache_->GetEntry(key);
  }();
  if (entry.ok() && !entry->expired) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    obs_hits_->Increment();
    if (options_.cache_encoded) return Decode(*entry->value);
    return entry->value;
  }

  if (entry.ok() && entry->expired && options_.revalidate_expired &&
      !entry->etag.empty()) {
    // Fig. 7: ask the server whether our version is still current.
    revalidations_.fetch_add(1, std::memory_order_relaxed);
    obs_revalidations_->Increment();
    auto conditional = [&] {
      obs::Span span("base.conditional_get", obs::Stage::kBackend);
      return base_->GetIfChanged(key, entry->etag);
    }();
    if (conditional.ok()) {
      if (conditional->not_modified) {
        revalidations_saved_.fetch_add(1, std::memory_order_relaxed);
        obs_revalidations_saved_->Increment();
        cache_->Touch(key, options_.cache_ttl_nanos).ok();
        if (options_.cache_encoded) return Decode(*entry->value);
        return entry->value;
      }
      DSTORE_ASSIGN_OR_RETURN(ValuePtr decoded, Decode(*conditional->value));
      DSTORE_RETURN_IF_ERROR(CacheValue(key, decoded, *conditional->value,
                                        conditional->etag));
      return decoded;
    }
    if (conditional.status().IsNotFound()) {
      cache_->Delete(key).ok();
      return conditional.status();
    }
    // Revalidation path failed (e.g. transient server error): fall through
    // to a plain fetch below.
  }

  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  obs_misses_->Increment();
  return FetchAndCache(key);
}

Status EnhancedStore::Delete(const std::string& key) {
  DSTORE_RETURN_IF_ERROR(base_->Delete(key));
  if (cache_ != nullptr) return cache_->Delete(key);
  return Status::OK();
}

StatusOr<bool> EnhancedStore::Contains(const std::string& key) {
  if (cache_ != nullptr && cache_->Contains(key)) return true;
  return base_->Contains(key);
}

StatusOr<std::vector<std::string>> EnhancedStore::ListKeys() {
  return base_->ListKeys();
}

StatusOr<size_t> EnhancedStore::Count() { return base_->Count(); }

Status EnhancedStore::Clear() {
  DSTORE_RETURN_IF_ERROR(base_->Clear());
  if (cache_ != nullptr) cache_->Clear();
  return Status::OK();
}

std::string EnhancedStore::Name() const {
  std::string name = base_->Name() + "+enhanced";
  if (chain_ != nullptr && !chain_->empty()) {
    name += "[" + chain_->Describe() + "]";
  }
  return name;
}

EnhancedStoreStats EnhancedStore::Stats() const {
  EnhancedStoreStats stats;
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.revalidations = revalidations_.load(std::memory_order_relaxed);
  stats.revalidations_saved =
      revalidations_saved_.load(std::memory_order_relaxed);
  return stats;
}

Status EnhancedStore::InvalidateCached(const std::string& key) {
  if (cache_ == nullptr) return Status::OK();
  return cache_->Delete(key);
}

}  // namespace dstore
