#include "dscl/delta_store.h"

#include <algorithm>

#include "obs/trace.h"

namespace dstore {

DeltaStore::DeltaStore(std::shared_ptr<KeyValueStore> base,
                       const Options& options)
    : base_(std::move(base)), options_(options) {}

StatusOr<Bytes> DeltaStore::Reconstruct(const std::string& key,
                                        uint64_t chain_length) {
  obs::Span span("delta.reconstruct", obs::Stage::kTransform);
  DSTORE_ASSIGN_OR_RETURN(ValuePtr base_value, base_->Get(BaseKey(key)));
  Bytes current = *base_value;
  for (uint64_t i = 1; i <= chain_length; ++i) {
    DSTORE_ASSIGN_OR_RETURN(ValuePtr delta, base_->Get(DeltaKey(key, i)));
    DSTORE_ASSIGN_OR_RETURN(current, ApplyDelta(current, *delta));
  }
  return current;
}

Status DeltaStore::PutFull(const std::string& key, const Bytes& value,
                           uint64_t old_chain_length) {
  DSTORE_RETURN_IF_ERROR(base_->Put(BaseKey(key), MakeValue(Bytes(value))));
  Bytes meta;
  PutVarint64(&meta, 0);
  DSTORE_RETURN_IF_ERROR(base_->Put(key, MakeValue(std::move(meta))));
  for (uint64_t i = 1; i <= old_chain_length; ++i) {
    DSTORE_RETURN_IF_ERROR(base_->Delete(DeltaKey(key, i)));
  }
  stats_.actual_put_bytes += value.size();
  ++stats_.full_puts;
  if (old_chain_length > 0) ++stats_.chain_collapses;
  return Status::OK();
}

Status DeltaStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  MutexLock lock(mu_);
  stats_.logical_put_bytes += value->size();

  // Determine the current chain length and previous value.
  uint64_t chain_length = 0;
  bool exists = false;
  auto meta = base_->Get(key);
  if (meta.ok()) {
    size_t pos = 0;
    auto parsed = GetVarint64(**meta, &pos);
    if (parsed.ok()) {
      chain_length = *parsed;
      exists = true;
    }
  }

  if (!exists) {
    DSTORE_RETURN_IF_ERROR(PutFull(key, *value, 0));
    last_value_[key] = *value;
    return Status::OK();
  }

  // Find the previous full value: the client-side copy if we wrote it, a
  // reconstruction from the server otherwise.
  Bytes previous;
  auto cached = last_value_.find(key);
  if (cached != last_value_.end()) {
    previous = cached->second;
  } else {
    DSTORE_ASSIGN_OR_RETURN(previous, Reconstruct(key, chain_length));
  }

  const Bytes delta = [&] {
    obs::Span span("delta.encode", obs::Stage::kTransform);
    return EncodeDelta(previous, *value, options_.delta);
  }();
  const bool delta_worthwhile =
      chain_length < options_.max_chain_length &&
      static_cast<double>(delta.size()) <
          options_.delta_threshold * static_cast<double>(value->size());

  if (delta_worthwhile) {
    DSTORE_RETURN_IF_ERROR(
        base_->Put(DeltaKey(key, chain_length + 1), MakeValue(Bytes(delta))));
    Bytes meta_bytes;
    PutVarint64(&meta_bytes, chain_length + 1);
    DSTORE_RETURN_IF_ERROR(base_->Put(key, MakeValue(std::move(meta_bytes))));
    stats_.actual_put_bytes += delta.size();
    ++stats_.delta_puts;
  } else {
    DSTORE_RETURN_IF_ERROR(PutFull(key, *value, chain_length));
  }
  last_value_[key] = *value;
  return Status::OK();
}

StatusOr<ValuePtr> DeltaStore::Get(const std::string& key) {
  MutexLock lock(mu_);
  DSTORE_ASSIGN_OR_RETURN(ValuePtr meta, base_->Get(key));
  size_t pos = 0;
  DSTORE_ASSIGN_OR_RETURN(uint64_t chain_length, GetVarint64(*meta, &pos));
  DSTORE_ASSIGN_OR_RETURN(Bytes value, Reconstruct(key, chain_length));
  return MakeValue(std::move(value));
}

Status DeltaStore::Delete(const std::string& key) {
  MutexLock lock(mu_);
  uint64_t chain_length = 0;
  auto meta = base_->Get(key);
  if (meta.ok()) {
    size_t pos = 0;
    auto parsed = GetVarint64(**meta, &pos);
    if (parsed.ok()) chain_length = *parsed;
  }
  DSTORE_RETURN_IF_ERROR(base_->Delete(key));
  DSTORE_RETURN_IF_ERROR(base_->Delete(BaseKey(key)));
  for (uint64_t i = 1; i <= chain_length; ++i) {
    DSTORE_RETURN_IF_ERROR(base_->Delete(DeltaKey(key, i)));
  }
  last_value_.erase(key);
  return Status::OK();
}

StatusOr<bool> DeltaStore::Contains(const std::string& key) {
  return base_->Contains(key);
}

StatusOr<std::vector<std::string>> DeltaStore::ListKeys() {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> raw, base_->ListKeys());
  // Metadata keys are the logical keys; filter out @base / @delta.N keys.
  std::vector<std::string> keys;
  for (std::string& key : raw) {
    if (key.find("@base") == std::string::npos &&
        key.find("@delta.") == std::string::npos) {
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

StatusOr<size_t> DeltaStore::Count() {
  DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> keys, ListKeys());
  return keys.size();
}

Status DeltaStore::Clear() {
  MutexLock lock(mu_);
  last_value_.clear();
  return base_->Clear();
}

DeltaStore::TransferStats DeltaStore::GetTransferStats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace dstore
