#include "dscl/tiered_store.h"

namespace dstore {

Status TieredStore::Put(const std::string& key, ValuePtr value) {
  if (value == nullptr) return Status::InvalidArgument("null value");
  DSTORE_RETURN_IF_ERROR(back_->Put(key, value));
  switch (policy_) {
    case WritePolicy::kWriteThrough:
      return front_->Put(key, std::move(value));
    case WritePolicy::kInvalidate:
      return front_->Delete(key);
  }
  return Status::OK();
}

StatusOr<ValuePtr> TieredStore::Get(const std::string& key) {
  auto from_front = front_->Get(key);
  if (from_front.ok()) {
    front_hits_.fetch_add(1, std::memory_order_relaxed);
    return from_front;
  }
  if (!from_front.status().IsNotFound()) {
    // Front tier unavailable is not fatal; fall back to the main store.
  }
  front_misses_.fetch_add(1, std::memory_order_relaxed);
  DSTORE_ASSIGN_OR_RETURN(ValuePtr value, back_->Get(key));
  front_->Put(key, value).ok();  // best effort populate
  return value;
}

Status TieredStore::Delete(const std::string& key) {
  DSTORE_RETURN_IF_ERROR(back_->Delete(key));
  return front_->Delete(key);
}

StatusOr<bool> TieredStore::Contains(const std::string& key) {
  auto in_front = front_->Contains(key);
  if (in_front.ok() && *in_front) return true;
  return back_->Contains(key);
}

Status TieredStore::Clear() {
  DSTORE_RETURN_IF_ERROR(back_->Clear());
  return front_->Clear();
}

TieredStore::Stats TieredStore::GetStats() const {
  Stats stats;
  stats.front_hits = front_hits_.load(std::memory_order_relaxed);
  stats.front_misses = front_misses_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace dstore
