#include "dscl/transformer.h"

namespace dstore {

StatusOr<std::shared_ptr<TransformChain>> MakeStandardChain(
    std::unique_ptr<Codec> codec, std::unique_ptr<Cipher> cipher) {
  auto chain = std::make_shared<TransformChain>();
  if (codec != nullptr) {
    chain->Add(std::make_unique<CompressionTransformer>(std::move(codec)));
  }
  if (cipher != nullptr) {
    chain->Add(std::make_unique<EncryptionTransformer>(std::move(cipher)));
  }
  return chain;
}

}  // namespace dstore
