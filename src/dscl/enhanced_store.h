#ifndef DSTORE_DSCL_ENHANCED_STORE_H_
#define DSTORE_DSCL_ENHANCED_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "cache/expiring_cache.h"
#include "common/clock.h"
#include "dscl/transformer.h"
#include "obs/metrics.h"
#include "store/key_value.h"

namespace dstore {

// Counters for the enhanced client's behaviour, matching what the paper's
// performance monitoring reports about caching effectiveness.
struct EnhancedStoreStats {
  uint64_t cache_hits = 0;          // fresh cache hits, no server contact
  uint64_t cache_misses = 0;        // value fetched from the server
  uint64_t revalidations = 0;       // expired hit -> conditional GET sent
  uint64_t revalidations_saved = 0; // ... of which the server said 304
};

// The DSCL's *tight integration* (paper Section II / III, first caching
// approach): a KeyValueStore decorator whose Get/Put/Delete transparently
// maintain an integrated cache and run values through the transform chain
// (compression, encryption) — "the data store client handles these
// operations automatically". Applications keep using the plain KeyValueStore
// interface; swapping `EnhancedStore(base)` for `base` is the whole change.
//
// Semantics:
//  * Get: fresh cache hit -> returned without server contact. Expired hit
//    with revalidation enabled -> conditional GET with the cached etag
//    (Fig. 7); a 304 refreshes the entry without transferring the value.
//    Miss -> fetch, reverse-transform, cache.
//  * Put: value is transformed (compress -> encrypt) before it leaves the
//    client; the cache is then updated (write-through) or invalidated,
//    per Options::write_policy.
//  * The cache stores decoded (plaintext) values by default for the fast
//    in-process hit path; set Options::cache_encoded to keep cache contents
//    compressed/encrypted at rest (paper Section III security discussion).
class EnhancedStore : public KeyValueStore {
 public:
  enum class WritePolicy {
    kWriteThrough,  // update the cache with the new value on Put
    kInvalidate,    // drop the cache entry on Put
    // Leave the cache alone on Put: cached copies stay visible until their
    // TTL expires, so reads may be stale for up to one TTL. This is the
    // classic TTL-consistency mode — only use it WITH a TTL (or an external
    // invalidation bus); with ttl=0 a rewritten key would be served stale
    // forever.
    kBypass,
  };

  struct Options {
    // TTL for cached entries; <= 0 means entries never expire.
    int64_t cache_ttl_nanos = 0;
    WritePolicy write_policy = WritePolicy::kWriteThrough;
    // On expired entries, revalidate with an etag instead of refetching.
    bool revalidate_expired = true;
    // Cache transformed (encrypted/compressed) bytes instead of plaintext.
    bool cache_encoded = false;
  };

  // `base` is the real data store client. `cache` may be null (then the
  // store only applies transforms). `chain` may be null (no transforms).
  EnhancedStore(std::shared_ptr<KeyValueStore> base,
                std::shared_ptr<ExpiringCache> cache,
                std::shared_ptr<TransformChain> chain, const Options& options);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override;

  EnhancedStoreStats Stats() const;
  ExpiringCache* cache() { return cache_.get(); }
  KeyValueStore* base() { return base_.get(); }

  // Explicit cache control for applications that need fine-grained access
  // alongside the transparent path (the paper recommends combining the
  // tight and explicit approaches).
  Status InvalidateCached(const std::string& key);

 private:
  StatusOr<Bytes> Encode(const Bytes& value) const;
  StatusOr<ValuePtr> Decode(const Bytes& value) const;
  // Fetches from the base store, decodes, and caches. Returns decoded value.
  StatusOr<ValuePtr> FetchAndCache(const std::string& key);
  Status CacheValue(const std::string& key, const ValuePtr& decoded,
                    const Bytes& encoded, const std::string& etag);

  std::shared_ptr<KeyValueStore> base_;
  std::shared_ptr<ExpiringCache> cache_;
  std::shared_ptr<TransformChain> chain_;
  Options options_;

  // Per-instance counts back Stats(); the obs counters mirror the same
  // events into the process-wide registry (labelled by base store name) so
  // /metrics sees every EnhancedStore in the process.
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};
  mutable std::atomic<uint64_t> revalidations_{0};
  mutable std::atomic<uint64_t> revalidations_saved_{0};
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_revalidations_;
  obs::Counter* obs_revalidations_saved_;
};

}  // namespace dstore

#endif  // DSTORE_DSCL_ENHANCED_STORE_H_
