#ifndef DSTORE_ADMIT_SERVER_QUEUE_H_
#define DSTORE_ADMIT_SERVER_QUEUE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace dstore {
namespace admit {

// Server-side bounded admission queue with load shedding — the
// overload-protection stage a request passes through before any data-plane
// work. Up to `max_concurrency` requests execute at once; up to
// `max_queue_depth` more wait FIFO. Beyond that, new arrivals are shed
// immediately with Overloaded (fail fast beats queueing forever). A waiter
// that has been queued longer than `queue_budget_nanos` is also shed — when
// a slot frees, Exit() discards oldest-beyond-budget waiters rather than
// running requests whose callers have almost certainly given up (the
// classic sojourn-time shedding argument: a full queue of stale work keeps
// the server 100% busy producing 0 goodput).
//
// Two lanes: Lane::kNormal takes the full treatment; Lane::kPriority (the
// /metrics and /healthz control plane) bypasses both the limit and the
// queue, so the server stays observable during the very overload this queue
// is managing.
//
// The waiter's budget is additionally capped by the ambient
// CurrentDeadline(): a request whose deadline expires while queued is
// abandoned with TimedOut before it ever touches the backend.
//
// Fault site: with a FaultPlan attached, Enter() consults "admit.queue"
// (op "enter"); a fired error-kind rule sheds that request deterministically.
class ServerQueue {
 public:
  enum class Lane { kNormal, kPriority };

  struct Options {
    std::string name = "server";  // metrics label
    int max_concurrency = 8;
    int max_queue_depth = 64;
    // Longest a request may wait in queue before it is shed.
    int64_t queue_budget_nanos = 100'000'000;  // 100ms
    bool publish_metrics = true;
    // Optional deterministic fault schedule for site "admit.queue".
    std::shared_ptr<fault::FaultPlan> fault_plan;
    Clock* clock = nullptr;  // null = RealClock
  };

  explicit ServerQueue(const Options& options);

  // Blocks until a slot is free (normal lane, possibly queueing), or
  // returns Overloaded (shed) / TimedOut (deadline expired while queued).
  // Every OK return must be paired with one Exit() on the same lane.
  // `wait_nanos`, when non-null, receives the time spent queued (0 when
  // admitted immediately or shed at the door) — the queue-stage latency a
  // server span attributes to Stage::kQueue.
  // May park the calling thread in the queue: never enter from a reactor
  // loop thread (the async servers admit on worker threads).
  Status Enter(Lane lane = Lane::kNormal, int64_t* wait_nanos = nullptr)
      EXCLUDES(mu_) DSTORE_BLOCKING;

  // Releases the slot and hands it to the first still-fresh waiter,
  // shedding any older-than-budget waiters ahead of it.
  void Exit(Lane lane = Lane::kNormal) EXCLUDES(mu_);

  // RAII wrapper: enters on construction, exits on destruction iff entry
  // succeeded. Check ok() before doing data-plane work.
  class Admission {
   public:
    explicit Admission(ServerQueue* queue, Lane lane = Lane::kNormal)
        : queue_(queue),
          lane_(lane),
          status_(queue->Enter(lane, &wait_nanos_)) {}
    ~Admission() {
      if (status_.ok()) queue_->Exit(lane_);
    }
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;

    bool ok() const { return status_.ok(); }
    const Status& status() const { return status_; }
    // Time this request spent waiting in the queue (0 if never queued).
    int64_t wait_nanos() const { return wait_nanos_; }

   private:
    ServerQueue* queue_;
    Lane lane_;
    int64_t wait_nanos_ = 0;
    Status status_;
  };

  int active() const;
  int queued() const;
  uint64_t shed_total() const;
  std::string DebugLine() const;

 private:
  // One queued request, owned by the waiting thread's stack; the queue
  // holds pointers and flips flags under mu_.
  struct Waiter {
    int64_t enqueue_nanos = 0;
    bool admitted = false;
    bool shed = false;
  };

  void ShedLocked(obs::Counter* counter) REQUIRES(mu_);

  const Options options_;
  Clock* const clock_;
  mutable Mutex mu_;
  CondVar cv_;
  int active_ GUARDED_BY(mu_) = 0;
  int priority_active_ GUARDED_BY(mu_) = 0;
  std::deque<Waiter*> queue_ GUARDED_BY(mu_);
  uint64_t shed_ GUARDED_BY(mu_) = 0;
  obs::Gauge* obs_active_ = nullptr;
  obs::Gauge* obs_depth_ = nullptr;
  obs::Counter* obs_admitted_ = nullptr;
  obs::Counter* obs_priority_ = nullptr;
  obs::Counter* obs_shed_full_ = nullptr;
  obs::Counter* obs_shed_timeout_ = nullptr;
  obs::Counter* obs_shed_deadline_ = nullptr;
  obs::Counter* obs_shed_injected_ = nullptr;
  obs::Histogram* obs_wait_ms_ = nullptr;
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_SERVER_QUEUE_H_
