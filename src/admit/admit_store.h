#ifndef DSTORE_ADMIT_ADMIT_STORE_H_
#define DSTORE_ADMIT_ADMIT_STORE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "admit/breaker.h"
#include "admit/introspect.h"
#include "admit/limiter.h"
#include "admit/token_bucket.h"
#include "common/clock.h"
#include "obs/metrics.h"
#include "store/key_value.h"

namespace dstore {
namespace admit {

// KeyValueStore decorators that bolt the admission-control primitives onto
// any store — the client-side face of src/admit/, composing with the other
// wrappers exactly like FaultInjectingStore and RetryingStore do:
//
//   sharded( breaker( admitting( retrying( cloud ))))
//
// They live in src/admit/ but are compiled into the dstore_store library
// (the fault_store.cc precedent) so dstore_admit itself stays free of a
// store dependency.

// AdmittingStore enforces the per-operation budget and local rate /
// concurrency limits before the inner store is touched:
//
//  1. Deadline gate — an already-expired CurrentDeadline() fails with
//     TimedOut without any backend work; a success that completes after
//     the deadline expired is *converted* to TimedOut (the caller has
//     moved on; for writes this is the acknowledged-uncertain case the
//     chaos harness models), which also makes stalled backends visible to
//     limiters and breakers stacked above as genuine overload signals.
//  2. TokenBucket — optional rate limit; over-rate operations shed with
//     Overloaded.
//  3. AdaptiveLimiter — optional AIMD concurrency limit; every admitted
//     operation's outcome feeds the controller.
class AdmittingStore : public KeyValueStore {
 public:
  struct Options {
    bool enforce_deadline = true;
    // Optional, shared so several stores can share one budget.
    std::shared_ptr<TokenBucket> rate_limiter;
    std::shared_ptr<AdaptiveLimiter> limiter;
    bool publish_metrics = true;
    Clock* clock = nullptr;  // for tests; null = RealClock
  };

  AdmittingStore(std::shared_ptr<KeyValueStore> inner, const Options& options);
  explicit AdmittingStore(std::shared_ptr<KeyValueStore> inner)
      : AdmittingStore(std::move(inner), Options()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return inner_->Name() + "+admit"; }

  const std::shared_ptr<AdaptiveLimiter>& limiter() const {
    return options_.limiter;
  }
  const std::shared_ptr<TokenBucket>& rate_limiter() const {
    return options_.rate_limiter;
  }

  std::string DebugLine() const;

 private:
  template <typename R, typename Op>
  R WithAdmission(const char* op_name, Op&& op);

  std::shared_ptr<KeyValueStore> inner_;
  const Options options_;
  obs::Counter* obs_deadline_expired_ = nullptr;
  obs::Counter* obs_late_ = nullptr;
  obs::Counter* obs_rate_limited_ = nullptr;
  ScopedIntrospection introspection_;
};

// CircuitBreakerStore short-circuits operations while its per-store
// CircuitBreaker is open, so a failing backend sees no traffic until its
// recovery probe succeeds. Overload-class failures (TimedOut, Unavailable,
// Overloaded — the same classification ResilientStore retries on) feed the
// breaker; application errors like NotFound do not.
class CircuitBreakerStore : public KeyValueStore {
 public:
  // `breaker_options.name` defaults to the inner store's Name() when left
  // at its stock value, giving per-store metrics labels for free.
  CircuitBreakerStore(std::shared_ptr<KeyValueStore> inner,
                      CircuitBreaker::Options breaker_options);
  explicit CircuitBreakerStore(std::shared_ptr<KeyValueStore> inner)
      : CircuitBreakerStore(std::move(inner), CircuitBreaker::Options()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  std::string Name() const override { return inner_->Name() + "+breaker"; }

  CircuitBreaker* breaker() { return &breaker_; }

 private:
  template <typename R, typename Op>
  R WithBreaker(Op&& op);

  static CircuitBreaker::Options WithDefaultName(
      CircuitBreaker::Options options, const KeyValueStore& inner);

  std::shared_ptr<KeyValueStore> inner_;
  CircuitBreaker breaker_;
  ScopedIntrospection introspection_;
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_ADMIT_STORE_H_
