#ifndef DSTORE_ADMIT_DEADLINE_H_
#define DSTORE_ADMIT_DEADLINE_H_

#include <cstdint>
#include <limits>

#include "common/clock.h"

namespace dstore {
namespace admit {

// Per-operation time budget — the first pillar of the admission-control
// subsystem (src/admit/). A Deadline is an absolute expiry on a Clock;
// layers consult it before expensive steps (a WAN round trip, a retry
// backoff sleep, a queue wait) so work that can no longer finish in time is
// abandoned with TimedOut instead of piling onto an overloaded backend.
//
// The deadline travels with the operation as an *ambient call context*: a
// thread-local stack pushed by ScopedDeadline. This mirrors how obs::Span
// parents itself without threading a context parameter through the
// KeyValueStore interface — decorators and clients read CurrentDeadline()
// wherever they are in the stack. Over the wire, CloudStoreClient forwards
// the remaining budget as the x-dstore-deadline-ms header and the cloud
// server re-establishes the context on its side.
class Deadline {
 public:
  // No deadline: never expires, infinite remaining budget.
  Deadline() = default;

  // Expires `budget_nanos` from now on `clock` (null = RealClock).
  static Deadline After(int64_t budget_nanos, Clock* clock = nullptr) {
    Clock* c = clock != nullptr ? clock : RealClock::Default();
    Deadline d;
    d.clock_ = c;
    d.expiry_nanos_ = c->NowNanos() + budget_nanos;
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool has_deadline() const { return clock_ != nullptr; }

  // Remaining budget, clamped to >= 0. Effectively unbounded when no
  // deadline is set.
  int64_t remaining_nanos() const {
    if (clock_ == nullptr) return std::numeric_limits<int64_t>::max();
    const int64_t left = expiry_nanos_ - clock_->NowNanos();
    return left > 0 ? left : 0;
  }

  bool expired() const { return has_deadline() && remaining_nanos() == 0; }

  // The earlier of the two deadlines. When the deadlines live on different
  // clocks their expiries are incomparable; `*this` (the more recently
  // imposed one, in ScopedDeadline's usage) wins.
  Deadline EarlierOf(const Deadline& other) const {
    if (!has_deadline()) return other;
    if (!other.has_deadline() || clock_ != other.clock_) return *this;
    return expiry_nanos_ <= other.expiry_nanos_ ? *this : other;
  }

 private:
  Clock* clock_ = nullptr;  // null = no deadline
  int64_t expiry_nanos_ = 0;
};

// The deadline governing the current operation on this thread; Infinite
// when no ScopedDeadline is active.
Deadline CurrentDeadline();

// Pushes `deadline` as the current call context for this thread, restoring
// the previous one on destruction. Nested scopes intersect: the effective
// deadline is the earlier of the new and enclosing one, so an inner layer
// can only tighten the budget, never extend it.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(Deadline deadline);
  ~ScopedDeadline();

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  Deadline previous_;
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_DEADLINE_H_
