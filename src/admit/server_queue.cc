#include "admit/server_queue.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>

#include "admit/deadline.h"

namespace dstore {
namespace admit {

ServerQueue::ServerQueue(const Options& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Default()) {
  if (options_.publish_metrics) {
    auto* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"queue", options_.name}};
    obs_active_ = registry->GetGauge("dstore_admit_queue_active", labels,
                                     "Requests currently executing.");
    obs_depth_ = registry->GetGauge("dstore_admit_queue_depth", labels,
                                    "Requests currently waiting in queue.");
    obs_admitted_ = registry->GetCounter(
        "dstore_admit_queue_admitted_total", labels,
        "Requests admitted through the normal lane.");
    obs_priority_ = registry->GetCounter(
        "dstore_admit_queue_priority_total", labels,
        "Requests admitted through the priority lane (bypass).");
    const std::string help =
        "Requests shed by the admission queue, by reason.";
    obs_shed_full_ = registry->GetCounter(
        "dstore_admit_queue_shed_total",
        {{"queue", options_.name}, {"reason", "full"}}, help);
    obs_shed_timeout_ = registry->GetCounter(
        "dstore_admit_queue_shed_total",
        {{"queue", options_.name}, {"reason", "timeout"}}, help);
    obs_shed_deadline_ = registry->GetCounter(
        "dstore_admit_queue_shed_total",
        {{"queue", options_.name}, {"reason", "deadline"}}, help);
    obs_shed_injected_ = registry->GetCounter(
        "dstore_admit_queue_shed_total",
        {{"queue", options_.name}, {"reason", "injected"}}, help);
    obs_wait_ms_ = registry->GetHistogram(
        "dstore_admit_queue_wait_ms", labels,
        "Time admitted requests spent waiting in queue.");
  }
}

void ServerQueue::ShedLocked(obs::Counter* counter) {
  ++shed_;
  if (counter != nullptr) counter->Increment();
}

Status ServerQueue::Enter(Lane lane, int64_t* wait_nanos) {
  if (wait_nanos != nullptr) *wait_nanos = 0;
  std::optional<fault::Fault> injected;
  if (lane == Lane::kNormal && options_.fault_plan != nullptr) {
    injected = options_.fault_plan->Evaluate("admit.queue", "enter");
  }
  MutexLock lock(mu_);
  if (lane == Lane::kPriority) {
    // Control plane (/metrics, /healthz) bypasses limit and queue: the
    // whole point of overload protection is lost if overload also blinds
    // the operator.
    ++priority_active_;
    if (obs_priority_ != nullptr) obs_priority_->Increment();
    return Status::OK();
  }
  if (injected.has_value() && injected->kind == fault::FaultKind::kError) {
    ShedLocked(obs_shed_injected_);
    return Status::Overloaded("injected shed at admit.queue");
  }
  if (active_ < options_.max_concurrency && queue_.empty()) {
    ++active_;
    if (obs_active_ != nullptr) obs_active_->Set(active_);
    if (obs_admitted_ != nullptr) obs_admitted_->Increment();
    return Status::OK();
  }
  if (static_cast<int>(queue_.size()) >= options_.max_queue_depth) {
    ShedLocked(obs_shed_full_);
    return Status::Overloaded("server queue " + options_.name + " full");
  }

  Waiter waiter;
  waiter.enqueue_nanos = clock_->NowNanos();
  queue_.push_back(&waiter);
  if (obs_depth_ != nullptr) obs_depth_->Set(static_cast<double>(
      queue_.size()));
  bool deadline_expired = false;
  while (!waiter.admitted && !waiter.shed) {
    const int64_t waited = clock_->NowNanos() - waiter.enqueue_nanos;
    const int64_t budget_left = options_.queue_budget_nanos - waited;
    if (budget_left <= 0) break;
    const int64_t deadline_left = CurrentDeadline().remaining_nanos();
    if (deadline_left <= 0) {
      deadline_expired = true;
      break;
    }
    cv_.WaitFor(mu_, std::chrono::nanoseconds(
                         std::min(budget_left, deadline_left)));
  }
  if (waiter.admitted) {
    const int64_t waited = clock_->NowNanos() - waiter.enqueue_nanos;
    if (wait_nanos != nullptr) *wait_nanos = waited;
    if (obs_wait_ms_ != nullptr) {
      obs_wait_ms_->Record(static_cast<double>(waited) / 1e6);
    }
    if (obs_admitted_ != nullptr) obs_admitted_->Increment();
    return Status::OK();
  }
  if (!waiter.shed) {
    // Timed out (or deadline-expired) in place: still queued, remove self.
    queue_.erase(std::find(queue_.begin(), queue_.end(), &waiter));
    ShedLocked(deadline_expired ? obs_shed_deadline_ : obs_shed_timeout_);
  }
  if (obs_depth_ != nullptr) obs_depth_->Set(static_cast<double>(
      queue_.size()));
  if (deadline_expired) {
    return Status::TimedOut("deadline expired while queued at " +
                            options_.name);
  }
  return Status::Overloaded("server queue " + options_.name +
                            " wait budget exceeded");
}

void ServerQueue::Exit(Lane lane) {
  MutexLock lock(mu_);
  if (lane == Lane::kPriority) {
    if (priority_active_ > 0) --priority_active_;
    return;
  }
  if (active_ > 0) --active_;
  const int64_t now = clock_->NowNanos();
  while (!queue_.empty() && active_ < options_.max_concurrency) {
    Waiter* front = queue_.front();
    queue_.pop_front();
    if (now - front->enqueue_nanos > options_.queue_budget_nanos) {
      // Shed-oldest-beyond-budget: its caller has given up; running it now
      // would be pure goodput loss.
      front->shed = true;
      ShedLocked(obs_shed_timeout_);
      continue;
    }
    front->admitted = true;
    ++active_;
    break;
  }
  if (obs_active_ != nullptr) obs_active_->Set(active_);
  if (obs_depth_ != nullptr) obs_depth_->Set(static_cast<double>(
      queue_.size()));
  cv_.NotifyAll();
}

int ServerQueue::active() const {
  MutexLock lock(mu_);
  return active_;
}

int ServerQueue::queued() const {
  MutexLock lock(mu_);
  return static_cast<int>(queue_.size());
}

uint64_t ServerQueue::shed_total() const {
  MutexLock lock(mu_);
  return shed_;
}

std::string ServerQueue::DebugLine() const {
  MutexLock lock(mu_);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "queue   %-16s active=%d/%d depth=%zu/%d shed=%llu",
                options_.name.c_str(), active_, options_.max_concurrency,
                queue_.size(), options_.max_queue_depth,
                static_cast<unsigned long long>(shed_));
  return buf;
}

}  // namespace admit
}  // namespace dstore
