#include "admit/limiter.h"

#include <algorithm>
#include <cstdio>

namespace dstore {
namespace admit {

AdaptiveLimiter::AdaptiveLimiter(const Options& options)
    : options_(options),
      limit_(options.initial_limit),
      // Start with the cooldown window already elapsed: the very first
      // overload signal must shrink the limit; the cooldown only spaces
      // *subsequent* decreases.
      since_decrease_(static_cast<int64_t>(options.initial_limit)) {
  if (options_.publish_metrics) {
    auto* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"limiter", options_.name}};
    obs_limit_ = registry->GetGauge("dstore_admit_limit", labels,
                                    "Current adaptive concurrency limit.");
    obs_in_flight_ = registry->GetGauge(
        "dstore_admit_inflight", labels,
        "Operations currently admitted by the limiter.");
    obs_rejected_ = registry->GetCounter(
        "dstore_admit_limiter_rejected_total", labels,
        "Operations shed because the concurrency limit was reached.");
    obs_decreases_ = registry->GetCounter(
        "dstore_admit_limiter_decreases_total", labels,
        "Multiplicative-decrease steps taken on overload signals.");
    obs_limit_->Set(limit_);
  }
}

bool AdaptiveLimiter::TryAcquire() {
  MutexLock lock(mu_);
  if (in_flight_ >= static_cast<int64_t>(limit_)) {
    ++rejected_;
    if (obs_rejected_ != nullptr) obs_rejected_->Increment();
    return false;
  }
  ++in_flight_;
  if (obs_in_flight_ != nullptr) obs_in_flight_->Set(
      static_cast<double>(in_flight_));
  return true;
}

void AdaptiveLimiter::Release(const Status& status) {
  MutexLock lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  ++since_decrease_;
  if (IsOverloadSignal(status)) {
    // Cooldown: one decrease per window of `limit` completions, so a burst
    // of failures from the same overload episode backs off once.
    if (since_decrease_ >= static_cast<int64_t>(limit_)) {
      limit_ = std::max(options_.min_limit, limit_ * options_.decrease_ratio);
      since_decrease_ = 0;
      if (obs_decreases_ != nullptr) obs_decreases_->Increment();
    }
  } else {
    limit_ = std::min(options_.max_limit,
                      limit_ + options_.increase_per_success / limit_);
  }
  if (obs_limit_ != nullptr) obs_limit_->Set(limit_);
  if (obs_in_flight_ != nullptr) obs_in_flight_->Set(
      static_cast<double>(in_flight_));
}

double AdaptiveLimiter::limit() const {
  MutexLock lock(mu_);
  return limit_;
}

int64_t AdaptiveLimiter::in_flight() const {
  MutexLock lock(mu_);
  return in_flight_;
}

uint64_t AdaptiveLimiter::rejected_total() const {
  MutexLock lock(mu_);
  return rejected_;
}

std::string AdaptiveLimiter::DebugLine() const {
  MutexLock lock(mu_);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "limiter %-16s limit=%.1f in_flight=%lld rejected=%llu",
                options_.name.c_str(), limit_,
                static_cast<long long>(in_flight_),
                static_cast<unsigned long long>(rejected_));
  return buf;
}

}  // namespace admit
}  // namespace dstore
