#include "admit/deadline.h"

namespace dstore {
namespace admit {

namespace {
// Ambient per-thread call context. A plain thread_local value (not a stack):
// ScopedDeadline saves the previous value and restores it, which gives stack
// semantics without an allocation.
thread_local Deadline g_current_deadline;  // default: infinite
}  // namespace

Deadline CurrentDeadline() { return g_current_deadline; }

ScopedDeadline::ScopedDeadline(Deadline deadline)
    : previous_(g_current_deadline) {
  g_current_deadline = deadline.EarlierOf(previous_);
}

ScopedDeadline::~ScopedDeadline() { g_current_deadline = previous_; }

}  // namespace admit
}  // namespace dstore
