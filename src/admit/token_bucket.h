#ifndef DSTORE_ADMIT_TOKEN_BUCKET_H_
#define DSTORE_ADMIT_TOKEN_BUCKET_H_

#include <cstdint>

#include "common/clock.h"
#include "common/sync.h"

namespace dstore {
namespace admit {

// Classic token-bucket rate limiter: tokens accrue at `rate_per_sec` up to
// `burst`, and each admitted operation spends one (or more). Fully
// deterministic given a Clock, so tests drive it with SimulatedClock.
// Thread-safe; the fast path is one short critical section.
class TokenBucket {
 public:
  struct Options {
    double rate_per_sec = 1000.0;  // steady-state admission rate
    double burst = 100.0;          // bucket capacity (initially full)
  };

  explicit TokenBucket(const Options& options, Clock* clock = nullptr)
      : options_(options),
        clock_(clock != nullptr ? clock : RealClock::Default()),
        tokens_(options.burst),
        last_refill_nanos_(clock_->NowNanos()) {}

  // Spends `tokens` if available; returns false (caller sheds) otherwise.
  // Never blocks — admission control sheds instead of queueing callers.
  bool TryAcquire(double tokens = 1.0) {
    MutexLock lock(mu_);
    Refill();
    if (tokens_ < tokens) return false;
    tokens_ -= tokens;
    return true;
  }

  // Tokens currently available (after refill), for introspection.
  double Available() {
    MutexLock lock(mu_);
    Refill();
    return tokens_;
  }

 private:
  void Refill() REQUIRES(mu_) {
    const int64_t now = clock_->NowNanos();
    if (now <= last_refill_nanos_) return;
    const double elapsed_sec =
        static_cast<double>(now - last_refill_nanos_) / 1e9;
    tokens_ += elapsed_sec * options_.rate_per_sec;
    if (tokens_ > options_.burst) tokens_ = options_.burst;
    last_refill_nanos_ = now;
  }

  const Options options_;
  Clock* clock_;
  Mutex mu_;
  double tokens_ GUARDED_BY(mu_);
  int64_t last_refill_nanos_ GUARDED_BY(mu_);
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_TOKEN_BUCKET_H_
