#include "admit/admit_store.h"

#include <cstdio>

#include "admit/deadline.h"
#include "obs/trace.h"

namespace dstore {
namespace admit {

namespace {

// Uniform helpers so the With* templates treat Status and StatusOr alike
// (the RetryingStore::WithRetries pattern).
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
inline const Status& StatusOf(const StatusOr<T>& s) {
  return s.status();
}

}  // namespace

AdmittingStore::AdmittingStore(std::shared_ptr<KeyValueStore> inner,
                               const Options& options)
    : inner_(std::move(inner)),
      options_(options),
      introspection_([this] { return DebugLine(); }) {
  if (options_.publish_metrics) {
    auto* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"store", inner_->Name()}};
    obs_deadline_expired_ = registry->GetCounter(
        "dstore_admit_deadline_expired_total", labels,
        "Operations abandoned before the backend: deadline already "
        "expired.");
    obs_late_ = registry->GetCounter(
        "dstore_admit_late_total", labels,
        "Successes converted to TimedOut: completed after the deadline.");
    obs_rate_limited_ = registry->GetCounter(
        "dstore_admit_rate_limited_total", labels,
        "Operations shed by the token-bucket rate limiter.");
  }
}

template <typename R, typename Op>
R AdmittingStore::WithAdmission(const char* op_name, Op&& op) {
  obs::Span span(std::string("admit.") + op_name, obs::Stage::kAdmit);
  const Deadline deadline = CurrentDeadline();
  if (options_.enforce_deadline && deadline.expired()) {
    if (obs_deadline_expired_ != nullptr) obs_deadline_expired_->Increment();
    return R(Status::TimedOut("deadline expired before " +
                              std::string(op_name) + " on " + Name()));
  }
  if (options_.rate_limiter != nullptr &&
      !options_.rate_limiter->TryAcquire()) {
    if (obs_rate_limited_ != nullptr) obs_rate_limited_->Increment();
    return R(Status::Overloaded("rate limit exceeded on " + Name()));
  }
  if (options_.limiter != nullptr && !options_.limiter->TryAcquire()) {
    return R(Status::Overloaded("concurrency limit reached on " + Name()));
  }
  R result = op();
  if (options_.enforce_deadline && deadline.has_deadline() &&
      deadline.expired() && StatusOf(result).ok()) {
    // Completed, but too late: the caller's budget is spent, and stacked
    // limiters/breakers must see a stalled backend as overload, not as a
    // slow success.
    if (obs_late_ != nullptr) obs_late_->Increment();
    result = R(Status::TimedOut("completed after deadline on " + Name()));
  }
  if (options_.limiter != nullptr) {
    options_.limiter->Release(StatusOf(result));
  }
  span.SetStatus(StatusOf(result));
  return result;
}

Status AdmittingStore::Put(const std::string& key, ValuePtr value) {
  return WithAdmission<Status>("put",
                               [&] { return inner_->Put(key, value); });
}

StatusOr<ValuePtr> AdmittingStore::Get(const std::string& key) {
  return WithAdmission<StatusOr<ValuePtr>>("get",
                                           [&] { return inner_->Get(key); });
}

Status AdmittingStore::Delete(const std::string& key) {
  return WithAdmission<Status>("delete",
                               [&] { return inner_->Delete(key); });
}

StatusOr<bool> AdmittingStore::Contains(const std::string& key) {
  return WithAdmission<StatusOr<bool>>(
      "contains", [&] { return inner_->Contains(key); });
}

StatusOr<std::vector<std::string>> AdmittingStore::ListKeys() {
  return WithAdmission<StatusOr<std::vector<std::string>>>(
      "listkeys", [&] { return inner_->ListKeys(); });
}

StatusOr<size_t> AdmittingStore::Count() {
  return WithAdmission<StatusOr<size_t>>("count",
                                         [&] { return inner_->Count(); });
}

Status AdmittingStore::Clear() {
  return WithAdmission<Status>("clear", [&] { return inner_->Clear(); });
}

std::string AdmittingStore::DebugLine() const {
  std::string line = "admit   " + Name();
  if (options_.limiter != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " limit=%.1f in_flight=%lld",
                  options_.limiter->limit(),
                  static_cast<long long>(options_.limiter->in_flight()));
    line += buf;
  }
  if (options_.rate_limiter != nullptr) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " tokens=%.1f",
                  options_.rate_limiter->Available());
    line += buf;
  }
  return line;
}

CircuitBreaker::Options CircuitBreakerStore::WithDefaultName(
    CircuitBreaker::Options options, const KeyValueStore& inner) {
  if (options.name == CircuitBreaker::Options().name) {
    options.name = inner.Name();
  }
  return options;
}

CircuitBreakerStore::CircuitBreakerStore(
    std::shared_ptr<KeyValueStore> inner,
    CircuitBreaker::Options breaker_options)
    : inner_(std::move(inner)),
      breaker_(WithDefaultName(std::move(breaker_options), *inner_)),
      introspection_([this] { return breaker_.DebugLine(); }) {}

template <typename R, typename Op>
R CircuitBreakerStore::WithBreaker(Op&& op) {
  Status admit = breaker_.Admit();
  if (!admit.ok()) return R(std::move(admit));
  R result = op();
  breaker_.OnResult(StatusOf(result));
  return result;
}

Status CircuitBreakerStore::Put(const std::string& key, ValuePtr value) {
  return WithBreaker<Status>([&] { return inner_->Put(key, value); });
}

StatusOr<ValuePtr> CircuitBreakerStore::Get(const std::string& key) {
  return WithBreaker<StatusOr<ValuePtr>>([&] { return inner_->Get(key); });
}

Status CircuitBreakerStore::Delete(const std::string& key) {
  return WithBreaker<Status>([&] { return inner_->Delete(key); });
}

StatusOr<bool> CircuitBreakerStore::Contains(const std::string& key) {
  return WithBreaker<StatusOr<bool>>([&] { return inner_->Contains(key); });
}

StatusOr<std::vector<std::string>> CircuitBreakerStore::ListKeys() {
  return WithBreaker<StatusOr<std::vector<std::string>>>(
      [&] { return inner_->ListKeys(); });
}

StatusOr<size_t> CircuitBreakerStore::Count() {
  return WithBreaker<StatusOr<size_t>>([&] { return inner_->Count(); });
}

Status CircuitBreakerStore::Clear() {
  return WithBreaker<Status>([&] { return inner_->Clear(); });
}

}  // namespace admit
}  // namespace dstore
