#include "admit/introspect.h"

#include <map>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace dstore {
namespace admit {

namespace {

struct Registry {
  Mutex mu;
  // Ordered map: iteration order == registration order (ids ascend).
  std::map<int, std::function<std::string()>> entries GUARDED_BY(mu);
  int next_id GUARDED_BY(mu) = 1;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // leaked: process lifetime
  return *registry;
}

}  // namespace

int RegisterIntrospection(std::function<std::string()> describe) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  const int id = registry.next_id++;
  registry.entries.emplace(id, std::move(describe));
  return id;
}

void UnregisterIntrospection(int id) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  registry.entries.erase(id);
}

std::string DescribeAdmissionState() {
  // Copy the closures out so they run without the registry lock — a
  // describe closure takes its component's lock, and holding both invites
  // an ordering cycle.
  std::vector<std::function<std::string()>> closures;
  {
    Registry& registry = GlobalRegistry();
    MutexLock lock(registry.mu);
    closures.reserve(registry.entries.size());
    for (const auto& [id, fn] : registry.entries) closures.push_back(fn);
  }
  if (closures.empty()) return "no admission components registered\n";
  std::string out;
  for (const auto& fn : closures) {
    out += fn();
    out += '\n';
  }
  return out;
}

}  // namespace admit
}  // namespace dstore
