#ifndef DSTORE_ADMIT_INTROSPECT_H_
#define DSTORE_ADMIT_INTROSPECT_H_

#include <functional>
#include <string>

namespace dstore {
namespace admit {

// Process-wide introspection of live admission-control components. Each
// limiter/breaker/queue wrapper registers a closure that renders its
// DebugLine(); udsm_cli's `admit` command calls DescribeAdmissionState() to
// dump the lot — breaker states, concurrency limits, shed counters — the
// operator's one-stop view of who is shedding what and why.
//
// Registration order is preserved in the output. Thread-safe; closures are
// invoked without the registry lock held, so they may take their own locks.

// Registers `describe`; returns an id for UnregisterIntrospection. The
// closure must stay valid until unregistered.
int RegisterIntrospection(std::function<std::string()> describe);
void UnregisterIntrospection(int id);

// One line per registered component, registration order, '\n'-terminated.
// "no admission components registered\n" when empty.
std::string DescribeAdmissionState();

// RAII registration, for components that own their describe closure.
class ScopedIntrospection {
 public:
  explicit ScopedIntrospection(std::function<std::string()> describe)
      : id_(RegisterIntrospection(std::move(describe))) {}
  ~ScopedIntrospection() { UnregisterIntrospection(id_); }

  ScopedIntrospection(const ScopedIntrospection&) = delete;
  ScopedIntrospection& operator=(const ScopedIntrospection&) = delete;

 private:
  int id_;
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_INTROSPECT_H_
