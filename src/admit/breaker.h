#ifndef DSTORE_ADMIT_BREAKER_H_
#define DSTORE_ADMIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "common/sync.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace dstore {
namespace admit {

// Circuit breaker: after `failure_threshold` consecutive overload-class
// failures the circuit opens and requests are short-circuited with
// Overloaded — no work reaches the failing backend, which is what lets it
// recover. After `open_nanos` the breaker goes half-open and admits up to
// `half_open_probes` concurrent probe requests; `success_threshold` probe
// successes close it again, one probe failure re-opens it.
//
// Fully clock-driven (no background threads): state transitions happen on
// the Admit()/OnResult() calls that observe them, so SimulatedClock tests
// step the machine deterministically. Thread-safe.
//
// Fault site: when a FaultPlan is attached, Admit() consults site
// "admit.breaker" (op "admit"); a fired error-kind rule force-opens the
// breaker — the chaos suite uses this to exercise trip/recovery paths on a
// deterministic schedule.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  struct Options {
    std::string name = "breaker";  // metrics label
    // Consecutive overload-class failures (see
    // AdaptiveLimiter::IsOverloadSignal) that open the circuit.
    int failure_threshold = 5;
    // How long the circuit stays open before probing.
    int64_t open_nanos = 1'000'000'000;  // 1s
    // Concurrent probes allowed while half-open.
    int half_open_probes = 1;
    // Probe successes needed to close again.
    int success_threshold = 2;
    bool publish_metrics = true;
    // Invoked (outside the breaker lock) after each state transition.
    std::function<void(State)> on_state_change;
    // Optional deterministic fault schedule for site "admit.breaker".
    std::shared_ptr<fault::FaultPlan> fault_plan;
    Clock* clock = nullptr;  // null = RealClock
  };

  explicit CircuitBreaker(const Options& options);

  // OK to proceed, or Overloaded("circuit breaker ... open") to
  // short-circuit. Every OK return must be matched by one OnResult().
  Status Admit();

  // Feeds the outcome of an admitted operation to the state machine.
  void OnResult(const Status& status);

  State state() const;
  uint64_t short_circuited_total() const;
  std::string DebugLine() const;

  static std::string_view StateName(State state);

 private:
  void TransitionLocked(State to) REQUIRES(mu_);

  const Options options_;
  Clock* const clock_;
  mutable Mutex mu_;
  State state_ GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ GUARDED_BY(mu_) = 0;
  int64_t open_until_nanos_ GUARDED_BY(mu_) = 0;
  int probes_in_flight_ GUARDED_BY(mu_) = 0;
  int probe_successes_ GUARDED_BY(mu_) = 0;
  uint64_t short_circuited_ GUARDED_BY(mu_) = 0;
  obs::Gauge* obs_state_ = nullptr;
  obs::Counter* obs_short_circuit_ = nullptr;
  obs::Counter* obs_probes_ = nullptr;
  obs::Counter* obs_to_open_ = nullptr;
  obs::Counter* obs_to_half_open_ = nullptr;
  obs::Counter* obs_to_closed_ = nullptr;
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_BREAKER_H_
