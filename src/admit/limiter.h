#ifndef DSTORE_ADMIT_LIMITER_H_
#define DSTORE_ADMIT_LIMITER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace dstore {
namespace admit {

// AIMD adaptive concurrency limiter (the TCP congestion-control recipe
// applied to request admission, as in Netflix's concurrency-limits). The
// limit grows additively while operations succeed and shrinks
// multiplicatively on overload signals (TimedOut / Unavailable /
// Overloaded), so the limit converges on the concurrency the backend can
// actually sustain instead of a hand-tuned constant.
//
// Deterministic: the limit is a pure function of the sequence of
// TryAcquire/Release calls (no randomness, no wall clock), so unit tests
// replay exact trajectories. Thread-safe.
class AdaptiveLimiter {
 public:
  struct Options {
    std::string name = "limiter";  // metrics label
    double initial_limit = 16;
    double min_limit = 1;
    double max_limit = 1024;
    // Additive increase: each success adds increase_per_success / limit, so
    // the limit grows by ~1 per "window" of `limit` successes.
    double increase_per_success = 1.0;
    // Multiplicative decrease on an overload signal. After a decrease,
    // further failures are ignored until `limit` more operations complete —
    // one overload burst causes one backoff step, not a collapse straight
    // to min_limit.
    double decrease_ratio = 0.5;
    bool publish_metrics = true;
  };

  explicit AdaptiveLimiter(const Options& options);

  // Claims an in-flight slot; false means the caller sheds (Overloaded).
  // Every true return must be paired with exactly one Release().
  bool TryAcquire();

  // Completes an operation admitted by TryAcquire and feeds its outcome to
  // the AIMD controller. Statuses that signal overload shrink the limit;
  // everything else (including application errors like NotFound) counts as
  // a success for admission purposes.
  void Release(const Status& status);

  // True for the status codes the controller treats as overload.
  static bool IsOverloadSignal(const Status& status) {
    return status.IsTimedOut() || status.IsUnavailable() ||
           status.IsOverloaded();
  }

  double limit() const;
  int64_t in_flight() const;
  uint64_t rejected_total() const;

  std::string DebugLine() const;

 private:
  const Options options_;
  mutable Mutex mu_;
  double limit_ GUARDED_BY(mu_);
  int64_t in_flight_ GUARDED_BY(mu_) = 0;
  // Operations completed since the last decrease; gates the cooldown.
  // Initialized to the full window so the first overload signal bites.
  int64_t since_decrease_ GUARDED_BY(mu_);
  uint64_t rejected_ GUARDED_BY(mu_) = 0;
  obs::Gauge* obs_limit_ = nullptr;
  obs::Gauge* obs_in_flight_ = nullptr;
  obs::Counter* obs_rejected_ = nullptr;
  obs::Counter* obs_decreases_ = nullptr;
};

}  // namespace admit
}  // namespace dstore

#endif  // DSTORE_ADMIT_LIMITER_H_
