#include "admit/breaker.h"

#include <cstdio>
#include <optional>
#include <utility>

#include "admit/limiter.h"

namespace dstore {
namespace admit {

CircuitBreaker::CircuitBreaker(const Options& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Default()) {
  if (options_.publish_metrics) {
    auto* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"breaker", options_.name}};
    obs_state_ = registry->GetGauge(
        "dstore_admit_breaker_state", labels,
        "Breaker state: 0 closed, 1 open, 2 half-open.");
    obs_short_circuit_ = registry->GetCounter(
        "dstore_admit_breaker_shortcircuit_total", labels,
        "Requests rejected without reaching the backend.");
    obs_probes_ = registry->GetCounter(
        "dstore_admit_breaker_probes_total", labels,
        "Probe requests admitted while half-open.");
    obs_to_open_ = registry->GetCounter(
        "dstore_admit_breaker_transitions_total",
        {{"breaker", options_.name}, {"to", "open"}},
        "Breaker state transitions.");
    obs_to_half_open_ = registry->GetCounter(
        "dstore_admit_breaker_transitions_total",
        {{"breaker", options_.name}, {"to", "half_open"}},
        "Breaker state transitions.");
    obs_to_closed_ = registry->GetCounter(
        "dstore_admit_breaker_transitions_total",
        {{"breaker", options_.name}, {"to", "closed"}},
        "Breaker state transitions.");
    obs_state_->Set(0);
  }
}

std::string_view CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::TransitionLocked(State to) {
  state_ = to;
  switch (to) {
    case State::kClosed:
      consecutive_failures_ = 0;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      if (obs_to_closed_ != nullptr) obs_to_closed_->Increment();
      break;
    case State::kOpen:
      open_until_nanos_ = clock_->NowNanos() + options_.open_nanos;
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      if (obs_to_open_ != nullptr) obs_to_open_->Increment();
      break;
    case State::kHalfOpen:
      probes_in_flight_ = 0;
      probe_successes_ = 0;
      if (obs_to_half_open_ != nullptr) obs_to_half_open_->Increment();
      break;
  }
  if (obs_state_ != nullptr) obs_state_->Set(static_cast<double>(to));
}

Status CircuitBreaker::Admit() {
  // An injected trip simulates a spurious breaker opening — the chaos suite
  // then verifies the recovery path (open -> half-open -> closed).
  std::optional<fault::Fault> injected;
  if (options_.fault_plan != nullptr) {
    injected = options_.fault_plan->Evaluate("admit.breaker", "admit");
  }
  std::optional<State> notify;
  Status result = Status::OK();
  {
    MutexLock lock(mu_);
    if (injected.has_value() && injected->kind == fault::FaultKind::kError &&
        state_ != State::kOpen) {
      TransitionLocked(State::kOpen);
      notify = State::kOpen;
    }
    switch (state_) {
      case State::kClosed:
        break;
      case State::kOpen:
        if (clock_->NowNanos() >= open_until_nanos_) {
          TransitionLocked(State::kHalfOpen);
          notify = State::kHalfOpen;
          ++probes_in_flight_;
          if (obs_probes_ != nullptr) obs_probes_->Increment();
        } else {
          ++short_circuited_;
          if (obs_short_circuit_ != nullptr) obs_short_circuit_->Increment();
          result =
              Status::Overloaded("circuit breaker " + options_.name + " open");
        }
        break;
      case State::kHalfOpen:
        if (probes_in_flight_ < options_.half_open_probes) {
          ++probes_in_flight_;
          if (obs_probes_ != nullptr) obs_probes_->Increment();
        } else {
          ++short_circuited_;
          if (obs_short_circuit_ != nullptr) obs_short_circuit_->Increment();
          result = Status::Overloaded("circuit breaker " + options_.name +
                                      " half-open, probes busy");
        }
        break;
    }
  }
  if (notify.has_value() && options_.on_state_change) {
    options_.on_state_change(*notify);
  }
  return result;
}

void CircuitBreaker::OnResult(const Status& status) {
  const bool failure = AdaptiveLimiter::IsOverloadSignal(status);
  std::optional<State> notify;
  {
    MutexLock lock(mu_);
    switch (state_) {
      case State::kClosed:
        if (failure) {
          if (++consecutive_failures_ >= options_.failure_threshold) {
            TransitionLocked(State::kOpen);
            notify = State::kOpen;
          }
        } else {
          consecutive_failures_ = 0;
        }
        break;
      case State::kHalfOpen:
        if (probes_in_flight_ > 0) --probes_in_flight_;
        if (failure) {
          TransitionLocked(State::kOpen);
          notify = State::kOpen;
        } else if (++probe_successes_ >= options_.success_threshold) {
          TransitionLocked(State::kClosed);
          notify = State::kClosed;
        }
        break;
      case State::kOpen:
        // A straggler admitted before the circuit opened; its outcome
        // carries no new information.
        break;
    }
  }
  if (notify.has_value() && options_.on_state_change) {
    options_.on_state_change(*notify);
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::short_circuited_total() const {
  MutexLock lock(mu_);
  return short_circuited_;
}

std::string CircuitBreaker::DebugLine() const {
  MutexLock lock(mu_);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "breaker %-16s state=%-9s failures=%d short_circuited=%llu",
                options_.name.c_str(),
                std::string(StateName(state_)).c_str(), consecutive_failures_,
                static_cast<unsigned long long>(short_circuited_));
  return buf;
}

}  // namespace admit
}  // namespace dstore
