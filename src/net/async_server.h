#ifndef DSTORE_NET_ASYNC_SERVER_H_
#define DSTORE_NET_ASYNC_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "net/http.h"

namespace dstore {

// The event-driven server core that replaces thread-per-connection
// ThreadedServer for the cloud, cache, and SQL servers. A small pool of
// reactor I/O threads (net/reactor.h) multiplexes thousands of connections
// with edge-triggered epoll; parsed requests are dispatched onto a
// ListenableFuture worker pool so a slow handler (queue wait, simulated WAN
// delay, SQL execution) never blocks an I/O thread; responses to pipelined
// requests on one connection are written strictly in request order.
//
// Behavioral contracts preserved from the threaded core:
//  - the socket fault injector fires on accept/read/write (refusals,
//    mid-message resets, short writes, stalls);
//  - handlers run with whatever ambient state they establish themselves
//    (deadline, trace) — one handler invocation per request, on one worker
//    thread;
//  - Stop() joins the I/O threads and drains in-flight handlers with no
//    fd-reuse races (a connection's descriptor stays open until the last
//    reference to the connection drops);
//  - the dstore_server_connections_total / dstore_server_active_connections
//    / dstore_admit_conn_shed_total metrics keep their names and labels.

// Handles one parsed HTTP request; runs on a worker thread.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// Handles one length-prefixed frame payload (see net/framing.h); runs on a
// worker thread and returns the response payload.
using FramedHandler = std::function<Bytes(const Bytes&)>;

// Transport engine behind a server. The threaded core remains available as
// a test-only fallback for this transition (net/server.h) and is exercised
// by the net test family to pin down shared behavior.
enum class ServerCore { kAsync, kThreaded };

// kAsync unless the environment says otherwise (DSTORE_SERVER_CORE=threaded
// — an escape hatch while the async core beds in).
ServerCore DefaultServerCore();

struct AsyncServerOptions {
  // Metrics label; empty = metrics not published.
  std::string component;
  // Reactor (epoll loop) threads multiplexing the connections.
  int io_threads = 2;
  // Worker threads running handlers. Servers fronted by an
  // admit::ServerQueue must size this at least max_concurrency +
  // max_queue_depth: a queued request blocks its worker in
  // ServerQueue::Enter, and with pipelining the number of concurrently
  // outstanding requests is bounded by admission capacity, not by
  // connection count (see docs/udsm_guide.md §11). 0 = a small default.
  int worker_threads = 0;
  // Pipelining depth: parsed-but-unanswered requests allowed per connection
  // before the server stops reading from it (backpressure).
  size_t max_in_flight_per_connection = 32;
  // Unsent response bytes buffered per connection before the server stops
  // reading from it (slow-reader backpressure).
  size_t max_output_buffer_bytes = 4u << 20;
  // Live-connection cap; beyond it fresh accepts are counted in
  // dstore_admit_conn_shed_total and closed. 0 = unlimited.
  int max_connections = 0;
  // Which engine serves the traffic.
  ServerCore core = DefaultServerCore();
};

// Minimal lifecycle interface shared by both cores, so a server class holds
// one pointer regardless of engine.
class Server {
 public:
  virtual ~Server() = default;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  virtual Status Start(uint16_t port) = 0;

  // Stops accepting, tears down connections, joins all threads. Idempotent.
  virtual void Stop() = 0;

  virtual bool running() const = 0;
  virtual uint16_t port() const = 0;

  // Introspection for the backpressure tests: connections currently
  // registered / reads currently paused by per-connection limits. The
  // threaded core reports {active connections, 0}.
  virtual size_t ConnectionCount() const = 0;
  virtual size_t PausedConnectionCount() const = 0;
};

// Builds a server speaking HTTP/1.1 with keep-alive and pipelining.
std::unique_ptr<Server> MakeHttpServer(HttpHandler handler,
                                       AsyncServerOptions options = {});

// Builds a server speaking the 4-byte length-prefixed frame protocol.
std::unique_ptr<Server> MakeFramedServer(FramedHandler handler,
                                         AsyncServerOptions options = {});

}  // namespace dstore

#endif  // DSTORE_NET_ASYNC_SERVER_H_
