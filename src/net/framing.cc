#include "net/framing.h"

namespace dstore {

Status WriteFrame(Socket* socket, const Bytes& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload too large");
  }
  Bytes header;
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  DSTORE_RETURN_IF_ERROR(socket->WriteFull(header));
  return socket->WriteFull(payload);
}

StatusOr<Bytes> ReadFrame(Socket* socket) {
  uint8_t header[4];
  DSTORE_RETURN_IF_ERROR(socket->ReadFull(header, 4));
  const uint32_t len = DecodeFixed32(header);
  if (len > kMaxFrameBytes) {
    return Status::Corruption("frame length exceeds limit");
  }
  Bytes payload(len);
  if (len > 0) {
    DSTORE_RETURN_IF_ERROR(socket->ReadFull(payload.data(), len));
  }
  return payload;
}

}  // namespace dstore
