#include "net/async_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/listenable_future.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "fault/fault.h"
#include "net/framing.h"
#include "net/reactor.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace dstore {

ServerCore DefaultServerCore() {
  const char* env = std::getenv("DSTORE_SERVER_CORE");
  if (env != nullptr && std::string_view(env) == "threaded") {
    return ServerCore::kThreaded;
  }
  return ServerCore::kAsync;
}

namespace {

// ---------------------------------------------------------------------------
// Protocol codecs. A parser consumes exactly one request from the front of
// a byte buffer; on success it yields a closure that runs the user handler
// and returns the fully serialized response bytes. Framing is folded into
// the closure so the connection machinery below deals only in opaque bytes
// and works for both protocols.
// ---------------------------------------------------------------------------

enum class ParseOutcome { kNeedMore, kParsed, kError };

using RequestTask = std::function<Bytes()>;
using Parser = std::function<ParseOutcome(const uint8_t* data, size_t size,
                                          size_t* consumed, RequestTask* task)>;

// The parser closures run on reactor loop threads (from
// Connection::ReadLocked), so both factories are DSTORE_NONBLOCKING_CTX
// roots: nothing a parser reaches may block. The request task they yield is
// NOT covered — it runs on the worker pool.
Parser MakeHttpParser(HttpHandler handler) DSTORE_NONBLOCKING_CTX;
Parser MakeFramedParser(FramedHandler handler) DSTORE_NONBLOCKING_CTX;

Parser MakeHttpParser(HttpHandler handler) {
  auto shared = std::make_shared<HttpHandler>(std::move(handler));
  return [shared](const uint8_t* data, size_t size, size_t* consumed,
                  RequestTask* task) {
    HttpRequest request;
    switch (ParseHttpRequest(data, size, &request, consumed)) {
      case HttpParseOutcome::kNeedMore:
        return ParseOutcome::kNeedMore;
      case HttpParseOutcome::kError:
        return ParseOutcome::kError;
      case HttpParseOutcome::kParsed:
        break;
    }
    *task = [shared, request = std::move(request)]() {
      Bytes out;
      SerializeHttpResponse((*shared)(request), &out);
      return out;
    };
    return ParseOutcome::kParsed;
  };
}

Parser MakeFramedParser(FramedHandler handler) {
  auto shared = std::make_shared<FramedHandler>(std::move(handler));
  return [shared](const uint8_t* data, size_t size, size_t* consumed,
                  RequestTask* task) {
    if (size < 4) return ParseOutcome::kNeedMore;
    const uint32_t length = DecodeFixed32(data);
    if (length > kMaxFrameBytes) return ParseOutcome::kError;
    if (size - 4 < length) return ParseOutcome::kNeedMore;
    Bytes payload(data + 4, data + 4 + length);
    *consumed = 4 + static_cast<size_t>(length);
    *task = [shared, payload = std::move(payload)]() {
      const Bytes response = (*shared)(payload);
      Bytes out;
      PutFixed32(&out, static_cast<uint32_t>(response.size()));
      out.insert(out.end(), response.begin(), response.end());
      return out;
    };
    return ParseOutcome::kParsed;
  };
}

// ---------------------------------------------------------------------------
// Descriptor I/O. ReadChunk/WriteChunk are pure nonblocking syscall loops —
// safe on a reactor loop thread. Fault-injector consultation lives in the
// callers: the async Connection consults in its locked read/flush paths and
// defers injected stalls through Reactor::RunAfter (a loop thread must
// never sleep — the watchdog and the blocking-context check both police
// this), while the threaded fallback consults inline and may legally sleep
// on its per-connection thread. Injected resets become shutdown(), which
// puts the same FIN on the wire as the blocking path's close(), because the
// Connection owns its descriptor until the last reference drops (the
// fd-reuse guarantee).
// ---------------------------------------------------------------------------

struct IoResult {
  enum Kind { kOk, kEof, kWouldBlock, kError } kind = kOk;
  size_t n = 0;  // bytes transferred (writes may move bytes before kError)
};

// Applies an injected stall by sleeping. Only the threaded core (own thread
// per connection) may call this; the async core turns stalls into reactor
// timers instead.
void Stall(const fault::SocketFault& f) DSTORE_BLOCKING {
  if (f.stall_nanos > 0) RealClock::Default()->SleepFor(f.stall_nanos);
}

IoResult ReadChunk(int fd, uint8_t* buf, size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n > 0) return {IoResult::kOk, static_cast<size_t>(n)};
    if (n == 0) return {IoResult::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::kWouldBlock, 0};
    }
    return {IoResult::kError, 0};
  }
}

IoResult WriteChunk(int fd, const uint8_t* data, size_t len) {
  size_t written = 0;
  while (written < len) {
    const ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoResult::kWouldBlock, written};
    }
    return {IoResult::kError, written};
  }
  return {IoResult::kOk, written};
}

// The error half of an injected write fault (the short-write prefix that
// escapes before the failure, so the peer sees a torn frame — same contract
// as Socket::WriteFull — plus the optional reset).
void ApplyWriteFault(int fd, const fault::SocketFault& f, const uint8_t* data,
                     size_t len) {
  size_t prefix = std::min(f.allow_prefix, len);
  const uint8_t* p = data;
  while (prefix > 0) {
    const ssize_t n = ::send(fd, p, prefix, MSG_NOSIGNAL);
    if (n <= 0) break;
    p += n;
    prefix -= static_cast<size_t>(n);
  }
  if (f.reset) ::shutdown(fd, SHUT_RDWR);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError(std::string("fcntl(O_NONBLOCK): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

// Shared metrics bundle (same names and labels as ThreadedServer publishes,
// so dashboards and tests are core-agnostic).
struct ServerMetrics {
  obs::Counter* connections_total = nullptr;
  obs::Gauge* active_connections = nullptr;
  obs::Counter* conn_shed_total = nullptr;

  explicit ServerMetrics(const std::string& component) {
    if (component.empty()) return;
    obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
    const obs::Labels labels = {{"server", component}};
    connections_total = registry->GetCounter(
        "dstore_server_connections_total", labels,
        "Connections accepted since process start.");
    active_connections = registry->GetGauge(
        "dstore_server_active_connections", labels,
        "Connections currently being served.");
    conn_shed_total = registry->GetCounter(
        "dstore_admit_conn_shed_total", labels,
        "Connections shed at accept: connection limit reached.");
  }
};

// ---------------------------------------------------------------------------
// The async core.
// ---------------------------------------------------------------------------

class AsyncServer : public Server {
 public:
  AsyncServer(Parser parser, AsyncServerOptions options)
      : parser_(std::move(parser)),
        options_(std::move(options)),
        metrics_(options_.component) {
    if (options_.io_threads < 1) options_.io_threads = 1;
    if (options_.max_in_flight_per_connection == 0) {
      options_.max_in_flight_per_connection = 1;
    }
  }

  ~AsyncServer() override { Stop(); }

  Status Start(uint16_t port) override;
  void Stop() override;

  bool running() const override { return running_.load(); }
  uint16_t port() const override { return listener_.port(); }

  size_t ConnectionCount() const override {
    MutexLock lock(mu_);
    return connections_.size();
  }
  size_t PausedConnectionCount() const override { return paused_count_.load(); }

 private:
  class Connection;

  int listener_fd() const { return listener_.fd(); }
  void OnAcceptable() DSTORE_NONBLOCKING_CTX;
  // Takes ownership of a freshly accepted descriptor: applies the
  // connection limit, creates the Connection, and registers it with a
  // reactor. Runs on the accept loop thread (directly from OnAcceptable,
  // or from a reactor timer when an injected accept stall deferred it).
  void RegisterAccepted(int fd) DSTORE_NONBLOCKING_CTX;
  void EraseConnection(uint64_t id);

  Parser parser_;
  AsyncServerOptions options_;
  ServerMetrics metrics_;
  ServerSocket listener_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unique_ptr<ThreadPool> workers_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> next_reactor_{0};
  std::atomic<size_t> paused_count_{0};
  mutable Mutex mu_;
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, std::shared_ptr<Connection>> connections_ GUARDED_BY(mu_);
};

// One multiplexed connection. All reactor events for this fd arrive on one
// loop thread; handler completions arrive on worker threads, so the state
// below is guarded by a per-connection mutex (contention is a single
// completion against a parse — negligible). The descriptor is closed only
// by the destructor: any late completion still holding a shared_ptr keeps
// the fd number reserved, so a freshly accepted connection can never be
// aliased by a stale writer (the fd-reuse race ThreadedServer documents).
class AsyncServer::Connection
    : public std::enable_shared_from_this<AsyncServer::Connection> {
 public:
  Connection(AsyncServer* server, uint64_t id, int fd, Reactor* reactor)
      : server_(server), id_(id), fd_(fd), reactor_(reactor) {}

  ~Connection() { ::close(fd_); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }

  // Reactor-thread entry point for readiness events.
  void OnEvent(uint32_t events) EXCLUDES(mu_) DSTORE_NONBLOCKING_CTX;

  // Reactor-timer entry points: an injected stall on this connection's
  // read/write path has elapsed; apply the deferred fault outcome and
  // continue. Loop-thread only.
  void ResumeRead() EXCLUDES(mu_) DSTORE_NONBLOCKING_CTX;
  void ResumeWrite() EXCLUDES(mu_) DSTORE_NONBLOCKING_CTX;

  // Worker-thread entry point: response for request `seq` is ready.
  void CompleteRequest(uint64_t seq, Bytes response) EXCLUDES(mu_);

  // Marks the connection closed and shuts the socket down (Stop() path;
  // reactors may already be joined, so no epoll deregistration happens).
  void ForceClose() EXCLUDES(mu_);

 private:
  void ReadLocked(std::vector<std::pair<uint64_t, RequestTask>>* to_dispatch)
      REQUIRES(mu_) DSTORE_NONBLOCKING_CTX;
  void FlushLocked() REQUIRES(mu_) DSTORE_NONBLOCKING_CTX;
  // Consults the socket fault injector for the next read/write chunk.
  // Returns false when the caller must stop (a stall timer was scheduled,
  // or an injected error closed the connection). A stall parks the
  // connection (read_stalled_/write_stalled_) and schedules Resume* via
  // Reactor::RunAfter, so the loop thread keeps serving every other
  // connection while this one waits out its fault.
  bool ConsultReadFaultLocked(size_t cap) REQUIRES(mu_);
  bool ConsultWriteFaultLocked() REQUIRES(mu_);
  // Drains completed responses (in seq order) into the output buffer.
  void PromotePendingLocked() REQUIRES(mu_);
  bool ShouldPauseLocked() const REQUIRES(mu_) {
    return in_flight_ >= server_->options_.max_in_flight_per_connection ||
           outbuf_.size() - out_pos_ >
               server_->options_.max_output_buffer_bytes;
  }
  void UpdatePausedLocked() REQUIRES(mu_);
  void CloseLocked() REQUIRES(mu_);
  // True when the peer half-closed, every pipelined response has been
  // written, and nothing is still in flight — time to tear down.
  // `parse_blocked_` keeps a half-closed connection alive while complete
  // requests sit unparsed behind a backpressure pause: the resume will
  // parse and answer them before this fires.
  bool DrainedLocked() const REQUIRES(mu_) {
    return read_closed_ && !parse_blocked_ && in_flight_ == 0 &&
           pending_.empty() && out_pos_ >= outbuf_.size();
  }
  // Common epilogue: dispatch parsed requests, resume paused reads, and
  // deregister a connection that closed during `body`.
  void Epilogue(std::vector<std::pair<uint64_t, RequestTask>> to_dispatch,
                bool resume_read, bool close_now) EXCLUDES(mu_);

  AsyncServer* const server_;
  const uint64_t id_;
  const int fd_;
  Reactor* const reactor_;
  mutable Mutex mu_;
  Bytes inbuf_ GUARDED_BY(mu_);
  size_t parse_pos_ GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ GUARDED_BY(mu_) = 0;       // next request sequence
  uint64_t next_to_write_ GUARDED_BY(mu_) = 0;  // next response to emit
  std::map<uint64_t, Bytes> pending_ GUARDED_BY(mu_);  // out-of-order done
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  Bytes outbuf_ GUARDED_BY(mu_);
  size_t out_pos_ GUARDED_BY(mu_) = 0;
  bool want_write_ GUARDED_BY(mu_) = false;  // EPOLLOUT armed
  bool paused_ GUARDED_BY(mu_) = false;      // reads suspended (backpressure)
  // The parse loop stopped at the in-flight cap with bytes still buffered
  // (as opposed to stopping for lack of a complete request).
  bool parse_blocked_ GUARDED_BY(mu_) = false;
  bool read_closed_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
  // Injected-stall deferral state. While *_stalled_ is set the matching
  // I/O direction is parked until the Resume* timer fires and applies the
  // saved post-stall fault outcome; skip_*_consult_ then suppresses exactly
  // one re-consultation so the injector still sees one consult per chunk
  // (the contract the chaos plans and tests count on).
  bool read_stalled_ GUARDED_BY(mu_) = false;
  bool write_stalled_ GUARDED_BY(mu_) = false;
  bool skip_read_consult_ GUARDED_BY(mu_) = false;
  bool skip_write_consult_ GUARDED_BY(mu_) = false;
  fault::SocketFault pending_read_fault_ GUARDED_BY(mu_);
  fault::SocketFault pending_write_fault_ GUARDED_BY(mu_);
};

void AsyncServer::Connection::OnEvent(uint32_t events) {
  std::vector<std::pair<uint64_t, RequestTask>> to_dispatch;
  bool close_now = false;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    if ((events & EPOLLERR) != 0) {
      CloseLocked();
    } else {
      if ((events & EPOLLOUT) != 0 && out_pos_ < outbuf_.size()) {
        FlushLocked();
      }
      if (!closed_) {
        // A drained output buffer may lift the backpressure pause; this
        // already is the loop thread, so resume reading inline (ReadLocked
        // no-ops while paused or half-closed).
        UpdatePausedLocked();
        ReadLocked(&to_dispatch);
      }
      if (!closed_) {
        UpdatePausedLocked();
        if (DrainedLocked()) CloseLocked();
      }
    }
    close_now = closed_;
  }
  Epilogue(std::move(to_dispatch), /*resume_read=*/false, close_now);
}

bool AsyncServer::Connection::ConsultReadFaultLocked(size_t cap) {
  if (skip_read_consult_) {
    // The stall that just elapsed already consulted for this chunk.
    skip_read_consult_ = false;
    return true;
  }
  auto injector = fault::InstalledSocketFaultInjector();
  if (injector == nullptr) return true;
  auto f = injector->OnRead(cap);
  if (!f) return true;
  if (f->stall_nanos > 0) {
    // Defer: park this connection's read path and let the loop thread keep
    // serving its other connections. ResumeRead applies the post-stall
    // outcome (error/reset or a normal read) when the timer fires.
    read_stalled_ = true;
    pending_read_fault_ = *f;
    reactor_->RunAfter(f->stall_nanos,
                       [self = shared_from_this()] { self->ResumeRead(); });
    return false;
  }
  if (!f->error.ok()) {
    if (f->reset) ::shutdown(fd_, SHUT_RDWR);
    CloseLocked();
    return false;
  }
  return true;
}

bool AsyncServer::Connection::ConsultWriteFaultLocked() {
  if (skip_write_consult_) {
    skip_write_consult_ = false;
    return true;
  }
  auto injector = fault::InstalledSocketFaultInjector();
  if (injector == nullptr) return true;
  auto f = injector->OnWrite(outbuf_.size() - out_pos_);
  if (!f) return true;
  if (f->stall_nanos > 0) {
    write_stalled_ = true;
    pending_write_fault_ = *f;
    reactor_->RunAfter(f->stall_nanos,
                       [self = shared_from_this()] { self->ResumeWrite(); });
    return false;
  }
  if (!f->error.ok()) {
    ApplyWriteFault(fd_, *f, outbuf_.data() + out_pos_,
                    outbuf_.size() - out_pos_);
    CloseLocked();
    return false;
  }
  return true;
}

void AsyncServer::Connection::ResumeRead() {
  std::vector<std::pair<uint64_t, RequestTask>> to_dispatch;
  bool close_now = false;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    read_stalled_ = false;
    const fault::SocketFault f = pending_read_fault_;
    pending_read_fault_ = fault::SocketFault{};
    if (!f.error.ok()) {
      if (f.reset) ::shutdown(fd_, SHUT_RDWR);
      CloseLocked();
    } else {
      // The stall was the whole fault: read the chunk it delayed without
      // consulting again (one consult per chunk, stall or not).
      skip_read_consult_ = true;
      UpdatePausedLocked();
      ReadLocked(&to_dispatch);
      if (!closed_) {
        UpdatePausedLocked();
        if (DrainedLocked()) CloseLocked();
      }
    }
    close_now = closed_;
  }
  Epilogue(std::move(to_dispatch), /*resume_read=*/false, close_now);
}

void AsyncServer::Connection::ResumeWrite() {
  bool resume_read = false;
  bool close_now = false;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    write_stalled_ = false;
    const fault::SocketFault f = pending_write_fault_;
    pending_write_fault_ = fault::SocketFault{};
    if (!f.error.ok()) {
      ApplyWriteFault(fd_, f, outbuf_.data() + out_pos_,
                      outbuf_.size() - out_pos_);
      CloseLocked();
    } else {
      skip_write_consult_ = true;
      FlushLocked();
      if (!closed_) {
        const bool was_paused = paused_;
        UpdatePausedLocked();
        resume_read = was_paused && !paused_;
        if (DrainedLocked()) CloseLocked();
      }
    }
    close_now = closed_;
  }
  Epilogue({}, resume_read, close_now);
}

void AsyncServer::Connection::ReadLocked(
    std::vector<std::pair<uint64_t, RequestTask>>* to_dispatch) {
  uint8_t chunk[16384];
  if (read_stalled_) return;  // a ResumeRead timer owns this path
  for (;;) {
    // Parse before reading: a read resumed after a backpressure pause
    // starts with complete requests already sitting in the buffer, and an
    // edge-triggered epoll will never re-announce them.
    parse_blocked_ = false;
    while (!paused_ && !closed_) {
      size_t consumed = 0;
      RequestTask task;
      const ParseOutcome outcome =
          server_->parser_(inbuf_.data() + parse_pos_,
                           inbuf_.size() - parse_pos_, &consumed, &task);
      if (outcome == ParseOutcome::kNeedMore) break;
      if (outcome == ParseOutcome::kError) {
        // Poisoned stream: answer what was already dispatched, read no
        // further (the blocking core likewise drops the connection).
        read_closed_ = true;
        break;
      }
      parse_pos_ += consumed;
      const uint64_t seq = next_seq_++;
      ++in_flight_;
      to_dispatch->emplace_back(seq, std::move(task));
      UpdatePausedLocked();
    }
    parse_blocked_ = paused_ && parse_pos_ < inbuf_.size();
    if (parse_pos_ > 0 && (parse_pos_ == inbuf_.size() ||
                           parse_pos_ >= (1u << 20))) {
      inbuf_.erase(inbuf_.begin(),
                   inbuf_.begin() + static_cast<ptrdiff_t>(parse_pos_));
      parse_pos_ = 0;
    }
    if (paused_ || read_closed_ || closed_) return;

    if (!ConsultReadFaultLocked(sizeof(chunk))) return;
    const IoResult r = ReadChunk(fd_, chunk, sizeof(chunk));
    if (r.kind == IoResult::kWouldBlock) return;
    if (r.kind == IoResult::kEof) {
      // Half-close: the peer finished sending but still expects the
      // responses to its pipelined requests; drain before closing.
      read_closed_ = true;
      return;
    }
    if (r.kind == IoResult::kError) {
      CloseLocked();
      return;
    }
    inbuf_.insert(inbuf_.end(), chunk, chunk + r.n);
  }
}

void AsyncServer::Connection::PromotePendingLocked() {
  for (auto it = pending_.find(next_to_write_); it != pending_.end();
       it = pending_.find(next_to_write_)) {
    outbuf_.insert(outbuf_.end(), it->second.begin(), it->second.end());
    pending_.erase(it);
    ++next_to_write_;
    --in_flight_;
  }
}

void AsyncServer::Connection::FlushLocked() {
  if (closed_ || write_stalled_) return;  // ResumeWrite owns a stalled flush
  while (out_pos_ < outbuf_.size()) {
    if (!ConsultWriteFaultLocked()) return;
    const IoResult r =
        WriteChunk(fd_, outbuf_.data() + out_pos_, outbuf_.size() - out_pos_);
    out_pos_ += r.n;
    if (r.kind == IoResult::kOk) continue;
    if (r.kind == IoResult::kWouldBlock) {
      if (!want_write_) {
        want_write_ = true;
        (void)reactor_->Modify(fd_, EPOLLIN | EPOLLOUT);
      }
      return;
    }
    CloseLocked();
    return;
  }
  outbuf_.clear();
  out_pos_ = 0;
  if (want_write_) {
    want_write_ = false;
    (void)reactor_->Modify(fd_, EPOLLIN);
  }
}

void AsyncServer::Connection::UpdatePausedLocked() {
  const bool should = ShouldPauseLocked();
  if (should == paused_) return;
  paused_ = should;
  if (should) {
    server_->paused_count_.fetch_add(1);
  } else {
    server_->paused_count_.fetch_sub(1);
  }
}

void AsyncServer::Connection::CloseLocked() {
  if (closed_) return;
  closed_ = true;
  if (paused_) {
    paused_ = false;
    server_->paused_count_.fetch_sub(1);
  }
  reactor_->Remove(fd_);
  ::shutdown(fd_, SHUT_RDWR);
}

void AsyncServer::Connection::Epilogue(
    std::vector<std::pair<uint64_t, RequestTask>> to_dispatch,
    bool resume_read, bool close_now) {
  // Dispatch outside mu_: a task that completes before AddListener returns
  // runs its listener inline on this thread, and CompleteRequest takes mu_.
  for (auto& [seq, task] : to_dispatch) {
    auto self = shared_from_this();
    RunAsync<Bytes>(server_->workers_.get(), std::move(task))
        .AddListener([self, seq](const Bytes& response) {
          self->CompleteRequest(seq, response);
        });
  }
  if (resume_read) {
    // Edge-triggered epoll will not re-report bytes that are already
    // buffered, so a read resumed after backpressure re-enters the read
    // path on the loop thread explicitly.
    reactor_->RunInLoop(
        [self = shared_from_this()] { self->OnEvent(EPOLLIN); });
  }
  if (close_now) server_->EraseConnection(id_);
}

void AsyncServer::Connection::CompleteRequest(uint64_t seq, Bytes response) {
  bool resume_read = false;
  bool close_now = false;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    pending_[seq] = std::move(response);
    PromotePendingLocked();
    FlushLocked();
    if (!closed_) {
      const bool was_paused = paused_;
      UpdatePausedLocked();
      resume_read = was_paused && !paused_;
      if (DrainedLocked()) CloseLocked();
    }
    close_now = closed_;
  }
  Epilogue({}, resume_read, close_now);
}

void AsyncServer::Connection::ForceClose() {
  MutexLock lock(mu_);
  if (closed_) return;
  closed_ = true;
  if (paused_) {
    paused_ = false;
    server_->paused_count_.fetch_sub(1);
  }
  ::shutdown(fd_, SHUT_RDWR);
}

Status AsyncServer::Start(uint16_t port) {
  if (running_.load()) return Status::AlreadyExists("server already running");
  DSTORE_ASSIGN_OR_RETURN(listener_, ServerSocket::Listen(port));
  DSTORE_RETURN_IF_ERROR(SetNonBlocking(listener_fd()));

  int workers = options_.worker_threads;
  if (workers <= 0) workers = 4;
  workers_ = std::make_unique<ThreadPool>(static_cast<size_t>(workers));

  reactors_.clear();
  for (int i = 0; i < options_.io_threads; ++i) {
    reactors_.push_back(std::make_unique<Reactor>());
    const Status status = reactors_.back()->Start();
    if (!status.ok()) {
      Stop();
      return status;
    }
  }
  running_.store(true);
  const Status status = reactors_[0]->Add(listener_fd(), EPOLLIN,
                                          [this](uint32_t) { OnAcceptable(); });
  if (!status.ok()) {
    Stop();
    return status;
  }
  // Connections may have raced in between listen() and the epoll
  // registration; ET semantics only report readiness transitions, so sweep
  // the backlog once by hand.
  reactors_[0]->RunInLoop([this] { OnAcceptable(); });
  return Status::OK();
}

void AsyncServer::Stop() {
  if (!running_.exchange(false)) {
    // Not started (or already stopped); still reap any leftover state from
    // a failed Start().
  }
  if (!reactors_.empty() && listener_.valid()) {
    reactors_[0]->Remove(listener_fd());
  }
  listener_.Close();
  // Join the I/O threads first: afterwards no reactor callback can touch a
  // connection, so the remaining in-flight work is only handler tasks.
  for (auto& reactor : reactors_) reactor->Stop();
  std::map<uint64_t, std::shared_ptr<Connection>> connections;
  {
    MutexLock lock(mu_);
    connections.swap(connections_);
  }
  for (auto& [id, connection] : connections) {
    connection->ForceClose();
    if (metrics_.active_connections != nullptr) {
      metrics_.active_connections->Decrement();
    }
  }
  // Drains queued and running handler tasks, then joins the workers. Their
  // completion listeners see closed_ connections and drop the responses.
  if (workers_ != nullptr) workers_->Shutdown();
  workers_.reset();
  reactors_.clear();
  connections.clear();  // last owner → descriptors close here
}

void AsyncServer::OnAcceptable() {
  while (running_.load()) {
    const int listener = listener_fd();
    if (listener < 0) return;
    const int fd = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (backlog drained) or listener closed
    }
    if (auto injector = fault::InstalledSocketFaultInjector()) {
      if (auto f = injector->OnAccept()) {
        if (f->stall_nanos > 0) {
          // Injected accept stall: this connection's registration waits out
          // the fault on a reactor timer while the accept loop keeps
          // draining the backlog (sleeping here would freeze every
          // connection on this loop thread). The guard closes the fd if
          // the timer is dropped at Stop() or the stall ends in an error.
          struct FdGuard {
            int fd;
            ~FdGuard() {
              if (fd >= 0) ::close(fd);
            }
          };
          auto guard = std::make_shared<FdGuard>(FdGuard{fd});
          const bool drop = !f->error.ok();
          reactors_[0]->RunAfter(f->stall_nanos, [this, guard, drop] {
            if (drop || !running_.load()) return;  // guard closes the fd
            const int accepted = guard->fd;
            guard->fd = -1;  // ownership moves to RegisterAccepted
            RegisterAccepted(accepted);
          });
          continue;
        }
        if (!f->error.ok()) {
          // Injected accept failure: drop the fresh connection on the
          // floor; the client sees EOF/reset on its next read or write.
          ::close(fd);
          continue;
        }
      }
    }
    RegisterAccepted(fd);
  }
}

void AsyncServer::RegisterAccepted(int fd) {
  {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  std::shared_ptr<Connection> connection;
  Reactor* reactor =
      reactors_[next_reactor_.fetch_add(1) % reactors_.size()].get();
  {
    MutexLock lock(mu_);
    if (options_.max_connections > 0 &&
        connections_.size() >= static_cast<size_t>(options_.max_connections)) {
      if (metrics_.conn_shed_total != nullptr) {
        metrics_.conn_shed_total->Increment();
      }
      ::close(fd);
      return;
    }
    const uint64_t id = next_conn_id_++;
    connection = std::make_shared<Connection>(this, id, fd, reactor);
    connections_.emplace(id, connection);
    if (metrics_.connections_total != nullptr) {
      metrics_.connections_total->Increment();
    }
    if (metrics_.active_connections != nullptr) {
      metrics_.active_connections->Increment();
    }
  }
  std::weak_ptr<Connection> weak = connection;
  const Status added = reactor->Add(fd, EPOLLIN, [weak](uint32_t events) {
    if (auto conn = weak.lock()) conn->OnEvent(events);
  });
  if (!added.ok()) {
    EraseConnection(connection->id());
    return;
  }
  // Bytes may already be waiting (client wrote immediately after
  // connect); ET reports transitions, so take the first read explicitly.
  reactor->RunInLoop([weak] {
    if (auto conn = weak.lock()) conn->OnEvent(EPOLLIN);
  });
}

void AsyncServer::EraseConnection(uint64_t id) {
  std::shared_ptr<Connection> victim;
  {
    MutexLock lock(mu_);
    auto it = connections_.find(id);
    if (it == connections_.end()) return;
    victim = std::move(it->second);
    connections_.erase(it);
  }
  if (metrics_.active_connections != nullptr) {
    metrics_.active_connections->Decrement();
  }
  // `victim` (and any completion listeners) may outlive this scope; the fd
  // closes when the last reference drops.
}

// ---------------------------------------------------------------------------
// Threaded fallback: the same codec and handlers served by the seed's
// thread-per-connection core. Kept for one transition PR so the net test
// family can pin both engines to identical observable behavior
// (DSTORE_SERVER_CORE=threaded selects it process-wide).
// ---------------------------------------------------------------------------

class ThreadedCoreServer : public Server {
 public:
  ThreadedCoreServer(Parser parser, AsyncServerOptions options)
      : parser_(std::move(parser)) {
    server_ = std::make_unique<ThreadedServer>(
        [this](Socket socket) { Serve(std::move(socket)); },
        options.component);
    if (options.max_connections > 0) {
      server_->SetConnectionLimit(options.max_connections);
    }
  }

  ~ThreadedCoreServer() override { Stop(); }

  Status Start(uint16_t port) override { return server_->Start(port); }
  void Stop() override { server_->Stop(); }
  bool running() const override { return server_->running(); }
  uint16_t port() const override { return server_->port(); }
  size_t ConnectionCount() const override {
    return server_->ActiveConnectionCount();
  }
  size_t PausedConnectionCount() const override { return 0; }

 private:
  void Serve(Socket socket) {
    Bytes inbuf;
    size_t pos = 0;
    for (;;) {
      size_t consumed = 0;
      RequestTask task;
      const ParseOutcome outcome =
          parser_(inbuf.data() + pos, inbuf.size() - pos, &consumed, &task);
      if (outcome == ParseOutcome::kError) return;
      if (outcome == ParseOutcome::kParsed) {
        pos += consumed;
        if (pos == inbuf.size() || pos >= (1u << 20)) {
          inbuf.erase(inbuf.begin(), inbuf.begin() + static_cast<ptrdiff_t>(pos));
          pos = 0;
        }
        // One request at a time, handler inline on the connection thread —
        // the seed behavior (a pipelined burst is still answered in order,
        // just without overlap).
        const Bytes response = task();
        if (!socket.WriteFull(response).ok()) return;
        continue;
      }
      uint8_t chunk[16384];
      // Consult the injector inline: this is the connection's own thread,
      // so an injected stall may legally sleep right here (the async core
      // defers the same stall through a reactor timer instead).
      if (auto injector = fault::InstalledSocketFaultInjector()) {
        if (auto f = injector->OnRead(sizeof(chunk))) {
          Stall(*f);
          if (!f->error.ok()) {
            if (f->reset) ::shutdown(socket.fd(), SHUT_RDWR);
            return;
          }
        }
      }
      const IoResult r = ReadChunk(socket.fd(), chunk, sizeof(chunk));
      if (r.kind != IoResult::kOk) return;  // EOF, error, or injected reset
      inbuf.insert(inbuf.end(), chunk, chunk + r.n);
    }
  }

  Parser parser_;
  std::unique_ptr<ThreadedServer> server_;
};

std::unique_ptr<Server> MakeServer(Parser parser, AsyncServerOptions options) {
  if (options.core == ServerCore::kThreaded) {
    return std::make_unique<ThreadedCoreServer>(std::move(parser),
                                                std::move(options));
  }
  return std::make_unique<AsyncServer>(std::move(parser), std::move(options));
}

}  // namespace

std::unique_ptr<Server> MakeHttpServer(HttpHandler handler,
                                       AsyncServerOptions options) {
  return MakeServer(MakeHttpParser(std::move(handler)), std::move(options));
}

std::unique_ptr<Server> MakeFramedServer(FramedHandler handler,
                                         AsyncServerOptions options) {
  return MakeServer(MakeFramedParser(std::move(handler)), std::move(options));
}

}  // namespace dstore
