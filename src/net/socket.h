#ifndef DSTORE_NET_SOCKET_H_
#define DSTORE_NET_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "common/sync.h"

namespace dstore {

// RAII TCP socket (move-only). The remote-process cache and the simulated
// cloud store both run over real sockets so client latency includes genuine
// IPC, system-call, and copy costs — the effect the paper measures when
// comparing in-process and remote-process caches.
//
// Every op below runs the descriptor in blocking mode (connect handshake,
// full-message send/recv loops): all are DSTORE_BLOCKING. The reactor path
// (src/net/reactor.h, async_server.cc) never uses these — it works on raw
// nonblocking fds.
class Socket {
 public:
  Socket() : fd_(-1) {}
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Connects to host:port (IPv4 dotted quad or "localhost").
  static StatusOr<Socket> ConnectTcp(const std::string& host,
                                     uint16_t port) DSTORE_BLOCKING;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Writes all `len` bytes or fails.
  Status WriteFull(const void* data, size_t len) DSTORE_BLOCKING;
  Status WriteFull(const Bytes& data) DSTORE_BLOCKING {
    return WriteFull(data.data(), data.size());
  }

  // Reads exactly `len` bytes or fails (EOF mid-read is an IOError).
  Status ReadFull(void* out, size_t len) DSTORE_BLOCKING;

  // Disables Nagle's algorithm; our request/response protocols are latency-
  // sensitive small writes.
  Status SetNoDelay();

  void Close();

 private:
  int fd_;
};

// RAII listening socket bound to 127.0.0.1. Close() may be called from a
// different thread than Accept() (that is how ThreadedServer::Stop unblocks
// the accept loop), so the descriptor is atomic.
class ServerSocket {
 public:
  ServerSocket() : fd_(-1), port_(0) {}
  ~ServerSocket();

  ServerSocket(ServerSocket&& other) noexcept;
  ServerSocket& operator=(ServerSocket&& other) noexcept;
  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  // Binds to 127.0.0.1:`port`; port 0 picks an ephemeral port (see port()).
  static StatusOr<ServerSocket> Listen(uint16_t port);

  // Blocks until a client connects. Fails with Unavailable after Close().
  StatusOr<Socket> Accept() DSTORE_BLOCKING;

  uint16_t port() const { return port_; }
  bool valid() const { return fd_.load() >= 0; }
  // Raw descriptor (-1 after Close), for registration with a Reactor.
  int fd() const { return fd_.load(); }

  // Closing from another thread unblocks Accept().
  void Close();

 private:
  ServerSocket(int fd, uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_;
  uint16_t port_;
};

}  // namespace dstore

#endif  // DSTORE_NET_SOCKET_H_
