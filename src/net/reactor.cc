#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace dstore {

namespace {
std::string Errno() { return std::strerror(errno); }
}  // namespace

Reactor::~Reactor() { Stop(); }

Status Reactor::Start() {
  if (running_.load()) return Status::OK();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1: " + Errno());
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError("eventfd: " + Errno());
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained explicitly in Loop()
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const Status status = Status::IOError("epoll_ctl(wakeup): " + Errno());
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return status;
  }
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Reactor::Stop() {
  if (!running_.exchange(false)) return;
  const uint64_t one = 1;
  // Wake the loop so it observes running_ == false.
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  ::close(wake_fd_);
  ::close(epoll_fd_);
  wake_fd_ = epoll_fd_ = -1;
  MutexLock lock(mu_);
  callbacks_.clear();
  tasks_.clear();
}

Status Reactor::Add(int fd, uint32_t events, EventCallback callback) {
  {
    MutexLock lock(mu_);
    callbacks_[fd] = std::make_shared<EventCallback>(std::move(callback));
  }
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    const Status status = Status::IOError("epoll_ctl(add): " + Errno());
    MutexLock lock(mu_);
    callbacks_.erase(fd);
    return status;
  }
  return Status::OK();
}

Status Reactor::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(mod): " + Errno());
  }
  return Status::OK();
}

void Reactor::Remove(int fd) {
  // EPOLL_CTL_DEL may fail if the fd was never added or is already closed;
  // either way the callback entry is what makes events deliverable.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  MutexLock lock(mu_);
  callbacks_.erase(fd);
}

void Reactor::RunInLoop(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void Reactor::Loop() {
  std::vector<epoll_event> events(64);
  while (running_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; Stop() is tearing us down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      // Copy the callback out under the lock so a concurrent Remove() (or a
      // Remove() performed by an earlier callback in this batch) simply
      // drops the event instead of racing the invocation.
      std::shared_ptr<EventCallback> callback;
      {
        MutexLock lock(mu_);
        auto it = callbacks_.find(fd);
        if (it != callbacks_.end()) callback = it->second;
      }
      if (callback != nullptr) (*callback)(events[i].events);
    }
    // Deferred tasks run after the event batch: a task posted by a callback
    // in this batch (e.g. "resume reading") still runs promptly.
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        if (tasks_.empty()) break;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
  }
}

}  // namespace dstore
