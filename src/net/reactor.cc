#include "net/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace dstore {

namespace {

std::string Errno() { return std::strerror(errno); }

// ---- Loop-stall watchdog ----
//
// A single process-wide sampler thread (started lazily with the first
// reactor, leaked like the other singletons) walks the set of live reactors
// every ~50ms and publishes the worst "time spent inside one event batch" as
// the dstore_reactor_stall_ms gauge. The runtime blocking check catches
// annotated primitives; this catches everything else that can freeze a loop
// (long compute, un-annotated syscalls) with no per-event overhead — the
// loop only stamps one atomic per batch.

constexpr int64_t kWatchdogPeriodNanos = 50 * 1000 * 1000;  // 50ms

struct WatchdogState {
  Mutex mu{"reactor-watchdog"};
  std::vector<const Reactor*> reactors;  // GUARDED_BY(mu), see accessors
  bool thread_started = false;           // GUARDED_BY(mu)
};

WatchdogState& Watchdog() {
  static WatchdogState* state = new WatchdogState();  // leaked singleton
  return *state;
}

int64_t SampleWorstStallMillis() {
  WatchdogState& w = Watchdog();
  int64_t worst_nanos = 0;
  MutexLock lock(w.mu);
  for (const Reactor* r : w.reactors) {
    const int64_t busy = r->BusyNanos();
    if (busy > worst_nanos) worst_nanos = busy;
  }
  return worst_nanos / 1000000;
}

void WatchdogLoop() {
  obs::Gauge* gauge = obs::MetricsRegistry::Default()->GetGauge(
      "dstore_reactor_stall_ms", {},
      "Age in ms of the oldest in-progress reactor event batch (0 = all "
      "loops idle); a growing value means a loop thread is stalled");
  for (;;) {
    gauge->Set(static_cast<double>(SampleWorstStallMillis()));
    RealClock::Default()->SleepFor(kWatchdogPeriodNanos);
  }
}

void RegisterWithWatchdog(const Reactor* reactor) {
  WatchdogState& w = Watchdog();
  bool start = false;
  {
    MutexLock lock(w.mu);
    w.reactors.push_back(reactor);
    if (!w.thread_started) {
      w.thread_started = true;
      start = true;
    }
  }
  if (start) {
    std::thread(&WatchdogLoop).detach();
  }
}

void UnregisterFromWatchdog(const Reactor* reactor) {
  WatchdogState& w = Watchdog();
  MutexLock lock(w.mu);
  auto& v = w.reactors;
  v.erase(std::remove(v.begin(), v.end(), reactor), v.end());
}

}  // namespace

namespace reactor_internal {

int64_t WorstStallMillis() { return SampleWorstStallMillis(); }

}  // namespace reactor_internal

Reactor::~Reactor() { Stop(); }

Status Reactor::Start() {
  if (running_.load()) return Status::OK();
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1: " + Errno());
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IOError("eventfd: " + Errno());
  }
  timer_fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_CLOEXEC | TFD_NONBLOCK);
  if (timer_fd_ < 0) {
    const Status status = Status::IOError("timerfd_create: " + Errno());
    ::close(wake_fd_);
    ::close(epoll_fd_);
    wake_fd_ = epoll_fd_ = -1;
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained explicitly in Loop()
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const Status status = Status::IOError("epoll_ctl(wakeup): " + Errno());
    ::close(timer_fd_);
    ::close(wake_fd_);
    ::close(epoll_fd_);
    timer_fd_ = wake_fd_ = epoll_fd_ = -1;
    return status;
  }
  epoll_event tev{};
  tev.events = EPOLLIN;  // level-triggered: drained in FireDueTimers()
  tev.data.fd = timer_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &tev) != 0) {
    const Status status = Status::IOError("epoll_ctl(timer): " + Errno());
    ::close(timer_fd_);
    ::close(wake_fd_);
    ::close(epoll_fd_);
    timer_fd_ = wake_fd_ = epoll_fd_ = -1;
    return status;
  }
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  RegisterWithWatchdog(this);
  return Status::OK();
}

void Reactor::Stop() {
  if (!running_.exchange(false)) return;
  UnregisterFromWatchdog(this);
  const uint64_t one = 1;
  // Wake the loop so it observes running_ == false.
  (void)!::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  ::close(timer_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
  timer_fd_ = wake_fd_ = epoll_fd_ = -1;
  MutexLock lock(mu_);
  callbacks_.clear();
  tasks_.clear();
  timers_.clear();
}

Status Reactor::Add(int fd, uint32_t events, EventCallback callback) {
  {
    MutexLock lock(mu_);
    callbacks_[fd] = std::make_shared<EventCallback>(std::move(callback));
  }
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    const Status status = Status::IOError("epoll_ctl(add): " + Errno());
    MutexLock lock(mu_);
    callbacks_.erase(fd);
    return status;
  }
  return Status::OK();
}

Status Reactor::Modify(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(mod): " + Errno());
  }
  return Status::OK();
}

void Reactor::Remove(int fd) {
  // EPOLL_CTL_DEL may fail if the fd was never added or is already closed;
  // either way the callback entry is what makes events deliverable.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  MutexLock lock(mu_);
  callbacks_.erase(fd);
}

void Reactor::RunInLoop(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
  }
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void Reactor::RunAfter(int64_t delay_nanos, std::function<void()> task) {
  if (delay_nanos <= 0) {
    RunInLoop(std::move(task));
    return;
  }
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  const int64_t deadline =
      ts.tv_sec * 1000000000LL + ts.tv_nsec + delay_nanos;
  MutexLock lock(mu_);
  const bool new_earliest =
      timers_.empty() || deadline < timers_.begin()->first;
  timers_.emplace(deadline, std::move(task));
  if (new_earliest) ArmTimerLocked();
}

void Reactor::ArmTimerLocked() {
  if (timer_fd_ < 0 || timers_.empty()) return;
  const int64_t deadline = timers_.begin()->first;
  itimerspec spec{};
  spec.it_value.tv_sec = deadline / 1000000000LL;
  spec.it_value.tv_nsec = deadline % 1000000000LL;
  // TFD_TIMER_ABSTIME: a deadline already in the past fires immediately.
  (void)::timerfd_settime(timer_fd_, TFD_TIMER_ABSTIME, &spec, nullptr);
}

void Reactor::FireDueTimers() {
  uint64_t expirations;
  (void)!::read(timer_fd_, &expirations, sizeof(expirations));
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  const int64_t now = ts.tv_sec * 1000000000LL + ts.tv_nsec;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (timers_.empty() || timers_.begin()->first > now) {
        ArmTimerLocked();
        break;
      }
      task = std::move(timers_.begin()->second);
      timers_.erase(timers_.begin());
    }
    // Run outside the lock: a timer task may call RunAfter/RunInLoop.
    task();
  }
}

int64_t Reactor::BusyNanos() const {
  const int64_t since = busy_since_nanos_.load(std::memory_order_acquire);
  if (since == 0) return 0;
  const int64_t age = RealClock::Default()->NowNanos() - since;
  return age > 0 ? age : 0;
}

void Reactor::Loop() {
  // Every callback and task below runs inside this context: annotated
  // blocking primitives abort (checked builds) and tools/dstore_blocking.py
  // treats the loop body as a DSTORE_NONBLOCKING_CTX root.
  sync_internal::ScopedLoopContext loop_ctx(name_);
  std::vector<epoll_event> events(64);
  while (running_.load()) {
    busy_since_nanos_.store(0, std::memory_order_release);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), /*timeout=*/-1);
    busy_since_nanos_.store(RealClock::Default()->NowNanos(),
                            std::memory_order_release);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone; Stop() is tearing us down
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        (void)!::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (fd == timer_fd_) {
        FireDueTimers();
        continue;
      }
      // Copy the callback out under the lock so a concurrent Remove() (or a
      // Remove() performed by an earlier callback in this batch) simply
      // drops the event instead of racing the invocation.
      std::shared_ptr<EventCallback> callback;
      {
        MutexLock lock(mu_);
        auto it = callbacks_.find(fd);
        if (it != callbacks_.end()) callback = it->second;
      }
      if (callback != nullptr) (*callback)(events[i].events);
    }
    // Deferred tasks run after the event batch: a task posted by a callback
    // in this batch (e.g. "resume reading") still runs promptly.
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        if (tasks_.empty()) break;
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
  }
  busy_since_nanos_.store(0, std::memory_order_release);
}

}  // namespace dstore
