#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/clock.h"
#include "fault/fault.h"

namespace dstore {

namespace {
std::string Errno() { return std::strerror(errno); }

// Applies the stall of an injected socket fault, if any.
void Stall(const fault::SocketFault& f) {
  if (f.stall_nanos > 0) RealClock::Default()->SleepFor(f.stall_nanos);
}
}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Socket> Socket::ConnectTcp(const std::string& host, uint16_t port) {
  sync_internal::CheckBlocking("Socket::ConnectTcp");
  if (auto injector = fault::InstalledSocketFaultInjector()) {
    if (auto f = injector->OnConnect(host, port)) {
      Stall(*f);
      if (!f->error.ok()) return f->error;  // injected connection refusal
    }
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + Errno());

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("connect: " + Errno());
  }
  Socket socket(fd);
  DSTORE_RETURN_IF_ERROR(socket.SetNoDelay());
  return socket;
}

Status Socket::WriteFull(const void* data, size_t len) {
  sync_internal::CheckBlocking("Socket::WriteFull");
  const auto* p = static_cast<const uint8_t*>(data);
  if (auto injector = fault::InstalledSocketFaultInjector()) {
    if (auto f = injector->OnWrite(len)) {
      Stall(*f);
      if (!f->error.ok()) {
        // Short write: part of the message escapes before the failure, so
        // the peer sees a torn frame.
        size_t prefix = std::min(f->allow_prefix, len);
        while (prefix > 0) {
          const ssize_t n = ::send(fd_, p, prefix, MSG_NOSIGNAL);
          if (n <= 0) break;
          p += n;
          prefix -= static_cast<size_t>(n);
        }
        if (f->reset) Close();
        return f->error;
      }
    }
  }
  while (len > 0) {
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("send: " + Errno());
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::ReadFull(void* out, size_t len) {
  sync_internal::CheckBlocking("Socket::ReadFull");
  auto* p = static_cast<uint8_t*>(out);
  if (auto injector = fault::InstalledSocketFaultInjector()) {
    if (auto f = injector->OnRead(len)) {
      Stall(*f);
      if (!f->error.ok()) {
        if (f->reset) Close();
        return f->error;
      }
    }
  }
  while (len > 0) {
    const ssize_t n = ::recv(fd_, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("recv: " + Errno());
    }
    if (n == 0) {
      return Status::IOError("connection closed mid-read");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Socket::SetNoDelay() {
  const int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::IOError("setsockopt(TCP_NODELAY): " + Errno());
  }
  return Status::OK();
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ServerSocket::~ServerSocket() { Close(); }

ServerSocket::ServerSocket(ServerSocket&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {}

ServerSocket& ServerSocket::operator=(ServerSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
  }
  return *this;
}

StatusOr<ServerSocket> ServerSocket::Listen(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("socket: " + Errno());

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IOError("bind: " + Errno());
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status::IOError("listen: " + Errno());
  }

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::IOError("getsockname: " + Errno());
  }
  return ServerSocket(fd, ntohs(addr.sin_port));
}

StatusOr<Socket> ServerSocket::Accept() {
  sync_internal::CheckBlocking("ServerSocket::Accept");
  const int fd = fd_.load();
  if (fd < 0) return Status::Unavailable("listener closed");
  const int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    return Status::Unavailable("accept: " + Errno());
  }
  Socket socket(client);
  DSTORE_RETURN_IF_ERROR(socket.SetNoDelay());
  return socket;
}

void ServerSocket::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a concurrent Accept() before close().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace dstore
