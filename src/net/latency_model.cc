#include "net/latency_model.h"

#include <cmath>

namespace dstore {

int64_t FixedLatency::SampleNanos(size_t payload_bytes) {
  int64_t total = base_nanos_;
  if (bytes_per_second_ > 0) {
    total += static_cast<int64_t>(
        static_cast<double>(payload_bytes) / bytes_per_second_ * 1e9);
  }
  return total;
}

WanLatency::WanLatency(const WanProfile& profile, uint64_t seed)
    : profile_(profile), rng_(seed) {}

int64_t WanLatency::SampleNanos(size_t payload_bytes) {
  double rtt_ms;
  {
    MutexLock lock(mu_);
    rtt_ms = rng_.LogNormal(std::log(profile_.median_rtt_ms), profile_.sigma);
    if (profile_.spike_probability > 0 &&
        rng_.Bernoulli(profile_.spike_probability)) {
      rtt_ms *= profile_.spike_multiplier;
    }
  }
  double total_ns = rtt_ms * 1e6;
  if (profile_.bytes_per_second > 0) {
    total_ns +=
        static_cast<double>(payload_bytes) / profile_.bytes_per_second * 1e9;
  }
  return static_cast<int64_t>(total_ns);
}

WanProfile CloudStore1Profile(double scale) {
  if (scale <= 0) scale = 1.0;
  WanProfile profile;
  // Geographically distant, multi-tenant store: ~100 ms median RTT with
  // heavy variability and contention spikes (the paper's most variable
  // store). The bandwidth term scales inversely so that shrinking the RTT
  // shrinks transfer time by the same factor, preserving crossover points.
  profile.median_rtt_ms = 100.0 * scale;
  profile.sigma = 0.55;
  profile.bytes_per_second = 4e6 / scale;  // ~4 MB/s WAN at scale 1
  profile.spike_probability = 0.08;
  profile.spike_multiplier = 5.0;
  return profile;
}

WanProfile CloudStore2Profile(double scale) {
  if (scale <= 0) scale = 1.0;
  WanProfile profile;
  // Closer / better-provisioned cloud store: lower RTT, modest variance.
  profile.median_rtt_ms = 45.0 * scale;
  profile.sigma = 0.20;
  profile.bytes_per_second = 8e6 / scale;
  profile.spike_probability = 0.01;
  profile.spike_multiplier = 3.0;
  return profile;
}

}  // namespace dstore
