#ifndef DSTORE_NET_FRAMING_H_
#define DSTORE_NET_FRAMING_H_

#include "common/bytes.h"
#include "common/status.h"
#include "net/socket.h"

namespace dstore {

// Maximum frame payload accepted by ReadFrame; guards against corrupted or
// hostile length prefixes.
constexpr size_t kMaxFrameBytes = 256u << 20;  // 256 MiB

// Writes a frame: 4-byte little-endian length followed by the payload.
Status WriteFrame(Socket* socket, const Bytes& payload);

// Reads one frame written by WriteFrame.
StatusOr<Bytes> ReadFrame(Socket* socket);

}  // namespace dstore

#endif  // DSTORE_NET_FRAMING_H_
