#ifndef DSTORE_NET_REACTOR_H_
#define DSTORE_NET_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "common/status.h"
#include "common/sync.h"

namespace dstore {

// One epoll event loop on one thread. The async server core (see
// net/async_server.h) runs a small pool of these, each multiplexing a slice
// of the live connections — the io-thread model that replaces the seed's
// thread-per-connection servers.
//
// Descriptors are registered edge-triggered (EPOLLET is added to whatever
// event mask the caller passes), so a callback must drain its descriptor to
// EAGAIN before returning; readiness is only reported again after new bytes
// (or buffer space) arrive. All callbacks for a given descriptor run on this
// reactor's single loop thread, which is what lets per-connection parse
// state go unlocked in the server core.
//
// Thread-safety: Add/Modify/Remove/RunInLoop may be called from any thread
// (epoll_ctl is kernel-serialized; the callback table has its own lock).
// Remove() only unregisters — the descriptor stays open and owned by the
// caller, so a freshly accepted connection can never collide with a dying
// one's fd while late completion callbacks still hold it.
//
// Blocking-context enforcement: the loop thread runs inside a
// sync_internal::ScopedLoopContext, so any DSTORE_BLOCKING primitive a
// callback (or RunInLoop task) reaches aborts in checked builds and counts
// toward dstore_reactor_blocking_violations_total. A process-wide watchdog
// additionally samples how long each live reactor has been inside one event
// batch and exports the worst age as the dstore_reactor_stall_ms gauge —
// the runtime net that catches stalls the annotations cannot see (long
// compute, un-annotated third-party calls).
class Reactor {
 public:
  // `events` is the epoll readiness bitmask (EPOLLIN | EPOLLOUT | ...).
  using EventCallback = std::function<void(uint32_t events)>;

  // `name` labels blocking-violation reports and watchdog diagnostics; it
  // must outlive the reactor (string literals only).
  explicit Reactor(const char* name = "reactor-loop") : name_(name) {}
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Creates the epoll instance and wakeup eventfd and starts the loop
  // thread.
  Status Start();

  // Wakes the loop, joins the thread, and closes the epoll/eventfd
  // descriptors. Registered fds are NOT closed (the caller owns them).
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

  // Registers `fd` with `events | EPOLLET`. `callback` runs on the loop
  // thread each time the descriptor becomes ready.
  Status Add(int fd, uint32_t events, EventCallback callback);

  // Rearms `fd` with a new event mask (EPOLLET re-added internally).
  Status Modify(int fd, uint32_t events);

  // Unregisters `fd`. Safe against concurrent event delivery: the callback
  // table entry is removed under lock, so a ready event that races with
  // removal is dropped.
  void Remove(int fd);

  // Runs `task` on the loop thread as soon as possible. Used to re-enter a
  // connection's read path after backpressure clears, where edge-triggered
  // epoll would never re-report the (already buffered) data.
  void RunInLoop(std::function<void()> task);

  // Runs `task` on the loop thread once `delay_nanos` have elapsed (a
  // non-positive delay degenerates to RunInLoop). Backed by a timerfd, so
  // waiting costs the loop nothing — this is how anything that *wants* a
  // delay on the loop (injected chaos stalls, retry backoff) waits without
  // blocking it. Callable from any thread. Pending timers are dropped at
  // Stop().
  void RunAfter(int64_t delay_nanos, std::function<void()> task);

  // Monotonic age (ns) of the event batch the loop is currently inside, or
  // 0 when the loop is idle in epoll_wait. Sampled by the watchdog.
  int64_t BusyNanos() const;

  const char* name() const { return name_; }

 private:
  void Loop() DSTORE_NONBLOCKING_CTX;
  // Pops due timers and re-arms the timerfd for the next deadline.
  void FireDueTimers() EXCLUDES(mu_) DSTORE_NONBLOCKING_CTX;
  void ArmTimerLocked() REQUIRES(mu_);

  const char* name_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: poked by RunInLoop() and Stop()
  int timer_fd_ = -1;  // timerfd: armed for the earliest RunAfter deadline
  std::thread thread_;
  std::atomic<bool> running_{false};
  // 0 = idle; otherwise NowNanos() at the moment the loop began the batch.
  std::atomic<int64_t> busy_since_nanos_{0};
  mutable Mutex mu_;
  std::map<int, std::shared_ptr<EventCallback>> callbacks_ GUARDED_BY(mu_);
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  std::multimap<int64_t, std::function<void()>> timers_ GUARDED_BY(mu_);
};

namespace reactor_internal {

// Test/diagnostic view of the loop-stall watchdog: worst current batch age
// across all live reactors, in milliseconds (what dstore_reactor_stall_ms
// exports). 0 when every loop is idle.
int64_t WorstStallMillis();

}  // namespace reactor_internal

}  // namespace dstore

#endif  // DSTORE_NET_REACTOR_H_
