#ifndef DSTORE_NET_REACTOR_H_
#define DSTORE_NET_REACTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "common/status.h"
#include "common/sync.h"

namespace dstore {

// One epoll event loop on one thread. The async server core (see
// net/async_server.h) runs a small pool of these, each multiplexing a slice
// of the live connections — the io-thread model that replaces the seed's
// thread-per-connection servers.
//
// Descriptors are registered edge-triggered (EPOLLET is added to whatever
// event mask the caller passes), so a callback must drain its descriptor to
// EAGAIN before returning; readiness is only reported again after new bytes
// (or buffer space) arrive. All callbacks for a given descriptor run on this
// reactor's single loop thread, which is what lets per-connection parse
// state go unlocked in the server core.
//
// Thread-safety: Add/Modify/Remove/RunInLoop may be called from any thread
// (epoll_ctl is kernel-serialized; the callback table has its own lock).
// Remove() only unregisters — the descriptor stays open and owned by the
// caller, so a freshly accepted connection can never collide with a dying
// one's fd while late completion callbacks still hold it.
class Reactor {
 public:
  // `events` is the epoll readiness bitmask (EPOLLIN | EPOLLOUT | ...).
  using EventCallback = std::function<void(uint32_t events)>;

  Reactor() = default;
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Creates the epoll instance and wakeup eventfd and starts the loop
  // thread.
  Status Start();

  // Wakes the loop, joins the thread, and closes the epoll/eventfd
  // descriptors. Registered fds are NOT closed (the caller owns them).
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(); }

  // Registers `fd` with `events | EPOLLET`. `callback` runs on the loop
  // thread each time the descriptor becomes ready.
  Status Add(int fd, uint32_t events, EventCallback callback);

  // Rearms `fd` with a new event mask (EPOLLET re-added internally).
  Status Modify(int fd, uint32_t events);

  // Unregisters `fd`. Safe against concurrent event delivery: the callback
  // table entry is removed under lock, so a ready event that races with
  // removal is dropped.
  void Remove(int fd);

  // Runs `task` on the loop thread as soon as possible. Used to re-enter a
  // connection's read path after backpressure clears, where edge-triggered
  // epoll would never re-report the (already buffered) data.
  void RunInLoop(std::function<void()> task);

 private:
  void Loop();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: poked by RunInLoop() and Stop()
  std::thread thread_;
  std::atomic<bool> running_{false};
  mutable Mutex mu_;
  std::map<int, std::shared_ptr<EventCallback>> callbacks_ GUARDED_BY(mu_);
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_NET_REACTOR_H_
