#include "net/server.h"

#include <sys/socket.h>

#include <utility>

#include "fault/fault.h"

namespace dstore {

Status ThreadedServer::Start(uint16_t port) {
  if (running_.load()) return Status::AlreadyExists("server already running");
  DSTORE_ASSIGN_OR_RETURN(listener_, ServerSocket::Listen(port));
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void ThreadedServer::Stop() {
  if (!running_.exchange(false)) {
    // Never started or already stopped; still join any leftover threads.
  }
  listener_.Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> to_join;
  {
    MutexLock lock(mu_);
    // Force-unblock handlers still waiting on their connections.
    for (const auto& [id, fd] : active_conns_) ::shutdown(fd, SHUT_RDWR);
    to_join.swap(connection_threads_);
  }
  for (auto& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void ThreadedServer::AcceptLoop() {
  while (running_.load()) {
    auto client = listener_.Accept();
    if (!client.ok()) {
      // Listener closed (shutdown) or transient failure; exit if stopping.
      if (!running_.load()) return;
      continue;
    }
    if (auto injector = fault::InstalledSocketFaultInjector()) {
      if (auto f = injector->OnAccept()) {
        if (!f->error.ok()) {
          // Injected accept failure: drop the fresh connection on the floor.
          // The client sees EOF/reset on its next read or write.
          client->Close();
          continue;
        }
      }
    }
    if (max_connections_ > 0) {
      size_t active;
      {
        MutexLock lock(mu_);
        active = active_conns_.size();
      }
      if (active >= static_cast<size_t>(max_connections_)) {
        // Over the connection cap: shed at the door rather than spawn an
        // unbounded thread. The shed handler runs on the accept thread, so
        // it must be brief (write one refusal, return).
        if (conn_shed_total_ != nullptr) conn_shed_total_->Increment();
        if (shed_handler_ != nullptr) {
          shed_handler_(std::move(*client));
        } else {
          client->Close();
        }
        continue;
      }
    }
    const int fd = client->fd();
    MutexLock lock(mu_);
    if (!running_.load()) return;  // raced with Stop(); drop the connection
    if (connections_total_ != nullptr) connections_total_->Increment();
    const uint64_t conn_id = next_conn_id_++;
    active_conns_.emplace(conn_id, fd);
    connection_threads_.emplace_back(
        [this, conn_id, socket = std::move(*client)]() mutable {
          if (active_connections_ != nullptr) active_connections_->Increment();
          handler_(std::move(socket));
          if (active_connections_ != nullptr) active_connections_->Decrement();
          MutexLock lock(mu_);
          active_conns_.erase(conn_id);
        });
  }
}

}  // namespace dstore
