#ifndef DSTORE_NET_OBS_ENDPOINT_H_
#define DSTORE_NET_OBS_ENDPOINT_H_

#include <memory>

#include "common/status.h"
#include "net/async_server.h"
#include "net/http.h"
#include "obs/exposition.h"

namespace dstore {

// HTTP surface of the observability subsystem. Every server exposes the
// same routes:
//
//   GET /metrics        Prometheus text exposition (with exemplars)
//   GET /metrics.json   the same data as JSON
//   GET /traces         recently sampled traces as a JSON array
//   GET /debug/slow     slowest/error traces, cross-process stitched (JSON)
//   GET /debug/slow.txt the same as an indented text report
//   GET /version        build identity (version, git sha, build type)
//   GET /healthz        liveness probe, 200 "ok"
//
// HTTP-speaking servers (the cloud store) fold these into their existing
// request handler via HandleObsRequest; framed-protocol servers (cache,
// SQL) run an ObsHttpServer sidecar listener on a separate port.

// True when `request` targets one of the observability routes above — the
// route test a server uses to decide whether a request takes the admission
// queue's priority lane. Split out from HandleObsRequest so data-plane
// requests never enter the priority lane just to discover they are not obs
// traffic (which used to inflate dstore_admit_queue_priority_total by one
// per data-plane request).
bool IsObsRequest(const HttpRequest& request);

// If `request` targets an observability route, fills `*response` and
// returns true; otherwise leaves `*response` alone and returns false.
// Null registry/tracer mean the process-wide defaults.
bool HandleObsRequest(const HttpRequest& request, HttpResponse* response,
                      obs::MetricsRegistry* registry = nullptr,
                      obs::Tracer* tracer = nullptr);

// Minimal HTTP server that serves only the observability routes — the
// scrape endpoint for servers whose data plane is not HTTP.
class ObsHttpServer {
 public:
  static StatusOr<std::unique_ptr<ObsHttpServer>> Start(
      uint16_t port = 0, obs::MetricsRegistry* registry = nullptr,
      obs::Tracer* tracer = nullptr);

  ~ObsHttpServer();

  uint16_t port() const { return server_->port(); }
  void Stop();

 private:
  ObsHttpServer() = default;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::unique_ptr<Server> server_;
};

}  // namespace dstore

#endif  // DSTORE_NET_OBS_ENDPOINT_H_
