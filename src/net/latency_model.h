#ifndef DSTORE_NET_LATENCY_MODEL_H_
#define DSTORE_NET_LATENCY_MODEL_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "common/sync.h"

namespace dstore {

// Models the network delay between a client and a remote data store server.
// The paper evaluates against two commercial cloud stores whose defining
// client-visible property is large, highly variable WAN latency (Section V:
// "Cloud Store 1 exhibited more variability in read latencies than any of
// the other data stores"). The simulated cloud store injects a sample from
// one of these models into every request it serves.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // Delay to add for a request transferring `payload_bytes`.
  virtual int64_t SampleNanos(size_t payload_bytes) = 0;

  virtual std::string name() const = 0;
};

// No injected delay (local stores).
class NoLatency : public LatencyModel {
 public:
  int64_t SampleNanos(size_t) override { return 0; }
  std::string name() const override { return "none"; }
};

// Constant delay plus a bandwidth term.
class FixedLatency : public LatencyModel {
 public:
  FixedLatency(int64_t base_nanos, double bytes_per_second = 0)
      : base_nanos_(base_nanos), bytes_per_second_(bytes_per_second) {}

  int64_t SampleNanos(size_t payload_bytes) override;
  std::string name() const override { return "fixed"; }

 private:
  int64_t base_nanos_;
  double bytes_per_second_;
};

// WAN model: lognormal base RTT, a bandwidth-limited transfer term, and
// occasional heavy-tail contention spikes (multi-tenant interference —
// "requests ... might be competing for server resources with computing
// tasks from other cloud users").
struct WanProfile {
  double median_rtt_ms = 40.0;   // exp(mu) of the lognormal
  double sigma = 0.25;           // lognormal shape: bigger = more variable
  double bytes_per_second = 8e6; // sustained transfer bandwidth
  double spike_probability = 0;  // chance a request hits a contention spike
  double spike_multiplier = 4.0; // RTT multiplier during a spike
};

class WanLatency : public LatencyModel {
 public:
  WanLatency(const WanProfile& profile, uint64_t seed);

  int64_t SampleNanos(size_t payload_bytes) override;
  std::string name() const override { return "wan"; }

  const WanProfile& profile() const { return profile_; }

 private:
  WanProfile profile_;
  Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
};

// Profiles calibrated to reproduce the paper's orderings: Cloud Store 1 is
// slower and far more variable than Cloud Store 2; both dwarf local stores.
// `scale` shrinks all delays proportionally so benchmarks finish quickly
// while preserving every crossover (1.0 = paper-magnitude latencies).
WanProfile CloudStore1Profile(double scale = 1.0);
WanProfile CloudStore2Profile(double scale = 1.0);

}  // namespace dstore

#endif  // DSTORE_NET_LATENCY_MODEL_H_
