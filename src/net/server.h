#ifndef DSTORE_NET_SERVER_H_
#define DSTORE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace dstore {

// Thread-per-connection TCP server skeleton shared by the remote-process
// cache server and the simulated cloud object store. The handler owns the
// connection for its lifetime and returns when the peer disconnects.
//
// When constructed with a non-empty `component`, the server publishes
// dstore_server_connections_total and dstore_server_active_connections
// (labelled server=<component>) into the default metrics registry.
class ThreadedServer {
 public:
  using ConnectionHandler = std::function<void(Socket socket)>;

  explicit ThreadedServer(ConnectionHandler handler,
                          const std::string& component = "")
      : handler_(std::move(handler)) {
    if (!component.empty()) {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Default();
      const obs::Labels labels = {{"server", component}};
      connections_total_ = registry->GetCounter(
          "dstore_server_connections_total", labels,
          "Connections accepted since process start.");
      active_connections_ = registry->GetGauge(
          "dstore_server_active_connections", labels,
          "Connections currently being served.");
      conn_shed_total_ = registry->GetCounter(
          "dstore_admit_conn_shed_total", labels,
          "Connections shed at accept: connection limit reached.");
    }
  }

  // Admission control at the accept loop: beyond `max_connections` live
  // connections, a fresh one is handed to `shed_handler` on the accept
  // thread — a chance to say "503" in whatever protocol the server speaks —
  // and closed instead of getting a handler thread. Coarser than the
  // request-level ServerQueue the protocol layer runs (src/admit/), but it
  // bounds thread count, which the queue cannot. 0 = unlimited. Call
  // before Start().
  void SetConnectionLimit(int max_connections,
                          ConnectionHandler shed_handler = nullptr) {
    max_connections_ = max_connections;
    shed_handler_ = std::move(shed_handler);
  }

  ~ThreadedServer() { Stop(); }

  ThreadedServer(const ThreadedServer&) = delete;
  ThreadedServer& operator=(const ThreadedServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop on a
  // background thread.
  Status Start(uint16_t port = 0);

  // Stops accepting, closes the listener, and joins all handler threads.
  // Handlers are expected to exit once their socket fails. Idempotent.
  void Stop();

  bool running() const { return running_.load(); }
  uint16_t port() const { return listener_.port(); }

  // Connections currently being served (introspection for tests and the
  // core-agnostic Server interface in net/async_server.h).
  size_t ActiveConnectionCount() const {
    MutexLock lock(mu_);
    return active_conns_.size();
  }

 private:
  void AcceptLoop();

  ConnectionHandler handler_;
  int max_connections_ = 0;  // 0 = unlimited
  ConnectionHandler shed_handler_;
  obs::Counter* connections_total_ = nullptr;   // null when not published
  obs::Gauge* active_connections_ = nullptr;
  obs::Counter* conn_shed_total_ = nullptr;
  ServerSocket listener_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  mutable Mutex mu_;
  std::vector<std::thread> connection_threads_ GUARDED_BY(mu_);
  // Live connections by a per-connection id, NOT by fd: a handler closes
  // its socket before it can deregister, so the kernel may hand the same
  // fd number to a newly accepted connection first. Erasing by fd would
  // then drop the new connection from this map and Stop() could never
  // shutdown() it — leaving Stop() joined forever on a handler blocked in
  // recv. Ids make deregistration self-identifying; a stale entry whose fd
  // was reused at worst gets one extra harmless shutdown().
  uint64_t next_conn_id_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, int> active_conns_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_NET_SERVER_H_
