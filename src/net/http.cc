#include "net/http.h"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "net/framing.h"

namespace dstore {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string Trim(const std::string& s) {
  size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

void AppendHeaders(const std::map<std::string, std::string>& headers,
                   size_t body_size, std::string* out) {
  bool has_length = false;
  for (const auto& [name, value] : headers) {
    *out += name + ": " + value + "\r\n";
    if (ToLower(name) == "content-length") has_length = true;
  }
  if (!has_length) {
    *out += "content-length: " + std::to_string(body_size) + "\r\n";
  }
  *out += "\r\n";
}

}  // namespace

HttpParseOutcome ParseHttpRequest(const uint8_t* data, size_t size,
                                  HttpRequest* out, size_t* consumed,
                                  std::string* error) {
  constexpr size_t kMaxHeaderBytes = 64 * 1024;
  if (size == 0) return HttpParseOutcome::kNeedMore;
  const std::string_view view(reinterpret_cast<const char*>(data), size);
  const size_t head_end = view.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (size > kMaxHeaderBytes) {
      if (error != nullptr) *error = "HTTP header block too long";
      return HttpParseOutcome::kError;
    }
    return HttpParseOutcome::kNeedMore;
  }
  if (head_end > kMaxHeaderBytes) {
    if (error != nullptr) *error = "HTTP header block too long";
    return HttpParseOutcome::kError;
  }

  HttpRequest request;
  const std::string_view head = view.substr(0, head_end);
  const size_t line_end = head.find("\r\n");
  const std::string_view start_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  const size_t sp1 = start_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    if (error != nullptr) {
      *error = "malformed HTTP request line: " + std::string(start_line);
    }
    return HttpParseOutcome::kError;
  }
  request.method = std::string(start_line.substr(0, sp1));
  request.path = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(pos, next - pos);
    pos = next + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      if (error != nullptr) {
        *error = "malformed HTTP header: " + std::string(line);
      }
      return HttpParseOutcome::kError;
    }
    request.headers[ToLower(Trim(std::string(line.substr(0, colon))))] =
        Trim(std::string(line.substr(colon + 1)));
  }

  size_t body_length = 0;
  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    char* end = nullptr;
    body_length = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || body_length > kMaxFrameBytes) {
      if (error != nullptr) *error = "HTTP body too large";
      return HttpParseOutcome::kError;
    }
  }
  const size_t body_start = head_end + 4;
  if (size - body_start < body_length) return HttpParseOutcome::kNeedMore;
  request.body.assign(data + body_start, data + body_start + body_length);
  *consumed = body_start + body_length;
  *out = std::move(request);
  return HttpParseOutcome::kParsed;
}

void SerializeHttpResponse(const HttpResponse& response, Bytes* out) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                     response.reason + "\r\n";
  AppendHeaders(response.headers, response.body.size(), &head);
  out->insert(out->end(), head.begin(), head.end());
  out->insert(out->end(), response.body.begin(), response.body.end());
}

void SerializeHttpRequest(const HttpRequest& request, Bytes* out) {
  std::string head = request.method + " " + request.path + " HTTP/1.1\r\n";
  AppendHeaders(request.headers, request.body.size(), &head);
  out->insert(out->end(), head.begin(), head.end());
  out->insert(out->end(), request.body.begin(), request.body.end());
}

Status HttpConnection::WriteRequest(const HttpRequest& request) {
  std::string head = request.method + " " + request.path + " HTTP/1.1\r\n";
  AppendHeaders(request.headers, request.body.size(), &head);
  DSTORE_RETURN_IF_ERROR(socket_.WriteFull(head.data(), head.size()));
  return socket_.WriteFull(request.body);
}

Status HttpConnection::WriteResponse(const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                     response.reason + "\r\n";
  AppendHeaders(response.headers, response.body.size(), &head);
  DSTORE_RETURN_IF_ERROR(socket_.WriteFull(head.data(), head.size()));
  return socket_.WriteFull(response.body);
}

StatusOr<std::string> HttpConnection::ReadLine() {
  std::string line;
  for (;;) {
    if (buffer_pos_ >= buffer_.size()) {
      uint8_t chunk[4096];
      // Read whatever is available (at least 1 byte) without over-reading
      // past this message: recv with small chunks is fine for headers.
      const ssize_t n = ::recv(socket_.fd(), chunk, sizeof(chunk), 0);
      if (n < 0) {
        return Status::IOError("recv failed while reading HTTP header");
      }
      if (n == 0) {
        return Status::IOError("connection closed while reading HTTP header");
      }
      buffer_.assign(chunk, chunk + n);
      buffer_pos_ = 0;
    }
    const char c = static_cast<char>(buffer_[buffer_pos_++]);
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    line.push_back(c);
    if (line.size() > 64 * 1024) {
      return Status::Corruption("HTTP header line too long");
    }
  }
}

Status HttpConnection::ReadExact(uint8_t* out, size_t n) {
  // Drain the lookahead buffer first.
  const size_t buffered = buffer_.size() - buffer_pos_;
  const size_t take = std::min(buffered, n);
  if (take > 0) {
    std::copy(buffer_.begin() + static_cast<ptrdiff_t>(buffer_pos_),
              buffer_.begin() + static_cast<ptrdiff_t>(buffer_pos_ + take),
              out);
    buffer_pos_ += take;
    out += take;
    n -= take;
  }
  if (n == 0) return Status::OK();
  return socket_.ReadFull(out, n);
}

Status HttpConnection::ReadHeaders(
    std::map<std::string, std::string>* headers) {
  for (;;) {
    DSTORE_ASSIGN_OR_RETURN(std::string line, ReadLine());
    if (line.empty()) return Status::OK();
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("malformed HTTP header: " + line);
    }
    (*headers)[ToLower(Trim(line.substr(0, colon)))] =
        Trim(line.substr(colon + 1));
  }
}

StatusOr<HttpRequest> HttpConnection::ReadRequest() {
  DSTORE_ASSIGN_OR_RETURN(std::string start, ReadLine());
  HttpRequest request;
  const size_t sp1 = start.find(' ');
  const size_t sp2 = start.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return Status::Corruption("malformed HTTP request line: " + start);
  }
  request.method = start.substr(0, sp1);
  request.path = start.substr(sp1 + 1, sp2 - sp1 - 1);
  DSTORE_RETURN_IF_ERROR(ReadHeaders(&request.headers));

  auto it = request.headers.find("content-length");
  if (it != request.headers.end()) {
    char* end = nullptr;
    const size_t length = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || length > kMaxFrameBytes) {
      return Status::Corruption("HTTP body too large");
    }
    request.body.resize(length);
    DSTORE_RETURN_IF_ERROR(ReadExact(request.body.data(), length));
  }
  return request;
}

StatusOr<HttpResponse> HttpConnection::ReadResponse() {
  DSTORE_ASSIGN_OR_RETURN(std::string start, ReadLine());
  HttpResponse response;
  // "HTTP/1.1 200 OK"
  const size_t sp1 = start.find(' ');
  if (sp1 == std::string::npos) {
    return Status::Corruption("malformed HTTP status line: " + start);
  }
  const size_t sp2 = start.find(' ', sp1 + 1);
  const std::string code_str =
      start.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                     : sp2 - sp1 - 1);
  response.status_code = std::atoi(code_str.c_str());
  if (response.status_code == 0) {
    return Status::Corruption("malformed HTTP status code: " + start);
  }
  if (sp2 != std::string::npos) response.reason = start.substr(sp2 + 1);
  DSTORE_RETURN_IF_ERROR(ReadHeaders(&response.headers));

  auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    char* end = nullptr;
    const size_t length = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || length > kMaxFrameBytes) {
      return Status::Corruption("HTTP body too large");
    }
    response.body.resize(length);
    DSTORE_RETURN_IF_ERROR(ReadExact(response.body.data(), length));
  }
  return response;
}

}  // namespace dstore
