#ifndef DSTORE_NET_HTTP_H_
#define DSTORE_NET_HTTP_H_

#include <map>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "net/socket.h"

namespace dstore {

// Minimal HTTP/1.1 with keep-alive and Content-Length framing — enough to
// implement a REST object store like the cloud services the paper measures.
// Header names are case-insensitive (stored lowercase).

struct HttpRequest {
  std::string method;  // GET, PUT, DELETE, HEAD, POST
  std::string path;
  std::map<std::string, std::string> headers;
  Bytes body;
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  Bytes body;
};

// --- Incremental (non-blocking) parsing -------------------------------------
//
// The async server core (net/async_server.h) receives bytes in arbitrary
// fragments and may hold several pipelined requests in one buffer, so it
// needs a parser that consumes exactly one request from the front of a
// buffer and reports "not enough bytes yet" without blocking.

enum class HttpParseOutcome {
  kNeedMore,  // the buffer holds only a prefix of a request
  kParsed,    // one full request was consumed (*consumed bytes)
  kError,     // the bytes cannot be the start of a valid request
};

// Attempts to parse one complete HTTP/1.1 request from data[0..size). On
// kParsed fills `*out` and sets `*consumed` to the bytes eaten (the caller
// drops them and may immediately re-parse the remainder — pipelining). On
// kError `*error` (when non-null) describes the problem. Header block is
// capped at 64 KiB and bodies at kMaxFrameBytes, mirroring the blocking
// reader's limits.
HttpParseOutcome ParseHttpRequest(const uint8_t* data, size_t size,
                                  HttpRequest* out, size_t* consumed,
                                  std::string* error = nullptr);

// Serializes status line + headers (adding content-length when absent) +
// body, appending to `*out`. The inverse of HttpConnection::ReadResponse.
void SerializeHttpResponse(const HttpResponse& response, Bytes* out);

// Serializes a request the same way (used by pipelining tests and clients
// that batch several requests into one write).
void SerializeHttpRequest(const HttpRequest& request, Bytes* out);

// Buffered reader/writer for one HTTP connection. Not thread-safe; callers
// serialize access (one in-flight request per connection, as HTTP/1.1
// without pipelining).
class HttpConnection {
 public:
  explicit HttpConnection(Socket socket) : socket_(std::move(socket)) {}

  bool valid() const { return socket_.valid(); }
  void Close() { socket_.Close(); }

  Status WriteRequest(const HttpRequest& request);
  StatusOr<HttpRequest> ReadRequest();

  Status WriteResponse(const HttpResponse& response);
  StatusOr<HttpResponse> ReadResponse();

 private:
  // Reads a CRLF-terminated line (without the CRLF).
  StatusOr<std::string> ReadLine();
  // Reads exactly n bytes using the buffer first.
  Status ReadExact(uint8_t* out, size_t n);
  // Parses "Name: value" headers until the blank line.
  Status ReadHeaders(std::map<std::string, std::string>* headers);

  Socket socket_;
  Bytes buffer_;
  size_t buffer_pos_ = 0;
};

}  // namespace dstore

#endif  // DSTORE_NET_HTTP_H_
