#include "net/obs_endpoint.h"

#include <utility>

#include "obs/build_info.h"

namespace dstore {

namespace {

HttpResponse TextResponse(std::string body, const std::string& content_type) {
  HttpResponse response;
  response.status_code = 200;
  response.reason = "OK";
  response.headers["content-type"] = content_type;
  response.body = ToBytes(body);
  return response;
}

}  // namespace

bool IsObsRequest(const HttpRequest& request) {
  if (request.method != "GET") return false;
  const std::string& path = request.path;
  return path == "/metrics" || path == "/metrics.json" || path == "/traces" ||
         path == "/debug/slow" || path == "/debug/slow.txt" ||
         path == "/version" || path == "/healthz";
}

bool HandleObsRequest(const HttpRequest& request, HttpResponse* response,
                      obs::MetricsRegistry* registry, obs::Tracer* tracer) {
  if (request.method != "GET") return false;
  if (request.path == "/metrics") {
    *response = TextResponse(obs::RenderPrometheusText(registry),
                             "text/plain; version=0.0.4");
    return true;
  }
  if (request.path == "/metrics.json") {
    *response =
        TextResponse(obs::RenderMetricsJson(registry), "application/json");
    return true;
  }
  if (request.path == "/traces") {
    *response =
        TextResponse(obs::RenderTracesJson(tracer), "application/json");
    return true;
  }
  if (request.path == "/debug/slow") {
    *response =
        TextResponse(obs::RenderSlowTracesJson(tracer), "application/json");
    return true;
  }
  if (request.path == "/debug/slow.txt") {
    *response = TextResponse(obs::RenderSlowTracesText(tracer), "text/plain");
    return true;
  }
  if (request.path == "/version") {
    *response = TextResponse(obs::BuildInfoJson(), "application/json");
    return true;
  }
  if (request.path == "/healthz") {
    *response = TextResponse("ok\n", "text/plain");
    return true;
  }
  return false;
}

StatusOr<std::unique_ptr<ObsHttpServer>> ObsHttpServer::Start(
    uint16_t port, obs::MetricsRegistry* registry, obs::Tracer* tracer) {
  auto server = std::unique_ptr<ObsHttpServer>(new ObsHttpServer());
  server->registry_ = registry;
  server->tracer_ = tracer;
  ObsHttpServer* raw = server.get();
  // The scrape sidecar is pure control plane: a couple of I/O threads and
  // workers are plenty, and it rides whichever core the process selects.
  AsyncServerOptions options;
  options.io_threads = 1;
  options.worker_threads = 2;
  server->server_ = MakeHttpServer(
      [raw](const HttpRequest& request) {
        HttpResponse response;
        if (!HandleObsRequest(request, &response, raw->registry_,
                              raw->tracer_)) {
          response.status_code = 404;
          response.reason = "Not Found";
        }
        return response;
      },
      std::move(options));
  DSTORE_RETURN_IF_ERROR(server->server_->Start(port));
  return server;
}

ObsHttpServer::~ObsHttpServer() { Stop(); }

void ObsHttpServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

}  // namespace dstore
