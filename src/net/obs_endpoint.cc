#include "net/obs_endpoint.h"

#include <utility>

#include "obs/build_info.h"

namespace dstore {

namespace {

HttpResponse TextResponse(std::string body, const std::string& content_type) {
  HttpResponse response;
  response.status_code = 200;
  response.reason = "OK";
  response.headers["content-type"] = content_type;
  response.body = ToBytes(body);
  return response;
}

}  // namespace

bool HandleObsRequest(const HttpRequest& request, HttpResponse* response,
                      obs::MetricsRegistry* registry, obs::Tracer* tracer) {
  if (request.method != "GET") return false;
  if (request.path == "/metrics") {
    *response = TextResponse(obs::RenderPrometheusText(registry),
                             "text/plain; version=0.0.4");
    return true;
  }
  if (request.path == "/metrics.json") {
    *response =
        TextResponse(obs::RenderMetricsJson(registry), "application/json");
    return true;
  }
  if (request.path == "/traces") {
    *response =
        TextResponse(obs::RenderTracesJson(tracer), "application/json");
    return true;
  }
  if (request.path == "/debug/slow") {
    *response =
        TextResponse(obs::RenderSlowTracesJson(tracer), "application/json");
    return true;
  }
  if (request.path == "/debug/slow.txt") {
    *response = TextResponse(obs::RenderSlowTracesText(tracer), "text/plain");
    return true;
  }
  if (request.path == "/version") {
    *response = TextResponse(obs::BuildInfoJson(), "application/json");
    return true;
  }
  if (request.path == "/healthz") {
    *response = TextResponse("ok\n", "text/plain");
    return true;
  }
  return false;
}

StatusOr<std::unique_ptr<ObsHttpServer>> ObsHttpServer::Start(
    uint16_t port, obs::MetricsRegistry* registry, obs::Tracer* tracer) {
  auto server = std::unique_ptr<ObsHttpServer>(new ObsHttpServer());
  server->registry_ = registry;
  server->tracer_ = tracer;
  ObsHttpServer* raw = server.get();
  server->server_ = std::make_unique<ThreadedServer>(
      [raw](Socket socket) { raw->HandleConnection(std::move(socket)); });
  DSTORE_RETURN_IF_ERROR(server->server_->Start(port));
  return server;
}

ObsHttpServer::~ObsHttpServer() { Stop(); }

void ObsHttpServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

void ObsHttpServer::HandleConnection(Socket socket) {
  HttpConnection conn(std::move(socket));
  for (;;) {
    auto request = conn.ReadRequest();
    if (!request.ok()) return;  // disconnect
    HttpResponse response;
    if (!HandleObsRequest(*request, &response, registry_, tracer_)) {
      response.status_code = 404;
      response.reason = "Not Found";
    }
    if (!conn.WriteResponse(response).ok()) return;
  }
}

}  // namespace dstore
