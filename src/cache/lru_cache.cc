#include "cache/lru_cache.h"

#include "common/hash.h"

namespace dstore {

namespace {
size_t RoundUpToPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

LruCache::LruCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  const size_t shards = RoundUpToPowerOfTwo(num_shards == 0 ? 1 : num_shards);
  shard_mask_ = shards - 1;
  shard_capacity_ = capacity_bytes / shards;
  if (shard_capacity_ == 0) shard_capacity_ = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LruCache::Shard& LruCache::ShardFor(const std::string& key) {
  return *shards_[Fnv1a64(key) & shard_mask_];
}

const LruCache::Shard& LruCache::ShardFor(const std::string& key) const {
  return *shards_[Fnv1a64(key) & shard_mask_];
}

void LruCache::EvictIfNeeded(Shard* shard) {
  while (shard->charge_used > shard_capacity_ && !shard->lru.empty()) {
    const Entry& victim = shard->lru.back();
    shard->charge_used -= victim.charge;
    shard->map.erase(victim.key);
    shard->lru.pop_back();
    ++shard->stats.evictions;
  }
}

Status LruCache::Put(const std::string& key, ValuePtr value) {
  Shard& shard = ShardFor(key);
  const size_t charge = EntryCharge(key, value);
  MutexLock lock(shard.mu);
  ++shard.stats.puts;
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.charge_used -= it->second->charge;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  shard.lru.push_front(Entry{key, std::move(value), charge});
  shard.map[key] = shard.lru.begin();
  shard.charge_used += charge;
  EvictIfNeeded(&shard);
  return Status::OK();
}

StatusOr<ValuePtr> LruCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.stats.misses;
    return Status::NotFound("key not in cache");
  }
  ++shard.stats.hits;
  // Move to front (most recently used).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

Status LruCache::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.charge_used -= it->second->charge;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }
  return Status::OK();
}

void LruCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->charge_used = 0;
  }
}

bool LruCache::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  return shard.map.count(key) > 0;
}

size_t LruCache::EntryCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

size_t LruCache::ChargeUsed() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->charge_used;
  }
  return total;
}

StatusOr<std::vector<std::string>> LruCache::Keys() const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const auto& [key, it] : shard->map) keys.push_back(key);
  }
  return keys;
}

CacheStats LruCache::Stats() const {
  CacheStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.puts += shard->stats.puts;
    total.evictions += shard->stats.evictions;
  }
  return total;
}

}  // namespace dstore
