#include "cache/ring_cache.h"

#include "common/hash.h"

namespace dstore {

namespace {

// FNV-1a mixes its high bits poorly on short inputs, which clusters ring
// positions; finish with a splitmix64 avalanche so positions and key
// lookups spread across the full 64-bit ring.
uint64_t RingHash(const std::string& s) {
  uint64_t z = Fnv1a64(s);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RingCache::RingCache(std::vector<Node> nodes, size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes == 0 ? 1 : virtual_nodes) {
  for (Node& node : nodes) {
    nodes_.emplace(node.name, std::move(node.cache));
  }
  RebuildRing();
}

void RingCache::RebuildRing() {
  ring_.clear();
  for (const auto& [name, cache] : nodes_) {
    for (size_t v = 0; v < virtual_nodes_; ++v) {
      const std::string point = name + "#" + std::to_string(v);
      ring_.emplace(RingHash(point), name);
    }
  }
}

Cache* RingCache::Route(const std::string& key) const {
  if (ring_.empty()) return nullptr;
  // First ring point at or after the key's hash, wrapping around.
  auto it = ring_.lower_bound(RingHash(key));
  if (it == ring_.end()) it = ring_.begin();
  return nodes_.at(it->second).get();
}

Status RingCache::Put(const std::string& key, ValuePtr value) {
  MutexLock lock(mu_);
  Cache* node = Route(key);
  if (node == nullptr) return Status::Unavailable("ring has no nodes");
  return node->Put(key, std::move(value));
}

StatusOr<ValuePtr> RingCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  Cache* node = Route(key);
  if (node == nullptr) return Status::Unavailable("ring has no nodes");
  return node->Get(key);
}

Status RingCache::Delete(const std::string& key) {
  MutexLock lock(mu_);
  Cache* node = Route(key);
  if (node == nullptr) return Status::Unavailable("ring has no nodes");
  return node->Delete(key);
}

void RingCache::Clear() {
  MutexLock lock(mu_);
  for (const auto& [name, cache] : nodes_) cache->Clear();
}

bool RingCache::Contains(const std::string& key) const {
  MutexLock lock(mu_);
  Cache* node = Route(key);
  return node != nullptr && node->Contains(key);
}

size_t RingCache::EntryCount() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [name, cache] : nodes_) total += cache->EntryCount();
  return total;
}

size_t RingCache::ChargeUsed() const {
  MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [name, cache] : nodes_) total += cache->ChargeUsed();
  return total;
}

CacheStats RingCache::Stats() const {
  MutexLock lock(mu_);
  CacheStats total;
  for (const auto& [name, cache] : nodes_) {
    const CacheStats stats = cache->Stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.puts += stats.puts;
    total.evictions += stats.evictions;
  }
  return total;
}

std::string RingCache::Name() const {
  MutexLock lock(mu_);
  return "ring(" + std::to_string(nodes_.size()) + " nodes)";
}

StatusOr<std::vector<std::string>> RingCache::Keys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  for (const auto& [name, cache] : nodes_) {
    DSTORE_ASSIGN_OR_RETURN(std::vector<std::string> node_keys, cache->Keys());
    keys.insert(keys.end(), node_keys.begin(), node_keys.end());
  }
  return keys;
}

Status RingCache::AddNode(Node node) {
  if (node.cache == nullptr || node.name.empty()) {
    return Status::InvalidArgument("node needs a name and a cache");
  }
  MutexLock lock(mu_);
  if (nodes_.count(node.name) > 0) {
    return Status::AlreadyExists("node already in ring: " + node.name);
  }
  nodes_.emplace(node.name, std::move(node.cache));
  RebuildRing();
  return Status::OK();
}

Status RingCache::RemoveNode(const std::string& name) {
  MutexLock lock(mu_);
  if (nodes_.erase(name) == 0) {
    return Status::NotFound("no such ring node: " + name);
  }
  RebuildRing();
  return Status::OK();
}

size_t RingCache::node_count() const {
  MutexLock lock(mu_);
  return nodes_.size();
}

std::string RingCache::NodeFor(const std::string& key) const {
  MutexLock lock(mu_);
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(RingHash(key));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace dstore
