#include "cache/clock_cache.h"

namespace dstore {

ClockCache::ClockCache(size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

void ClockCache::EvictOne() {
  if (index_.empty()) return;
  // Sweep: give referenced entries a second chance, evict the first
  // unreferenced occupied slot.
  for (;;) {
    if (slots_.empty()) return;
    hand_ = (hand_ + 1) % slots_.size();
    Slot& slot = slots_[hand_];
    if (!slot.occupied) continue;
    if (slot.referenced) {
      slot.referenced = false;
      continue;
    }
    charge_used_ -= slot.charge;
    index_.erase(slot.key);
    slot = Slot{};
    free_slots_.push_back(hand_);
    ++stats_.evictions;
    return;
  }
}

void ClockCache::EvictUntilFits() {
  while (charge_used_ > capacity_bytes_ && !index_.empty()) {
    EvictOne();
  }
}

Status ClockCache::Put(const std::string& key, ValuePtr value) {
  const size_t charge = EntryCharge(key, value);
  MutexLock lock(mu_);
  ++stats_.puts;

  auto it = index_.find(key);
  if (it != index_.end()) {
    Slot& slot = slots_[it->second];
    charge_used_ -= slot.charge;
    slot.value = std::move(value);
    slot.charge = charge;
    slot.referenced = true;
    charge_used_ += charge;
    EvictUntilFits();
    return Status::OK();
  }

  size_t slot_index;
  if (!free_slots_.empty()) {
    slot_index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_index = slots_.size();
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_index];
  slot.key = key;
  slot.value = std::move(value);
  slot.charge = charge;
  // Fresh entries start unreferenced: they earn their second chance with a
  // hit. (Inserting referenced would let a burst of one-shot inserts evict
  // hot entries, since a sweep through all-referenced slots victimizes the
  // first entry it cleared.)
  slot.referenced = false;
  slot.occupied = true;
  index_.emplace(key, slot_index);
  charge_used_ += charge;
  EvictUntilFits();
  return Status::OK();
}

StatusOr<ValuePtr> ClockCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return Status::NotFound("key not in cache");
  }
  Slot& slot = slots_[it->second];
  slot.referenced = true;  // the entire hit-path bookkeeping: one bit
  ++stats_.hits;
  return slot.value;
}

Status ClockCache::Delete(const std::string& key) {
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Slot& slot = slots_[it->second];
    charge_used_ -= slot.charge;
    free_slots_.push_back(it->second);
    slot = Slot{};
    index_.erase(it);
  }
  return Status::OK();
}

void ClockCache::Clear() {
  MutexLock lock(mu_);
  slots_.clear();
  index_.clear();
  free_slots_.clear();
  hand_ = 0;
  charge_used_ = 0;
}

bool ClockCache::Contains(const std::string& key) const {
  MutexLock lock(mu_);
  return index_.count(key) > 0;
}

size_t ClockCache::EntryCount() const {
  MutexLock lock(mu_);
  return index_.size();
}

size_t ClockCache::ChargeUsed() const {
  MutexLock lock(mu_);
  return charge_used_;
}

StatusOr<std::vector<std::string>> ClockCache::Keys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, slot] : index_) keys.push_back(key);
  return keys;
}

CacheStats ClockCache::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace dstore
