#include "cache/expiring_cache.h"

namespace dstore {

ExpiringCache::ExpiringCache(std::unique_ptr<Cache> inner, const Clock* clock)
    : inner_(std::move(inner)), clock_(clock) {}

Status ExpiringCache::Put(const std::string& key, ValuePtr value) {
  return PutWithTtl(key, std::move(value), /*ttl_nanos=*/0);
}

Status ExpiringCache::PutWithTtl(const std::string& key, ValuePtr value,
                                 int64_t ttl_nanos, const std::string& etag) {
  DSTORE_RETURN_IF_ERROR(inner_->Put(key, std::move(value)));
  MutexLock lock(mu_);
  Meta& meta = meta_[key];
  meta.expires_at = ttl_nanos <= 0 ? 0 : clock_->NowNanos() + ttl_nanos;
  meta.etag = etag;
  return Status::OK();
}

StatusOr<ValuePtr> ExpiringCache::Get(const std::string& key) {
  DSTORE_ASSIGN_OR_RETURN(Entry entry, GetEntry(key));
  if (entry.expired) {
    return Status::Expired("cached entry is past its expiration time");
  }
  return entry.value;
}

StatusOr<ExpiringCache::Entry> ExpiringCache::GetEntry(const std::string& key) {
  auto value = inner_->Get(key);
  if (!value.ok()) {
    // The inner cache may have evicted the entry; drop stale metadata so the
    // map cannot grow without bound.
    MutexLock lock(mu_);
    meta_.erase(key);
    return value.status();
  }
  Entry entry;
  entry.value = *std::move(value);
  MutexLock lock(mu_);
  auto it = meta_.find(key);
  if (it == meta_.end()) {
    entry.expires_at = 0;
    entry.expired = false;
    return entry;
  }
  entry.etag = it->second.etag;
  entry.expires_at = it->second.expires_at;
  entry.expired =
      it->second.expires_at != 0 && clock_->NowNanos() >= it->second.expires_at;
  return entry;
}

Status ExpiringCache::Touch(const std::string& key, int64_t ttl_nanos) {
  if (!inner_->Contains(key)) {
    return Status::NotFound("cannot touch absent entry");
  }
  MutexLock lock(mu_);
  Meta& meta = meta_[key];
  meta.expires_at = ttl_nanos <= 0 ? 0 : clock_->NowNanos() + ttl_nanos;
  return Status::OK();
}

Status ExpiringCache::Delete(const std::string& key) {
  DSTORE_RETURN_IF_ERROR(inner_->Delete(key));
  MutexLock lock(mu_);
  meta_.erase(key);
  return Status::OK();
}

void ExpiringCache::Clear() {
  inner_->Clear();
  MutexLock lock(mu_);
  meta_.clear();
}

bool ExpiringCache::Contains(const std::string& key) const {
  return inner_->Contains(key);
}

size_t ExpiringCache::EntryCount() const { return inner_->EntryCount(); }

size_t ExpiringCache::ChargeUsed() const { return inner_->ChargeUsed(); }

CacheStats ExpiringCache::Stats() const { return inner_->Stats(); }

std::string ExpiringCache::Name() const {
  return inner_->Name() + "+expiry";
}

size_t ExpiringCache::ExpiredCount() const {
  MutexLock lock(mu_);
  size_t count = 0;
  const int64_t now = clock_->NowNanos();
  for (const auto& [key, meta] : meta_) {
    if (meta.expires_at != 0 && now >= meta.expires_at &&
        inner_->Contains(key)) {
      ++count;
    }
  }
  return count;
}

}  // namespace dstore
