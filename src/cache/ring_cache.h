#ifndef DSTORE_CACHE_RING_CACHE_H_
#define DSTORE_CACHE_RING_CACHE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "common/sync.h"

namespace dstore {

// Consistent-hash router over multiple cache nodes — the scaling story the
// paper sketches for remote-process caches ("remote process caches can
// often be scaled across multiple processes and nodes to handle high
// request rates and increase availability", Section III; its related work
// discusses load balancing across memcached servers).
//
// Each node is any Cache implementation — typically a RemoteCache client to
// a distinct server process. Keys map to nodes via a hash ring with virtual
// nodes, so adding or removing a node remaps only ~1/N of the key space
// (the rest keep their cached entries).
class RingCache : public Cache {
 public:
  struct Node {
    std::string name;  // unique, stable identity (feeds the ring hash)
    std::shared_ptr<Cache> cache;
  };

  // `virtual_nodes` ring points per node; more = smoother balance.
  explicit RingCache(std::vector<Node> nodes, size_t virtual_nodes = 64);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override;
  StatusOr<std::vector<std::string>> Keys() const override;

  // Topology changes. AddNode/RemoveNode only redirect future lookups;
  // entries cached on their old nodes age out by eviction (standard
  // consistent-hashing behaviour — no migration).
  Status AddNode(Node node);
  Status RemoveNode(const std::string& name);
  size_t node_count() const;

  // The node `key` currently routes to (for tests and diagnostics).
  std::string NodeFor(const std::string& key) const;

 private:
  Cache* Route(const std::string& key) const REQUIRES(mu_);
  void RebuildRing() REQUIRES(mu_);

  size_t virtual_nodes_;
  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Cache>> nodes_ GUARDED_BY(mu_);
  // ring position -> node name
  std::map<uint64_t, std::string> ring_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_CACHE_RING_CACHE_H_
