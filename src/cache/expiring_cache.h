#ifndef DSTORE_CACHE_EXPIRING_CACHE_H_
#define DSTORE_CACHE_EXPIRING_CACHE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "cache/cache.h"
#include "common/clock.h"
#include "common/sync.h"

namespace dstore {

// Expiration-time management layered above any Cache, exactly as the paper
// prescribes (Section III): "Cache expiration times are managed by the DSCL
// and not by the underlying cache" because (a) not every cache supports
// expiration and (b) caches that do tend to purge expired entries, while the
// DSCL wants to KEEP them — an expired entry is not necessarily obsolete and
// can be revalidated with the server cheaply (If-Modified-Since style,
// Fig. 7) instead of refetched.
//
// Get() on an expired entry returns kExpired. GetEntry() additionally hands
// back the stale value and its entity tag so the caller can revalidate; on
// a successful revalidation call Touch() to extend the lifetime.
class ExpiringCache : public Cache {
 public:
  struct Entry {
    ValuePtr value;
    std::string etag;    // version identifier for revalidation
    bool expired;        // true if past its expiration time
    int64_t expires_at;  // clock nanos; 0 = never expires
  };

  // Does not take ownership of `clock` (pass a SimulatedClock in tests).
  ExpiringCache(std::unique_ptr<Cache> inner, const Clock* clock);

  // --- Cache interface (entries stored via Put never expire). ---
  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override;
  StatusOr<std::vector<std::string>> Keys() const override {
    return inner_->Keys();
  }

  // --- Expiration-aware API. ---

  // Inserts with a time-to-live (<= 0 means no expiration) and an optional
  // entity tag identifying this version of the object.
  Status PutWithTtl(const std::string& key, ValuePtr value, int64_t ttl_nanos,
                    const std::string& etag = "");

  // Returns the entry, including stale ones (entry.expired tells which).
  // NotFound only if the key is absent altogether.
  StatusOr<Entry> GetEntry(const std::string& key);

  // Marks the current entry fresh again for `ttl_nanos` (after the server
  // confirmed the cached version is still current, Fig. 7's "o1 is current"
  // branch). Optionally replaces the etag.
  Status Touch(const std::string& key, int64_t ttl_nanos);

  // Number of entries currently past their expiration time.
  size_t ExpiredCount() const;

 private:
  struct Meta {
    int64_t expires_at = 0;  // 0 = never
    std::string etag;
  };

  std::unique_ptr<Cache> inner_;
  const Clock* clock_;
  mutable Mutex mu_;
  std::unordered_map<std::string, Meta> meta_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_CACHE_EXPIRING_CACHE_H_
