#include "cache/gds_cache.h"

namespace dstore {

GdsCache::GdsCache(size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}

void GdsCache::Refresh(const std::string& key, Entry* entry) {
  entry->priority =
      inflation_ + entry->cost / static_cast<double>(entry->charge);
  heap_.erase(entry->heap_it);
  entry->heap_it = heap_.emplace(entry->priority, key);
}

void GdsCache::EvictIfNeeded() {
  while (charge_used_ > capacity_bytes_ && !heap_.empty()) {
    const auto victim_it = heap_.begin();
    inflation_ = victim_it->first;  // L rises to the evicted priority
    const std::string victim_key = victim_it->second;
    auto entry_it = entries_.find(victim_key);
    charge_used_ -= entry_it->second.charge;
    heap_.erase(victim_it);
    entries_.erase(entry_it);
    ++stats_.evictions;
  }
}

Status GdsCache::Put(const std::string& key, ValuePtr value) {
  return PutWithCost(key, std::move(value), 1.0);
}

Status GdsCache::PutWithCost(const std::string& key, ValuePtr value,
                             double cost) {
  if (cost <= 0) cost = 1.0;
  const size_t charge = EntryCharge(key, value);
  MutexLock lock(mu_);
  ++stats_.puts;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    charge_used_ -= it->second.charge;
    heap_.erase(it->second.heap_it);
    entries_.erase(it);
  }
  Entry entry;
  entry.value = std::move(value);
  entry.charge = charge;
  entry.cost = cost;
  entry.priority = inflation_ + cost / static_cast<double>(charge);
  entry.heap_it = heap_.emplace(entry.priority, key);
  charge_used_ += charge;
  entries_.emplace(key, std::move(entry));
  EvictIfNeeded();
  return Status::OK();
}

StatusOr<ValuePtr> GdsCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return Status::NotFound("key not in cache");
  }
  ++stats_.hits;
  Refresh(key, &it->second);
  return it->second.value;
}

Status GdsCache::Delete(const std::string& key) {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    charge_used_ -= it->second.charge;
    heap_.erase(it->second.heap_it);
    entries_.erase(it);
  }
  return Status::OK();
}

void GdsCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  heap_.clear();
  charge_used_ = 0;
  inflation_ = 0.0;
}

bool GdsCache::Contains(const std::string& key) const {
  MutexLock lock(mu_);
  return entries_.count(key) > 0;
}

size_t GdsCache::EntryCount() const {
  MutexLock lock(mu_);
  return entries_.size();
}

size_t GdsCache::ChargeUsed() const {
  MutexLock lock(mu_);
  return charge_used_;
}

StatusOr<std::vector<std::string>> GdsCache::Keys() const {
  MutexLock lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

CacheStats GdsCache::Stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace dstore
