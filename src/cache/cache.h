#ifndef DSTORE_CACHE_CACHE_H_
#define DSTORE_CACHE_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dstore {

// Counters every Cache implementation maintains. Hit rate is the headline
// number the paper's workload generator sweeps (Figs. 11-19).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

// The DSCL Cache interface (paper Section III): "The DSCL also supports
// multiple different types of caches via a Cache interface which defines how
// an application interacts with caches." In-process caches (LruCache,
// GdsCache) and the remote-process cache client all implement it, so a data
// store client can swap cache types without code changes.
//
// Values are immutable refcounted buffers; an in-process Get returns the
// stored buffer itself — no copy, no serialization (which is why in-process
// read latency is flat in object size, Figs. 11/13/15/17/19).
//
// Expiration times are deliberately NOT part of this interface: the DSCL
// manages them above the cache (see ExpiringCache), because not all caches
// support expiration and because expired-but-possibly-valid entries must be
// retained for revalidation.
class Cache {
 public:
  virtual ~Cache() = default;

  // Inserts or replaces `key`. May trigger evictions.
  virtual Status Put(const std::string& key, ValuePtr value) = 0;

  // Returns the cached value or NotFound.
  virtual StatusOr<ValuePtr> Get(const std::string& key) = 0;

  // Removes `key`; OK even if absent.
  virtual Status Delete(const std::string& key) = 0;

  // Removes everything.
  virtual void Clear() = 0;

  // True if `key` is present (does not count as a hit or miss).
  virtual bool Contains(const std::string& key) const = 0;

  // Number of cached entries.
  virtual size_t EntryCount() const = 0;

  // Sum of charges (approximately bytes) currently cached.
  virtual size_t ChargeUsed() const = 0;

  virtual CacheStats Stats() const = 0;

  virtual std::string Name() const = 0;

  // All currently cached keys, for warm-state persistence (paper Section
  // III: data can be saved before shutdown so a restarted cache "can
  // quickly be brought to a warm state") and diagnostics. Caches that
  // cannot enumerate return NotSupported.
  virtual StatusOr<std::vector<std::string>> Keys() const {
    return Status::NotSupported(Name() + " cache does not enumerate keys");
  }
};

// Charge accounting shared by implementations: key bytes + value bytes +
// a small fixed per-entry overhead.
inline size_t EntryCharge(const std::string& key, const ValuePtr& value) {
  return key.size() + (value ? value->size() : 0) + 64;
}

}  // namespace dstore

#endif  // DSTORE_CACHE_CACHE_H_
