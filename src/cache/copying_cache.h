#ifndef DSTORE_CACHE_COPYING_CACHE_H_
#define DSTORE_CACHE_COPYING_CACHE_H_

#include <memory>
#include <string>

#include "cache/cache.h"

namespace dstore {

// Copy-on-store / copy-on-load wrapper. The paper notes the trade-off for
// in-process caches (Section III): caching a reference is fastest but means
// "changes to the object from the application will change the cached object
// itself"; "a copy of the object can be made before the object is cached"
// at the price of copying overhead. This wrapper provides the copying
// variant so applications (and the ablation benchmarks) can pick either.
class CopyingCache : public Cache {
 public:
  explicit CopyingCache(std::unique_ptr<Cache> inner)
      : inner_(std::move(inner)) {}

  Status Put(const std::string& key, ValuePtr value) override {
    if (value == nullptr) return inner_->Put(key, nullptr);
    return inner_->Put(key, std::make_shared<const Bytes>(*value));
  }

  StatusOr<ValuePtr> Get(const std::string& key) override {
    DSTORE_ASSIGN_OR_RETURN(ValuePtr value, inner_->Get(key));
    if (value == nullptr) return value;
    return ValuePtr(std::make_shared<const Bytes>(*value));
  }

  Status Delete(const std::string& key) override { return inner_->Delete(key); }
  void Clear() override { inner_->Clear(); }
  bool Contains(const std::string& key) const override {
    return inner_->Contains(key);
  }
  size_t EntryCount() const override { return inner_->EntryCount(); }
  size_t ChargeUsed() const override { return inner_->ChargeUsed(); }
  CacheStats Stats() const override { return inner_->Stats(); }
  std::string Name() const override { return inner_->Name() + "+copy"; }
  StatusOr<std::vector<std::string>> Keys() const override {
    return inner_->Keys();
  }

 private:
  std::unique_ptr<Cache> inner_;
};

}  // namespace dstore

#endif  // DSTORE_CACHE_COPYING_CACHE_H_
