#ifndef DSTORE_CACHE_CACHE_METRICS_H_
#define DSTORE_CACHE_CACHE_METRICS_H_

#include <string>

#include "cache/cache.h"
#include "obs/metrics.h"

namespace dstore {

// Re-homes a Cache's CacheStats onto a MetricsRegistry: registers a
// scrape-time collector that copies the cache's counters into gauges
// labelled cache=<name>. CacheStats stays the per-instance accessor; the
// registry view is the process-wide one a /metrics scrape sees.
//
// Returns the collector id. The caller must RemoveCollector(id) before
// `cache` is destroyed (servers do this in Stop()).
inline int PublishCacheMetrics(obs::MetricsRegistry* registry, Cache* cache,
                               const std::string& name) {
  if (registry == nullptr) registry = obs::MetricsRegistry::Default();
  const obs::Labels labels = {{"cache", name}};
  obs::Gauge* hits = registry->GetGauge("dstore_cache_hits", labels,
                                        "Cache lookup hits.");
  obs::Gauge* misses = registry->GetGauge("dstore_cache_misses", labels,
                                          "Cache lookup misses.");
  obs::Gauge* puts =
      registry->GetGauge("dstore_cache_puts", labels, "Cache insertions.");
  obs::Gauge* evictions = registry->GetGauge("dstore_cache_evictions", labels,
                                             "Entries evicted for space.");
  obs::Gauge* entries = registry->GetGauge("dstore_cache_entries", labels,
                                           "Entries currently cached.");
  obs::Gauge* bytes = registry->GetGauge(
      "dstore_cache_charge_bytes", labels,
      "Approximate bytes currently cached (charge accounting).");
  return registry->AddCollector([=] {
    const CacheStats stats = cache->Stats();
    hits->Set(static_cast<double>(stats.hits));
    misses->Set(static_cast<double>(stats.misses));
    puts->Set(static_cast<double>(stats.puts));
    evictions->Set(static_cast<double>(stats.evictions));
    entries->Set(static_cast<double>(cache->EntryCount()));
    bytes->Set(static_cast<double>(cache->ChargeUsed()));
  });
}

}  // namespace dstore

#endif  // DSTORE_CACHE_CACHE_METRICS_H_
