#ifndef DSTORE_CACHE_LRU_CACHE_H_
#define DSTORE_CACHE_LRU_CACHE_H_

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "common/sync.h"

namespace dstore {

// Thread-safe in-process LRU cache with a byte-capacity budget, sharded by
// key hash to reduce lock contention — the C++ counterpart of the Guava
// cache the paper uses as its in-process cache. Stores ValuePtr directly
// ("the object (or a reference to it) can be stored directly in the cache",
// paper Section III), so hits return without copying.
class LruCache : public Cache {
 public:
  // `capacity_bytes` is the total charge budget across all shards.
  // `num_shards` must be a power of two (rounded up internally).
  explicit LruCache(size_t capacity_bytes, size_t num_shards = 16);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override { return "lru"; }
  StatusOr<std::vector<std::string>> Keys() const override;

  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Entry {
    std::string key;
    ValuePtr value;
    size_t charge;
  };

  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> map
        GUARDED_BY(mu);
    size_t charge_used GUARDED_BY(mu) = 0;
    CacheStats stats GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  // Evicts from the back of `shard` until it fits its budget.
  void EvictIfNeeded(Shard* shard) REQUIRES(shard->mu);

  size_t capacity_bytes_;
  size_t shard_capacity_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dstore

#endif  // DSTORE_CACHE_LRU_CACHE_H_
