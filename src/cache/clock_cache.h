#ifndef DSTORE_CACHE_CLOCK_CACHE_H_
#define DSTORE_CACHE_CLOCK_CACHE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"
#include "common/sync.h"

namespace dstore {

// CLOCK (second-chance) replacement cache: approximates LRU with a single
// reference bit per entry and a sweeping hand, avoiding LRU's list
// manipulation on every hit — the design the paper's related work singles
// out for memcached ("a CLOCK-based eviction algorithm requiring only one
// extra bit per cache entry", [32]). Hits only set a flag, so the hit path
// is cheaper and more concurrent-friendly than LRU's splice.
class ClockCache : public Cache {
 public:
  explicit ClockCache(size_t capacity_bytes);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override { return "clock"; }
  StatusOr<std::vector<std::string>> Keys() const override;

 private:
  struct Slot {
    std::string key;
    ValuePtr value;
    size_t charge = 0;
    bool referenced = false;
    bool occupied = false;
  };

  // Advances the hand, clearing reference bits, until a victim is evicted.
  void EvictOne() REQUIRES(mu_);
  void EvictUntilFits() REQUIRES(mu_);

  const size_t capacity_bytes_;
  mutable Mutex mu_;
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> index_ GUARDED_BY(mu_);  // key->slot
  std::vector<size_t> free_slots_ GUARDED_BY(mu_);
  size_t hand_ GUARDED_BY(mu_) = 0;
  size_t charge_used_ GUARDED_BY(mu_) = 0;
  CacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_CACHE_CLOCK_CACHE_H_
