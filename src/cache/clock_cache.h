#ifndef DSTORE_CACHE_CLOCK_CACHE_H_
#define DSTORE_CACHE_CLOCK_CACHE_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.h"

namespace dstore {

// CLOCK (second-chance) replacement cache: approximates LRU with a single
// reference bit per entry and a sweeping hand, avoiding LRU's list
// manipulation on every hit — the design the paper's related work singles
// out for memcached ("a CLOCK-based eviction algorithm requiring only one
// extra bit per cache entry", [32]). Hits only set a flag, so the hit path
// is cheaper and more concurrent-friendly than LRU's splice.
class ClockCache : public Cache {
 public:
  explicit ClockCache(size_t capacity_bytes);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override { return "clock"; }
  StatusOr<std::vector<std::string>> Keys() const override;

 private:
  struct Slot {
    std::string key;
    ValuePtr value;
    size_t charge = 0;
    bool referenced = false;
    bool occupied = false;
  };

  // Caller holds mu_. Advances the hand, clearing reference bits, until a
  // victim is evicted.
  void EvictOne();
  void EvictUntilFits();

  const size_t capacity_bytes_;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::unordered_map<std::string, size_t> index_;  // key -> slot
  std::vector<size_t> free_slots_;
  size_t hand_ = 0;
  size_t charge_used_ = 0;
  CacheStats stats_;
};

}  // namespace dstore

#endif  // DSTORE_CACHE_CLOCK_CACHE_H_
