#ifndef DSTORE_CACHE_GDS_CACHE_H_
#define DSTORE_CACHE_GDS_CACHE_H_

#include <map>
#include <string>
#include <unordered_map>

#include "cache/cache.h"
#include "common/sync.h"

namespace dstore {

// Greedy-Dual-Size replacement cache (the alternative to LRU the paper
// cites, [20] Cao & Irani): each entry gets priority H = L + cost/size,
// where L is an aging "inflation" value raised to the priority of each
// evicted entry. Large objects with low fetch cost are evicted first;
// frequently re-referenced entries get their H refreshed and survive.
//
// `cost` models the latency of refetching from the backing store; callers
// that know per-key fetch costs (e.g. a cloud store vs a local store) pass
// them to PutWithCost, making the cache favor expensive-to-miss objects.
class GdsCache : public Cache {
 public:
  explicit GdsCache(size_t capacity_bytes);

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  void Clear() override;
  bool Contains(const std::string& key) const override;
  size_t EntryCount() const override;
  size_t ChargeUsed() const override;
  CacheStats Stats() const override;
  std::string Name() const override { return "gds"; }
  StatusOr<std::vector<std::string>> Keys() const override;

  // Put with an explicit refetch cost (default cost is 1.0).
  Status PutWithCost(const std::string& key, ValuePtr value, double cost);

 private:
  struct Entry {
    ValuePtr value;
    size_t charge;
    double cost;
    double priority;  // H value
    std::multimap<double, std::string>::iterator heap_it;
  };

  // Recomputes priority and repositions in the heap.
  void Refresh(const std::string& key, Entry* entry) REQUIRES(mu_);
  void EvictIfNeeded() REQUIRES(mu_);

  const size_t capacity_bytes_;
  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
  // Priority-ordered index (lowest H first = next eviction victim).
  std::multimap<double, std::string> heap_ GUARDED_BY(mu_);
  double inflation_ GUARDED_BY(mu_) = 0.0;  // L
  size_t charge_used_ GUARDED_BY(mu_) = 0;
  CacheStats stats_ GUARDED_BY(mu_);
};

}  // namespace dstore

#endif  // DSTORE_CACHE_GDS_CACHE_H_
