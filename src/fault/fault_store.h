#ifndef DSTORE_FAULT_FAULT_STORE_H_
#define DSTORE_FAULT_FAULT_STORE_H_

#include <memory>
#include <string>

#include "common/clock.h"
#include "fault/fault.h"
#include "store/key_value.h"

namespace dstore {

// KeyValueStore decorator that injects faults from a FaultPlan around every
// operation — the store-layer injection surface of src/fault/ and the
// replacement for the old ad-hoc FlakyStore (which survives in
// store/resilient_store.h as a thin alias over this class).
//
// Per operation the plan is consulted at (site, op) with op one of put, get,
// delete, contains, listkeys, count, clear, getifchanged, multiget,
// multiput. Fault kinds:
//   kError            the inner store is never called; the rule's error
//                     class is returned.
//   kErrorAfterApply  the inner operation runs (the write lands) but the
//                     error is returned anyway — acknowledged-lost.
//   kLatency          sleep latency_nanos on the given clock, then proceed.
//   kCorrupt          proceed, then flip one byte of a Get/MultiGet result
//                     (deterministic position from the fault seq).
//
// With a plan whose rules never fire (or fire with probability 0) the
// decorator is behaviour-identical to the bare store — enforced by the
// fault-wrapped rows of kv_conformance_test.
class FaultInjectingStore : public KeyValueStore {
 public:
  FaultInjectingStore(std::shared_ptr<KeyValueStore> inner,
                      std::shared_ptr<fault::FaultPlan> plan,
                      std::string site = "store", Clock* clock = nullptr)
      : inner_(std::move(inner)),
        plan_(std::move(plan)),
        site_(std::move(site)),
        clock_(clock != nullptr ? clock : RealClock::Default()) {}

  Status Put(const std::string& key, ValuePtr value) override;
  StatusOr<ValuePtr> Get(const std::string& key) override;
  Status Delete(const std::string& key) override;
  StatusOr<bool> Contains(const std::string& key) override;
  StatusOr<std::vector<std::string>> ListKeys() override;
  StatusOr<size_t> Count() override;
  Status Clear() override;
  StatusOr<ConditionalGetResult> GetIfChanged(
      const std::string& key, const std::string& etag) override;
  std::vector<StatusOr<ValuePtr>> MultiGet(
      const std::vector<std::string>& keys) override;
  Status MultiPut(
      const std::vector<std::pair<std::string, ValuePtr>>& entries) override;
  std::string Name() const override { return inner_->Name() + "+fault"; }

  const std::shared_ptr<fault::FaultPlan>& plan() const { return plan_; }
  KeyValueStore* inner() const { return inner_.get(); }
  uint64_t injected_failures() const { return plan_->injected_total(); }

 private:
  // Evaluates the plan for `op`; applies any latency stall. Returns the
  // fired fault (already counted/traced) for the caller to act on.
  std::optional<fault::Fault> Hit(const char* op);

  std::shared_ptr<KeyValueStore> inner_;
  std::shared_ptr<fault::FaultPlan> plan_;
  std::string site_;
  Clock* clock_;
};

}  // namespace dstore

#endif  // DSTORE_FAULT_FAULT_STORE_H_
