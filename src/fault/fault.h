#ifndef DSTORE_FAULT_FAULT_H_
#define DSTORE_FAULT_FAULT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/sync.h"
#include "obs/metrics.h"

namespace dstore {
namespace fault {

// Deterministic, schedule-driven fault injection (the machinery behind the
// chaos and crash-recovery suites in tests/chaos/). A FaultPlan is a seeded
// RNG plus a list of declarative FaultRules; injection sites anywhere in the
// library — the FaultInjectingStore decorator, the socket layer, servers —
// ask the plan "does a fault fire here?" and act on the answer. Every
// decision is recorded in a replayable trace, so any failure reproduces from
// the single seed printed by the test harness (Jepsen/CrashMonkey-style
// methodology; see PAPERS.md).

// What an injected fault does at the site where it fires.
enum class FaultKind {
  kError,            // fail the operation before it takes effect
  kErrorAfterApply,  // let the operation take effect, then report an error
                     // (the acknowledged-lost case)
  kLatency,          // delay the operation, then let it proceed
  kCorrupt,          // let it proceed but mangle the payload (stores: flip a
                     // byte; sockets: short write)
};

std::string_view FaultKindName(FaultKind kind);

// One declarative injection rule. A rule applies at matching (site, op)
// pairs; scheduling fields pick which matching operations it fires on.
struct FaultRule {
  // Site filter: exact match, or a prefix ending in '*' ("net.*"), or "*".
  std::string site = "*";
  // Operation filter: "*" or a comma-separated list ("put,get,delete").
  std::string op = "*";

  // --- scheduling ---
  double probability = 1.0;  // chance of firing on an eligible match
  uint64_t after = 0;        // skip the first `after` matching ops
  uint64_t every = 0;        // fire only on every Nth eligible match (0 = all)
  uint64_t limit = 0;        // stop after this many fires (0 = unlimited)

  // --- effect ---
  FaultKind kind = FaultKind::kError;
  StatusCode error = StatusCode::kUnavailable;
  int64_t latency_nanos = 0;  // delay for kLatency (may accompany any kind)

  bool MatchesSite(std::string_view s) const;
  bool MatchesOp(std::string_view o) const;

  std::string ToString() const;

  // Parses one rule from the fault DSL: whitespace-separated key=value
  // tokens, e.g.
  //   "site=store op=put,delete p=0.1 error=unavailable"
  //   "site=net.write at=3 kind=corrupt"       (fail exactly the 3rd write)
  //   "site=store op=get kind=latency latency_ms=5 every=10"
  // Keys: site, op, p|probability, after, every, limit, at (sugar for
  // after=N-1 limit=1), kind (error|error_after_apply|latency|corrupt),
  // error (unavailable|ioerror|timedout|corruption|internal|notfound),
  // latency_ms, latency_ns.
  static StatusOr<FaultRule> Parse(std::string_view spec);
};

// The decision returned when a rule fires.
struct Fault {
  size_t rule_index = 0;
  FaultKind kind = FaultKind::kError;
  StatusCode error = StatusCode::kUnavailable;
  int64_t latency_nanos = 0;
  uint64_t seq = 0;  // plan-wide decision sequence number

  // The Status an injection site should surface, e.g.
  // "injected fault #12 at store/put".
  Status ToStatus(std::string_view site, std::string_view op) const;
};

// A seeded schedule of faults. Thread-safe; decisions are serialized under
// one lock so a single-threaded workload over the plan is fully
// deterministic. Injection counts are mirrored into the default obs
// registry as dstore_fault_injected_total{site=,kind=}.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed);

  void AddRule(const FaultRule& rule);

  // Builds a plan from newline- or ';'-separated DSL rules (see
  // FaultRule::Parse). Blank rules and '#' comments are ignored.
  static StatusOr<std::shared_ptr<FaultPlan>> FromSpec(uint64_t seed,
                                                       std::string_view spec);

  // Consults the plan at an injection site. Returns the fired fault, or
  // nullopt to proceed normally. The first matching rule that fires wins.
  std::optional<Fault> Evaluate(std::string_view site, std::string_view op);

  uint64_t seed() const { return seed_; }
  // Operations evaluated (whether or not a fault fired).
  uint64_t ops_seen() const { return ops_seen_.load(); }
  // Faults injected so far.
  uint64_t injected_total() const { return injected_.load(); }

  struct TraceEntry {
    uint64_t seq = 0;
    std::string site;
    std::string op;
    size_t rule_index = 0;
    FaultKind kind = FaultKind::kError;
    StatusCode error = StatusCode::kUnavailable;
  };
  std::vector<TraceEntry> Trace() const;

  // One line per injection — stable across runs with the same seed and
  // workload, so two traces can be compared byte-for-byte (the determinism
  // test) or dumped when an invariant fails.
  std::string TraceString() const;

 private:
  obs::Counter* CounterFor(std::string_view site, FaultKind kind)
      REQUIRES(mu_);

  const uint64_t seed_;
  mutable Mutex mu_;
  Random rng_ GUARDED_BY(mu_);
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  // Matching ops seen / faults fired, per rule.
  std::vector<uint64_t> rule_matches_ GUARDED_BY(mu_);
  std::vector<uint64_t> rule_fires_ GUARDED_BY(mu_);
  std::vector<TraceEntry> trace_ GUARDED_BY(mu_);
  std::map<std::string, obs::Counter*> counters_ GUARDED_BY(mu_);
  std::atomic<uint64_t> ops_seen_{0};
  std::atomic<uint64_t> injected_{0};
};

// --- Crash points -----------------------------------------------------------
//
// Simulated kill-points on durability paths (CrashMonkey-style). Production
// code calls CrashPointFires("sql.wal.before_fsync") at instrumented sites;
// unless a test armed that point the call is a single relaxed atomic load.
// When an armed point fires, the site abandons the operation mid-flight —
// leaving on-disk state exactly as a real crash would — and returns
// CrashedStatus(point); the test then reopens from disk and verifies
// recovery. Fires are counted in dstore_fault_crashes_total{point=}.
//
// Instrumented points:
//   sql.wal.before_append   nothing reaches the WAL
//   sql.wal.torn_append     half the record's bytes reach the WAL
//   sql.wal.before_fsync    appended but unsynced bytes are discarded
//   sql.wal.after_fsync     durable, but the client sees an error
//   file.put.before_write   temp file never created
//   file.put.torn_write     half the value reaches the temp file
//   file.put.before_rename  temp file complete but never renamed in
//   file.put.before_dirsync renamed, but the directory entry not yet durable
//   file.put.after_rename   durable, but the client sees an error
//   cache.snapshot.torn_save  snapshot value truncated mid-write
//   lsm.wal.before_append   nothing reaches the LSM WAL
//   lsm.wal.torn_append     half the record's bytes reach the WAL
//   lsm.wal.before_fsync    appended but unsynced bytes are discarded
//   lsm.wal.after_fsync     durable, but the client sees an error
//   lsm.sst.torn_write      half the SST reaches its temp file
//   lsm.sst.before_rename   SST temp complete but never published
//   lsm.manifest.torn_write    half the manifest reaches its temp file
//   lsm.manifest.before_rename manifest temp complete, old version still live
//   lsm.manifest.after_rename  durable, but the caller sees an error
//   replica.log.torn_append    half the record reaches the replication log
//   replica.log.before_sync    appended but unsynced bytes are discarded
//   replica.log.after_sync     durable, but the caller sees an error
//
// The replication layer also consults FaultPlan sites "replica.handoff"
// (op replay: break hinted-handoff replay to a rejoining replica) and
// "replica.promote" (op promote: abort or delay a failover promotion);
// see src/replica/group.h.

// True when `point` is armed and its countdown reaches zero on this call.
bool CrashPointFires(std::string_view point);

// The status surfaced by a site that simulated a crash:
// IOError("injected crash at <point>").
Status CrashedStatus(std::string_view point);
bool IsCrashStatus(const Status& status);

// Arms `point` to fire on its `countdown`-th upcoming hit (1 = next hit).
void ArmCrashPoint(const std::string& point, uint64_t countdown = 1);
void DisarmCrashPoints();

// Total fires across all points since process start (monotonic).
uint64_t CrashesInjected();

// --- Socket-level injection -------------------------------------------------
//
// The socket layer (net/socket.cc, net/server.cc) consults a process-wide
// injector — when one is installed — before connect/read/write/accept, so
// CloudStoreClient and RemoteCache are exercised over genuinely broken
// transports. The interface lives here (not in net/) so the plan-driven
// implementation below carries no net dependency.

// What a socket operation should suffer. `error` OK means proceed normally
// after any stall.
struct SocketFault {
  Status error;             // surfaced to the caller; OK = proceed
  size_t allow_prefix = 0;  // writes: bytes actually sent before failing
  int64_t stall_nanos = 0;  // sleep before acting
  bool reset = false;       // hard-close the descriptor (peer sees EOF/RST)
};

class SocketFaultInjector {
 public:
  virtual ~SocketFaultInjector() = default;
  virtual std::optional<SocketFault> OnConnect(const std::string& host,
                                               uint16_t port) = 0;
  virtual std::optional<SocketFault> OnWrite(size_t len) = 0;
  virtual std::optional<SocketFault> OnRead(size_t len) = 0;
  // Consulted by the server accept loop; a fault drops the new connection.
  virtual std::optional<SocketFault> OnAccept() = 0;
};

// Installs (or, with nullptr, removes) the process-wide injector. The
// injector is shared so in-flight socket calls on other threads stay valid
// across removal.
void InstallSocketFaultInjector(std::shared_ptr<SocketFaultInjector> injector);

// The installed injector, or nullptr (the common case: one relaxed load).
std::shared_ptr<SocketFaultInjector> InstalledSocketFaultInjector();

// RAII install/remove for tests.
class ScopedSocketFaultInjector {
 public:
  explicit ScopedSocketFaultInjector(
      std::shared_ptr<SocketFaultInjector> injector) {
    InstallSocketFaultInjector(std::move(injector));
  }
  ~ScopedSocketFaultInjector() { InstallSocketFaultInjector(nullptr); }
  ScopedSocketFaultInjector(const ScopedSocketFaultInjector&) = delete;
  ScopedSocketFaultInjector& operator=(const ScopedSocketFaultInjector&) =
      delete;
};

// FaultPlan-driven injector. Sites: net.connect, net.write, net.read,
// net.accept (ops: connect/write/read/accept). Kind mapping per site:
//   kError on net.connect          -> connection refused (rule's error code)
//   kError on net.write / net.read -> mid-message reset (descriptor closed)
//   kCorrupt on net.write          -> short write: half the bytes, then error
//   kLatency anywhere              -> stall, then proceed
class PlanSocketFaultInjector : public SocketFaultInjector {
 public:
  explicit PlanSocketFaultInjector(std::shared_ptr<FaultPlan> plan)
      : plan_(std::move(plan)) {}

  std::optional<SocketFault> OnConnect(const std::string& host,
                                       uint16_t port) override;
  std::optional<SocketFault> OnWrite(size_t len) override;
  std::optional<SocketFault> OnRead(size_t len) override;
  std::optional<SocketFault> OnAccept() override;

  const std::shared_ptr<FaultPlan>& plan() const { return plan_; }

 private:
  std::optional<SocketFault> Translate(std::string_view site, size_t len,
                                       std::optional<Fault> fault);

  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace fault
}  // namespace dstore

#endif  // DSTORE_FAULT_FAULT_H_
