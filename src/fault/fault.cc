#include "fault/fault.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace dstore {
namespace fault {

namespace {

// Splits `s` on any of `seps`, trimming whitespace, dropping empties.
std::vector<std::string> SplitTrim(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&] {
    const size_t begin = current.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      current.clear();
      return;
    }
    const size_t end = current.find_last_not_of(" \t\r");
    out.push_back(current.substr(begin, end - begin + 1));
    current.clear();
  };
  for (char c : s) {
    if (seps.find(c) != std::string_view::npos) {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  return out;
}

StatusOr<StatusCode> ParseErrorClass(std::string_view name) {
  if (name == "unavailable") return StatusCode::kUnavailable;
  if (name == "ioerror") return StatusCode::kIOError;
  if (name == "timedout") return StatusCode::kTimedOut;
  if (name == "corruption") return StatusCode::kCorruption;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "notfound") return StatusCode::kNotFound;
  if (name == "overloaded") return StatusCode::kOverloaded;
  return Status::InvalidArgument("unknown fault error class: " +
                                 std::string(name));
}

StatusOr<FaultKind> ParseKind(std::string_view name) {
  if (name == "error") return FaultKind::kError;
  if (name == "error_after_apply") return FaultKind::kErrorAfterApply;
  if (name == "latency") return FaultKind::kLatency;
  if (name == "corrupt") return FaultKind::kCorrupt;
  return Status::InvalidArgument("unknown fault kind: " + std::string(name));
}

Status MakeStatus(StatusCode code, std::string message) {
  return Status(code, std::move(message));
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kErrorAfterApply:
      return "error_after_apply";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

bool FaultRule::MatchesSite(std::string_view s) const {
  if (site == "*") return true;
  if (!site.empty() && site.back() == '*') {
    return s.substr(0, site.size() - 1) == std::string_view(site).substr(0, site.size() - 1);
  }
  return s == site;
}

bool FaultRule::MatchesOp(std::string_view o) const {
  if (op == "*") return true;
  for (const std::string& candidate : SplitTrim(op, ",")) {
    if (o == candidate) return true;
  }
  return false;
}

std::string FaultRule::ToString() const {
  std::ostringstream out;
  out << "site=" << site << " op=" << op << " p=" << probability
      << " kind=" << FaultKindName(kind) << " error="
      << StatusCodeToString(error);
  if (after > 0) out << " after=" << after;
  if (every > 0) out << " every=" << every;
  if (limit > 0) out << " limit=" << limit;
  if (latency_nanos > 0) out << " latency_ns=" << latency_nanos;
  return out.str();
}

StatusOr<FaultRule> FaultRule::Parse(std::string_view spec) {
  FaultRule rule;
  for (const std::string& token : SplitTrim(spec, " \t")) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault rule token is not key=value: " +
                                     token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) {
      return Status::InvalidArgument("empty value in fault rule: " + token);
    }
    char* end = nullptr;
    if (key == "site") {
      rule.site = value;
    } else if (key == "op") {
      rule.op = value;
    } else if (key == "p" || key == "probability") {
      rule.probability = std::strtod(value.c_str(), &end);
      if (*end != '\0' || rule.probability < 0.0 || rule.probability > 1.0) {
        return Status::InvalidArgument("bad probability: " + value);
      }
    } else if (key == "after") {
      rule.after = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0') return Status::InvalidArgument("bad after: " + value);
    } else if (key == "every") {
      rule.every = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0') return Status::InvalidArgument("bad every: " + value);
    } else if (key == "limit") {
      rule.limit = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0') return Status::InvalidArgument("bad limit: " + value);
    } else if (key == "at") {
      // Fail exactly the Nth matching operation (1-based).
      const uint64_t at = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0' || at == 0) {
        return Status::InvalidArgument("bad at: " + value);
      }
      rule.after = at - 1;
      rule.limit = 1;
      rule.probability = 1.0;
    } else if (key == "kind") {
      DSTORE_ASSIGN_OR_RETURN(rule.kind, ParseKind(value));
    } else if (key == "error") {
      DSTORE_ASSIGN_OR_RETURN(rule.error, ParseErrorClass(value));
    } else if (key == "latency_ms") {
      const double ms = std::strtod(value.c_str(), &end);
      if (*end != '\0' || ms < 0) {
        return Status::InvalidArgument("bad latency_ms: " + value);
      }
      rule.latency_nanos = static_cast<int64_t>(ms * 1e6);
    } else if (key == "latency_ns") {
      rule.latency_nanos = std::strtoll(value.c_str(), &end, 10);
      if (*end != '\0' || rule.latency_nanos < 0) {
        return Status::InvalidArgument("bad latency_ns: " + value);
      }
    } else {
      return Status::InvalidArgument("unknown fault rule key: " + key);
    }
  }
  return rule;
}

Status Fault::ToStatus(std::string_view site, std::string_view op) const {
  return MakeStatus(error, "injected fault #" + std::to_string(seq) + " at " +
                               std::string(site) + "/" + std::string(op));
}

FaultPlan::FaultPlan(uint64_t seed) : seed_(seed), rng_(seed) {}

void FaultPlan::AddRule(const FaultRule& rule) {
  MutexLock lock(mu_);
  rules_.push_back(rule);
  rule_matches_.push_back(0);
  rule_fires_.push_back(0);
}

StatusOr<std::shared_ptr<FaultPlan>> FaultPlan::FromSpec(
    uint64_t seed, std::string_view spec) {
  auto plan = std::make_shared<FaultPlan>(seed);
  for (const std::string& line : SplitTrim(spec, "\n;")) {
    if (line.empty() || line[0] == '#') continue;
    DSTORE_ASSIGN_OR_RETURN(FaultRule rule, FaultRule::Parse(line));
    plan->AddRule(rule);
  }
  return plan;
}

obs::Counter* FaultPlan::CounterFor(std::string_view site, FaultKind kind) {
  const std::string key =
      std::string(site) + "|" + std::string(FaultKindName(kind));
  auto it = counters_.find(key);
  if (it != counters_.end()) return it->second;
  obs::Counter* counter = obs::MetricsRegistry::Default()->GetCounter(
      "dstore_fault_injected_total",
      {{"site", std::string(site)}, {"kind", std::string(FaultKindName(kind))}},
      "Faults injected by fault plans, by site and kind.");
  counters_.emplace(key, counter);
  return counter;
}

std::optional<Fault> FaultPlan::Evaluate(std::string_view site,
                                         std::string_view op) {
  MutexLock lock(mu_);
  ops_seen_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (!rule.MatchesSite(site) || !rule.MatchesOp(op)) continue;
    const uint64_t match = rule_matches_[i]++;
    if (match < rule.after) continue;
    if (rule.limit > 0 && rule_fires_[i] >= rule.limit) continue;
    if (rule.every > 1 && (match - rule.after) % rule.every != 0) continue;
    if (rule.probability < 1.0 && !rng_.Bernoulli(rule.probability)) continue;

    ++rule_fires_[i];
    const uint64_t seq = injected_.fetch_add(1, std::memory_order_relaxed);
    Fault fault;
    fault.rule_index = i;
    fault.kind = rule.kind;
    fault.error = rule.error;
    fault.latency_nanos = rule.latency_nanos;
    fault.seq = seq;
    trace_.push_back(TraceEntry{seq, std::string(site), std::string(op), i,
                                rule.kind, rule.error});
    CounterFor(site, rule.kind)->Increment();
    return fault;
  }
  return std::nullopt;
}

std::vector<FaultPlan::TraceEntry> FaultPlan::Trace() const {
  MutexLock lock(mu_);
  return trace_;
}

std::string FaultPlan::TraceString() const {
  MutexLock lock(mu_);
  std::ostringstream out;
  for (const TraceEntry& entry : trace_) {
    out << '#' << entry.seq << ' ' << entry.site << '/' << entry.op
        << " rule=" << entry.rule_index << ' ' << FaultKindName(entry.kind)
        << ' ' << StatusCodeToString(entry.error) << '\n';
  }
  return out.str();
}

// --- Crash points -----------------------------------------------------------

namespace {

struct CrashPointState {
  Mutex mu;
  // point -> remaining hits before it fires (fires when the count reaches 0).
  std::map<std::string, uint64_t> armed;
  std::atomic<uint64_t> crashes{0};
};

CrashPointState* CrashState() {
  static CrashPointState* state = new CrashPointState();
  return state;
}

// Fast-path gate: false while no point is armed anywhere in the process.
std::atomic<bool> g_crash_points_armed{false};

constexpr char kCrashMessagePrefix[] = "injected crash at ";

}  // namespace

bool CrashPointFires(std::string_view point) {
  if (!g_crash_points_armed.load(std::memory_order_relaxed)) return false;
  CrashPointState* state = CrashState();
  MutexLock lock(state->mu);
  auto it = state->armed.find(std::string(point));
  if (it == state->armed.end()) return false;
  if (--it->second > 0) return false;
  state->armed.erase(it);
  if (state->armed.empty()) {
    g_crash_points_armed.store(false, std::memory_order_relaxed);
  }
  state->crashes.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Default()
      ->GetCounter("dstore_fault_crashes_total",
                   {{"point", std::string(point)}},
                   "Simulated crashes fired at instrumented crash points.")
      ->Increment();
  return true;
}

Status CrashedStatus(std::string_view point) {
  return Status::IOError(kCrashMessagePrefix + std::string(point));
}

bool IsCrashStatus(const Status& status) {
  return status.IsIOError() &&
         status.message().rfind(kCrashMessagePrefix, 0) == 0;
}

void ArmCrashPoint(const std::string& point, uint64_t countdown) {
  if (countdown == 0) countdown = 1;
  CrashPointState* state = CrashState();
  MutexLock lock(state->mu);
  state->armed[point] = countdown;
  g_crash_points_armed.store(true, std::memory_order_relaxed);
}

void DisarmCrashPoints() {
  CrashPointState* state = CrashState();
  MutexLock lock(state->mu);
  state->armed.clear();
  g_crash_points_armed.store(false, std::memory_order_relaxed);
}

uint64_t CrashesInjected() {
  return CrashState()->crashes.load(std::memory_order_relaxed);
}

// --- Socket-level injection -------------------------------------------------

namespace {

std::atomic<bool> g_socket_injection_enabled{false};
Mutex g_socket_injector_mu;
std::shared_ptr<SocketFaultInjector>* SocketInjectorSlot() {
  static auto* slot = new std::shared_ptr<SocketFaultInjector>();
  return slot;
}

}  // namespace

void InstallSocketFaultInjector(
    std::shared_ptr<SocketFaultInjector> injector) {
  MutexLock lock(g_socket_injector_mu);
  *SocketInjectorSlot() = injector;
  g_socket_injection_enabled.store(injector != nullptr,
                                   std::memory_order_relaxed);
}

std::shared_ptr<SocketFaultInjector> InstalledSocketFaultInjector() {
  if (!g_socket_injection_enabled.load(std::memory_order_relaxed)) {
    return nullptr;
  }
  MutexLock lock(g_socket_injector_mu);
  return *SocketInjectorSlot();
}

std::optional<SocketFault> PlanSocketFaultInjector::Translate(
    std::string_view site, size_t len, std::optional<Fault> fired) {
  if (!fired.has_value()) return std::nullopt;
  SocketFault fault;
  fault.stall_nanos = fired->latency_nanos;
  switch (fired->kind) {
    case FaultKind::kLatency:
      // Stall only; error stays OK.
      break;
    case FaultKind::kCorrupt:
      // Short write: half the payload leaves, then the call fails.
      fault.allow_prefix = len / 2;
      fault.error = fired->ToStatus(site, "short");
      break;
    case FaultKind::kError:
    case FaultKind::kErrorAfterApply:
      fault.error = fired->ToStatus(site, "fault");
      fault.reset = site != "net.connect" && site != "net.accept";
      break;
  }
  return fault;
}

std::optional<SocketFault> PlanSocketFaultInjector::OnConnect(
    const std::string& host, uint16_t port) {
  (void)host;
  (void)port;
  return Translate("net.connect", 0, plan_->Evaluate("net.connect", "connect"));
}

std::optional<SocketFault> PlanSocketFaultInjector::OnWrite(size_t len) {
  return Translate("net.write", len, plan_->Evaluate("net.write", "write"));
}

std::optional<SocketFault> PlanSocketFaultInjector::OnRead(size_t len) {
  return Translate("net.read", len, plan_->Evaluate("net.read", "read"));
}

std::optional<SocketFault> PlanSocketFaultInjector::OnAccept() {
  return Translate("net.accept", 0, plan_->Evaluate("net.accept", "accept"));
}

}  // namespace fault
}  // namespace dstore
