#include "fault/fault_store.h"

namespace dstore {

namespace {

// Flips one byte of `value` at a position derived from the fault's sequence
// number, returning a new corrupted copy.
ValuePtr CorruptValue(const ValuePtr& value, uint64_t seq) {
  Bytes mangled = *value;
  if (!mangled.empty()) {
    mangled[seq % mangled.size()] ^= 0xFF;
  }
  return MakeValue(std::move(mangled));
}

}  // namespace

std::optional<fault::Fault> FaultInjectingStore::Hit(const char* op) {
  std::optional<fault::Fault> fired = plan_->Evaluate(site_, op);
  if (fired.has_value() && fired->latency_nanos > 0) {
    clock_->SleepFor(fired->latency_nanos);
  }
  return fired;
}

Status FaultInjectingStore::Put(const std::string& key, ValuePtr value) {
  const auto fired = Hit("put");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency) {
    return inner_->Put(key, std::move(value));
  }
  if (fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->Put(key, value != nullptr ? CorruptValue(value, fired->seq)
                                             : nullptr);
  }
  if (fired->kind == fault::FaultKind::kErrorAfterApply) {
    inner_->Put(key, std::move(value)).ok();  // the write lands regardless
  }
  return fired->ToStatus(site_, "put");
}

StatusOr<ValuePtr> FaultInjectingStore::Get(const std::string& key) {
  const auto fired = Hit("get");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency) {
    return inner_->Get(key);
  }
  if (fired->kind == fault::FaultKind::kCorrupt) {
    DSTORE_ASSIGN_OR_RETURN(ValuePtr value, inner_->Get(key));
    return CorruptValue(value, fired->seq);
  }
  if (fired->kind == fault::FaultKind::kErrorAfterApply) {
    inner_->Get(key).ok();  // the read happens, the result is dropped
  }
  return fired->ToStatus(site_, "get");
}

Status FaultInjectingStore::Delete(const std::string& key) {
  const auto fired = Hit("delete");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency ||
      fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->Delete(key);
  }
  if (fired->kind == fault::FaultKind::kErrorAfterApply) {
    inner_->Delete(key).ok();  // the delete lands regardless
  }
  return fired->ToStatus(site_, "delete");
}

StatusOr<bool> FaultInjectingStore::Contains(const std::string& key) {
  const auto fired = Hit("contains");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency ||
      fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->Contains(key);
  }
  return fired->ToStatus(site_, "contains");
}

StatusOr<std::vector<std::string>> FaultInjectingStore::ListKeys() {
  const auto fired = Hit("listkeys");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency ||
      fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->ListKeys();
  }
  return fired->ToStatus(site_, "listkeys");
}

StatusOr<size_t> FaultInjectingStore::Count() {
  const auto fired = Hit("count");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency ||
      fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->Count();
  }
  return fired->ToStatus(site_, "count");
}

Status FaultInjectingStore::Clear() {
  const auto fired = Hit("clear");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency ||
      fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->Clear();
  }
  if (fired->kind == fault::FaultKind::kErrorAfterApply) {
    inner_->Clear().ok();
  }
  return fired->ToStatus(site_, "clear");
}

StatusOr<ConditionalGetResult> FaultInjectingStore::GetIfChanged(
    const std::string& key, const std::string& etag) {
  const auto fired = Hit("getifchanged");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency) {
    return inner_->GetIfChanged(key, etag);
  }
  if (fired->kind == fault::FaultKind::kCorrupt) {
    DSTORE_ASSIGN_OR_RETURN(ConditionalGetResult result,
                            inner_->GetIfChanged(key, etag));
    if (!result.not_modified && result.value != nullptr) {
      result.value = CorruptValue(result.value, fired->seq);
    }
    return result;
  }
  return fired->ToStatus(site_, "getifchanged");
}

std::vector<StatusOr<ValuePtr>> FaultInjectingStore::MultiGet(
    const std::vector<std::string>& keys) {
  const auto fired = Hit("multiget");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency) {
    return inner_->MultiGet(keys);
  }
  if (fired->kind == fault::FaultKind::kCorrupt) {
    std::vector<StatusOr<ValuePtr>> results = inner_->MultiGet(keys);
    for (auto& result : results) {
      if (result.ok()) result = CorruptValue(*result, fired->seq);
    }
    return results;
  }
  std::vector<StatusOr<ValuePtr>> results;
  results.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    results.push_back(fired->ToStatus(site_, "multiget"));
  }
  return results;
}

Status FaultInjectingStore::MultiPut(
    const std::vector<std::pair<std::string, ValuePtr>>& entries) {
  const auto fired = Hit("multiput");
  if (!fired.has_value() || fired->kind == fault::FaultKind::kLatency ||
      fired->kind == fault::FaultKind::kCorrupt) {
    return inner_->MultiPut(entries);
  }
  if (fired->kind == fault::FaultKind::kErrorAfterApply) {
    inner_->MultiPut(entries).ok();  // the batch lands regardless
  }
  return fired->ToStatus(site_, "multiput");
}

}  // namespace dstore
