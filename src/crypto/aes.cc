#include "crypto/aes.h"

#include <cstring>

namespace dstore {

namespace {

constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e,
    0x81, 0xf3, 0xd7, 0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32,
    0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50,
    0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05,
    0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41,
    0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8,
    0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59,
    0x27, 0x80, 0xec, 0x5f, 0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0, 0xe0, 0x3b, 0x4d,
    0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63,
    0x55, 0x21, 0x0c, 0x7d};

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

// Multiplication in GF(2^8) with the AES reduction polynomial.
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t result = 0;
  while (b != 0) {
    if (b & 1) result ^= a;
    const bool high = (a & 0x80) != 0;
    a <<= 1;
    if (high) a ^= 0x1b;
    b >>= 1;
  }
  return result;
}

// T-tables: Te folds SubBytes + MixColumns for encryption, Td folds
// InvSubBytes + InvMixColumns for decryption (equivalent inverse cipher).
struct AesTables {
  uint32_t te[4][256];
  uint32_t td[4][256];

  AesTables() {
    for (int x = 0; x < 256; ++x) {
      const uint8_t s = kSbox[x];
      const uint32_t te0 = (static_cast<uint32_t>(GfMul(s, 2)) << 24) |
                           (static_cast<uint32_t>(s) << 16) |
                           (static_cast<uint32_t>(s) << 8) |
                           static_cast<uint32_t>(GfMul(s, 3));
      te[0][x] = te0;
      te[1][x] = (te0 >> 8) | (te0 << 24);
      te[2][x] = (te0 >> 16) | (te0 << 16);
      te[3][x] = (te0 >> 24) | (te0 << 8);

      const uint8_t is = kInvSbox[x];
      const uint32_t td0 = (static_cast<uint32_t>(GfMul(is, 14)) << 24) |
                           (static_cast<uint32_t>(GfMul(is, 9)) << 16) |
                           (static_cast<uint32_t>(GfMul(is, 13)) << 8) |
                           static_cast<uint32_t>(GfMul(is, 11));
      td[0][x] = td0;
      td[1][x] = (td0 >> 8) | (td0 << 24);
      td[2][x] = (td0 >> 16) | (td0 << 16);
      td[3][x] = (td0 >> 24) | (td0 << 8);
    }
  }
};

const AesTables& Tables() {
  static const AesTables* const kTables = new AesTables();
  return *kTables;
}

// InvMixColumns applied to a raw word (no S-box), for the decryption key
// schedule of the equivalent inverse cipher.
uint32_t InvMixColumnsWord(uint32_t w) {
  const uint8_t a0 = static_cast<uint8_t>(w >> 24);
  const uint8_t a1 = static_cast<uint8_t>(w >> 16);
  const uint8_t a2 = static_cast<uint8_t>(w >> 8);
  const uint8_t a3 = static_cast<uint8_t>(w);
  const uint8_t b0 = GfMul(a0, 14) ^ GfMul(a1, 11) ^ GfMul(a2, 13) ^ GfMul(a3, 9);
  const uint8_t b1 = GfMul(a0, 9) ^ GfMul(a1, 14) ^ GfMul(a2, 11) ^ GfMul(a3, 13);
  const uint8_t b2 = GfMul(a0, 13) ^ GfMul(a1, 9) ^ GfMul(a2, 14) ^ GfMul(a3, 11);
  const uint8_t b3 = GfMul(a0, 11) ^ GfMul(a1, 13) ^ GfMul(a2, 9) ^ GfMul(a3, 14);
  return (static_cast<uint32_t>(b0) << 24) | (static_cast<uint32_t>(b1) << 16) |
         (static_cast<uint32_t>(b2) << 8) | b3;
}

uint32_t SubWord(uint32_t w) {
  return (static_cast<uint32_t>(kSbox[(w >> 24) & 0xff]) << 24) |
         (static_cast<uint32_t>(kSbox[(w >> 16) & 0xff]) << 16) |
         (static_cast<uint32_t>(kSbox[(w >> 8) & 0xff]) << 8) |
         static_cast<uint32_t>(kSbox[w & 0xff]);
}

uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }

uint32_t LoadWord(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

void StoreWord(uint32_t w, uint8_t* p) {
  p[0] = static_cast<uint8_t>(w >> 24);
  p[1] = static_cast<uint8_t>(w >> 16);
  p[2] = static_cast<uint8_t>(w >> 8);
  p[3] = static_cast<uint8_t>(w);
}

}  // namespace

Status Aes::SetKey(const Bytes& key) {
  int nk = 0;  // key length in 32-bit words
  switch (key.size()) {
    case 16:
      nk = 4;
      rounds_ = 10;
      break;
    case 24:
      nk = 6;
      rounds_ = 12;
      break;
    case 32:
      nk = 8;
      rounds_ = 14;
      break;
    default:
      rounds_ = 0;
      return Status::InvalidArgument("AES key must be 16, 24, or 32 bytes");
  }

  const int total_words = 4 * (rounds_ + 1);
  for (int i = 0; i < nk; ++i) {
    round_keys_[i] = LoadWord(key.data() + 4 * i);
  }
  for (int i = nk; i < total_words; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^
             (static_cast<uint32_t>(kRcon[i / nk]) << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }

  // Equivalent inverse cipher key schedule: reverse the round order and run
  // the middle round keys through InvMixColumns.
  for (int c = 0; c < 4; ++c) {
    dec_round_keys_[c] = round_keys_[4 * rounds_ + c];
    dec_round_keys_[4 * rounds_ + c] = round_keys_[c];
  }
  for (int round = 1; round < rounds_; ++round) {
    for (int c = 0; c < 4; ++c) {
      dec_round_keys_[4 * round + c] =
          InvMixColumnsWord(round_keys_[4 * (rounds_ - round) + c]);
    }
  }
  return Status::OK();
}

void Aes::EncryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  const AesTables& tables = Tables();
  uint32_t w0 = LoadWord(in) ^ round_keys_[0];
  uint32_t w1 = LoadWord(in + 4) ^ round_keys_[1];
  uint32_t w2 = LoadWord(in + 8) ^ round_keys_[2];
  uint32_t w3 = LoadWord(in + 12) ^ round_keys_[3];

  for (int round = 1; round < rounds_; ++round) {
    const uint32_t* rk = round_keys_ + 4 * round;
    const uint32_t t0 = tables.te[0][w0 >> 24] ^ tables.te[1][(w1 >> 16) & 0xff] ^
                        tables.te[2][(w2 >> 8) & 0xff] ^ tables.te[3][w3 & 0xff] ^
                        rk[0];
    const uint32_t t1 = tables.te[0][w1 >> 24] ^ tables.te[1][(w2 >> 16) & 0xff] ^
                        tables.te[2][(w3 >> 8) & 0xff] ^ tables.te[3][w0 & 0xff] ^
                        rk[1];
    const uint32_t t2 = tables.te[0][w2 >> 24] ^ tables.te[1][(w3 >> 16) & 0xff] ^
                        tables.te[2][(w0 >> 8) & 0xff] ^ tables.te[3][w1 & 0xff] ^
                        rk[2];
    const uint32_t t3 = tables.te[0][w3 >> 24] ^ tables.te[1][(w0 >> 16) & 0xff] ^
                        tables.te[2][(w1 >> 8) & 0xff] ^ tables.te[3][w2 & 0xff] ^
                        rk[3];
    w0 = t0;
    w1 = t1;
    w2 = t2;
    w3 = t3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const uint32_t* rk = round_keys_ + 4 * rounds_;
  auto final_word = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
    return (static_cast<uint32_t>(kSbox[a >> 24]) << 24) |
           (static_cast<uint32_t>(kSbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<uint32_t>(kSbox[(c >> 8) & 0xff]) << 8) |
           static_cast<uint32_t>(kSbox[d & 0xff]);
  };
  StoreWord(final_word(w0, w1, w2, w3) ^ rk[0], out);
  StoreWord(final_word(w1, w2, w3, w0) ^ rk[1], out + 4);
  StoreWord(final_word(w2, w3, w0, w1) ^ rk[2], out + 8);
  StoreWord(final_word(w3, w0, w1, w2) ^ rk[3], out + 12);
}

void Aes::DecryptBlock(const uint8_t in[kBlockSize],
                       uint8_t out[kBlockSize]) const {
  const AesTables& tables = Tables();
  uint32_t w0 = LoadWord(in) ^ dec_round_keys_[0];
  uint32_t w1 = LoadWord(in + 4) ^ dec_round_keys_[1];
  uint32_t w2 = LoadWord(in + 8) ^ dec_round_keys_[2];
  uint32_t w3 = LoadWord(in + 12) ^ dec_round_keys_[3];

  for (int round = 1; round < rounds_; ++round) {
    const uint32_t* rk = dec_round_keys_ + 4 * round;
    const uint32_t t0 = tables.td[0][w0 >> 24] ^ tables.td[1][(w3 >> 16) & 0xff] ^
                        tables.td[2][(w2 >> 8) & 0xff] ^ tables.td[3][w1 & 0xff] ^
                        rk[0];
    const uint32_t t1 = tables.td[0][w1 >> 24] ^ tables.td[1][(w0 >> 16) & 0xff] ^
                        tables.td[2][(w3 >> 8) & 0xff] ^ tables.td[3][w2 & 0xff] ^
                        rk[1];
    const uint32_t t2 = tables.td[0][w2 >> 24] ^ tables.td[1][(w1 >> 16) & 0xff] ^
                        tables.td[2][(w0 >> 8) & 0xff] ^ tables.td[3][w3 & 0xff] ^
                        rk[2];
    const uint32_t t3 = tables.td[0][w3 >> 24] ^ tables.td[1][(w2 >> 16) & 0xff] ^
                        tables.td[2][(w1 >> 8) & 0xff] ^ tables.td[3][w0 & 0xff] ^
                        rk[3];
    w0 = t0;
    w1 = t1;
    w2 = t2;
    w3 = t3;
  }

  // Final round: InvSubBytes + InvShiftRows + AddRoundKey.
  const uint32_t* rk = dec_round_keys_ + 4 * rounds_;
  auto final_word = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d) {
    return (static_cast<uint32_t>(kInvSbox[a >> 24]) << 24) |
           (static_cast<uint32_t>(kInvSbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<uint32_t>(kInvSbox[(c >> 8) & 0xff]) << 8) |
           static_cast<uint32_t>(kInvSbox[d & 0xff]);
  };
  StoreWord(final_word(w0, w3, w2, w1) ^ rk[0], out);
  StoreWord(final_word(w1, w0, w3, w2) ^ rk[1], out + 4);
  StoreWord(final_word(w2, w1, w0, w3) ^ rk[2], out + 8);
  StoreWord(final_word(w3, w2, w1, w0) ^ rk[3], out + 12);
}

}  // namespace dstore
