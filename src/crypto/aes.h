#ifndef DSTORE_CRYPTO_AES_H_
#define DSTORE_CRYPTO_AES_H_

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace dstore {

// AES block cipher (FIPS 197) supporting 128-, 192- and 256-bit keys.
// Implemented with the classic 32-bit T-table formulation (SubBytes +
// ShiftRows + MixColumns folded into four table lookups per column) and the
// equivalent inverse cipher, so encryption and decryption run at the same
// speed — the symmetry Fig. 20 of the paper shows. This is the primitive
// beneath the CBC/CTR Cipher implementations in cipher.h; application code
// should use those, not raw blocks.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  Aes() = default;

  // Expands `key` (16, 24, or 32 bytes). Must be called before block ops.
  Status SetKey(const Bytes& key);

  bool has_key() const { return rounds_ != 0; }

  // Encrypts/decrypts exactly one 16-byte block. `in` and `out` may alias.
  void EncryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;
  void DecryptBlock(const uint8_t in[kBlockSize],
                    uint8_t out[kBlockSize]) const;

 private:
  // Up to 15 round keys of 4 words each (AES-256); decryption uses keys
  // transformed for the equivalent inverse cipher.
  uint32_t round_keys_[60] = {};
  uint32_t dec_round_keys_[60] = {};
  int rounds_ = 0;
};

}  // namespace dstore

#endif  // DSTORE_CRYPTO_AES_H_
