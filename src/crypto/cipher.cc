#include "crypto/cipher.h"

#include <cstring>
#include <random>

#include "crypto/sha256.h"

namespace dstore {

namespace {

uint64_t SecureSeed() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

void FillBlock(Random* rng, uint8_t block[Aes::kBlockSize]) {
  const uint64_t a = rng->NextUint64();
  const uint64_t b = rng->NextUint64();
  std::memcpy(block, &a, 8);
  std::memcpy(block + 8, &b, 8);
}

// Constant-time comparison so MAC verification does not leak prefix length.
bool ConstantTimeEqual(const uint8_t* a, const uint8_t* b, size_t n) {
  uint8_t diff = 0;
  for (size_t i = 0; i < n; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace

StatusOr<std::unique_ptr<Cipher>> AesCbcCipher::Make(const Bytes& key) {
  return MakeWithSeed(key, SecureSeed());
}

StatusOr<std::unique_ptr<Cipher>> AesCbcCipher::MakeWithSeed(const Bytes& key,
                                                             uint64_t iv_seed) {
  Aes aes;
  DSTORE_RETURN_IF_ERROR(aes.SetKey(key));
  return std::unique_ptr<Cipher>(new AesCbcCipher(aes, iv_seed));
}

StatusOr<Bytes> AesCbcCipher::Encrypt(const Bytes& plaintext) {
  uint8_t iv[Aes::kBlockSize];
  {
    MutexLock lock(mu_);
    FillBlock(&iv_rng_, iv);
  }

  // PKCS#7: pad with `pad` copies of `pad`, where pad in [1, 16].
  const size_t pad = Aes::kBlockSize - (plaintext.size() % Aes::kBlockSize);
  Bytes padded = plaintext;
  padded.insert(padded.end(), pad, static_cast<uint8_t>(pad));

  Bytes out(Aes::kBlockSize + padded.size());
  std::memcpy(out.data(), iv, Aes::kBlockSize);

  uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv, Aes::kBlockSize);
  for (size_t off = 0; off < padded.size(); off += Aes::kBlockSize) {
    uint8_t block[Aes::kBlockSize];
    for (size_t i = 0; i < Aes::kBlockSize; ++i) {
      block[i] = padded[off + i] ^ chain[i];
    }
    aes_.EncryptBlock(block, out.data() + Aes::kBlockSize + off);
    std::memcpy(chain, out.data() + Aes::kBlockSize + off, Aes::kBlockSize);
  }
  return out;
}

StatusOr<Bytes> AesCbcCipher::Decrypt(const Bytes& ciphertext) {
  if (ciphertext.size() < 2 * Aes::kBlockSize ||
      ciphertext.size() % Aes::kBlockSize != 0) {
    return Status::Corruption("AES-CBC ciphertext has invalid length");
  }
  const uint8_t* iv = ciphertext.data();
  const uint8_t* body = ciphertext.data() + Aes::kBlockSize;
  const size_t body_len = ciphertext.size() - Aes::kBlockSize;

  Bytes plain(body_len);
  uint8_t chain[Aes::kBlockSize];
  std::memcpy(chain, iv, Aes::kBlockSize);
  for (size_t off = 0; off < body_len; off += Aes::kBlockSize) {
    uint8_t block[Aes::kBlockSize];
    aes_.DecryptBlock(body + off, block);
    for (size_t i = 0; i < Aes::kBlockSize; ++i) {
      plain[off + i] = block[i] ^ chain[i];
    }
    std::memcpy(chain, body + off, Aes::kBlockSize);
  }

  const uint8_t pad = plain.back();
  if (pad == 0 || pad > Aes::kBlockSize || pad > plain.size()) {
    return Status::Corruption("AES-CBC padding is invalid");
  }
  for (size_t i = plain.size() - pad; i < plain.size(); ++i) {
    if (plain[i] != pad) {
      return Status::Corruption("AES-CBC padding is invalid");
    }
  }
  plain.resize(plain.size() - pad);
  return plain;
}

StatusOr<std::unique_ptr<Cipher>> AesCtrCipher::Make(const Bytes& key) {
  return MakeWithSeed(key, SecureSeed());
}

StatusOr<std::unique_ptr<Cipher>> AesCtrCipher::MakeWithSeed(const Bytes& key,
                                                             uint64_t iv_seed) {
  Aes aes;
  DSTORE_RETURN_IF_ERROR(aes.SetKey(key));
  return std::unique_ptr<Cipher>(new AesCtrCipher(aes, iv_seed));
}

Bytes AesCtrCipher::Crypt(const Bytes& input,
                          const uint8_t nonce[Aes::kBlockSize]) const {
  Bytes out(input.size());
  uint8_t counter[Aes::kBlockSize];
  std::memcpy(counter, nonce, Aes::kBlockSize);
  uint8_t keystream[Aes::kBlockSize];
  for (size_t off = 0; off < input.size(); off += Aes::kBlockSize) {
    aes_.EncryptBlock(counter, keystream);
    const size_t n = std::min<size_t>(Aes::kBlockSize, input.size() - off);
    for (size_t i = 0; i < n; ++i) out[off + i] = input[off + i] ^ keystream[i];
    // Increment the counter block big-endian.
    for (int i = Aes::kBlockSize - 1; i >= 0; --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

StatusOr<Bytes> AesCtrCipher::Encrypt(const Bytes& plaintext) {
  uint8_t nonce[Aes::kBlockSize];
  {
    MutexLock lock(mu_);
    FillBlock(&iv_rng_, nonce);
  }
  Bytes body = Crypt(plaintext, nonce);
  Bytes out;
  out.reserve(Aes::kBlockSize + body.size());
  out.insert(out.end(), nonce, nonce + Aes::kBlockSize);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

StatusOr<Bytes> AesCtrCipher::Decrypt(const Bytes& ciphertext) {
  if (ciphertext.size() < Aes::kBlockSize) {
    return Status::Corruption("AES-CTR ciphertext shorter than nonce");
  }
  Bytes body(ciphertext.begin() + Aes::kBlockSize, ciphertext.end());
  return Crypt(body, ciphertext.data());
}

StatusOr<Bytes> AuthenticatedCipher::Encrypt(const Bytes& plaintext) {
  DSTORE_ASSIGN_OR_RETURN(Bytes inner, inner_->Encrypt(plaintext));
  const auto tag = HmacSha256(mac_key_, inner);
  inner.insert(inner.end(), tag.begin(), tag.end());
  return inner;
}

StatusOr<Bytes> AuthenticatedCipher::Decrypt(const Bytes& ciphertext) {
  if (ciphertext.size() < Sha256::kDigestSize) {
    return Status::Corruption("authenticated ciphertext shorter than tag");
  }
  const size_t body_len = ciphertext.size() - Sha256::kDigestSize;
  Bytes body(ciphertext.begin(),
             ciphertext.begin() + static_cast<ptrdiff_t>(body_len));
  const auto expected = HmacSha256(mac_key_, body);
  if (!ConstantTimeEqual(expected.data(), ciphertext.data() + body_len,
                         Sha256::kDigestSize)) {
    return Status::Corruption("MAC verification failed");
  }
  return inner_->Decrypt(body);
}

StatusOr<std::unique_ptr<Cipher>> MakePassphraseCipher(
    std::string_view passphrase, bool authenticated) {
  if (passphrase.empty()) {
    return Status::InvalidArgument("passphrase must not be empty");
  }
  const Bytes password = ToBytes(passphrase);
  const Bytes salt = ToBytes("dstore.cipher.v1");
  // 16 bytes of AES key + 32 bytes of MAC key.
  Bytes derived = Pbkdf2HmacSha256(password, salt, /*iterations=*/4096,
                                   /*out_len=*/48);
  const Bytes aes_key(derived.begin(), derived.begin() + 16);
  DSTORE_ASSIGN_OR_RETURN(std::unique_ptr<Cipher> base,
                          AesCbcCipher::Make(aes_key));
  if (!authenticated) return base;
  Bytes mac_key(derived.begin() + 16, derived.end());
  return std::unique_ptr<Cipher>(
      new AuthenticatedCipher(std::move(base), std::move(mac_key)));
}

}  // namespace dstore
