#ifndef DSTORE_CRYPTO_CIPHER_H_
#define DSTORE_CRYPTO_CIPHER_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/random.h"
#include "common/status.h"
#include "common/sync.h"
#include "crypto/aes.h"

namespace dstore {

// Pluggable encryption algorithm, mirroring the DSCL's modular design: "for
// important features, there is an interface and multiple possible
// implementations" (paper Section II). Data store clients encrypt values
// before sending them to the server so confidentiality does not depend on
// the server or the channel.
class Cipher {
 public:
  virtual ~Cipher() = default;

  virtual StatusOr<Bytes> Encrypt(const Bytes& plaintext) = 0;
  virtual StatusOr<Bytes> Decrypt(const Bytes& ciphertext) = 0;

  virtual std::string name() const = 0;
};

// Pass-through cipher; lets callers disable encryption without branching.
class IdentityCipher : public Cipher {
 public:
  StatusOr<Bytes> Encrypt(const Bytes& plaintext) override {
    return plaintext;
  }
  StatusOr<Bytes> Decrypt(const Bytes& ciphertext) override {
    return ciphertext;
  }
  std::string name() const override { return "identity"; }
};

// AES in CBC mode with PKCS#7 padding. Output layout: 16-byte IV followed by
// the ciphertext. A fresh IV is drawn per message. Thread-safe.
class AesCbcCipher : public Cipher {
 public:
  // `key` must be 16, 24, or 32 bytes. `iv_seed` seeds the IV generator;
  // pass a fixed seed only in tests that need reproducible output.
  static StatusOr<std::unique_ptr<Cipher>> Make(const Bytes& key);
  static StatusOr<std::unique_ptr<Cipher>> MakeWithSeed(const Bytes& key,
                                                        uint64_t iv_seed);

  StatusOr<Bytes> Encrypt(const Bytes& plaintext) override;
  StatusOr<Bytes> Decrypt(const Bytes& ciphertext) override;
  std::string name() const override { return "aes-cbc"; }

 private:
  AesCbcCipher(Aes aes, uint64_t iv_seed) : aes_(aes), iv_rng_(iv_seed) {}

  Aes aes_;
  Mutex mu_;
  Random iv_rng_ GUARDED_BY(mu_);
};

// AES in CTR mode. Output layout: 16-byte nonce/counter block followed by
// ciphertext (same length as plaintext; no padding). Thread-safe.
class AesCtrCipher : public Cipher {
 public:
  static StatusOr<std::unique_ptr<Cipher>> Make(const Bytes& key);
  static StatusOr<std::unique_ptr<Cipher>> MakeWithSeed(const Bytes& key,
                                                        uint64_t iv_seed);

  StatusOr<Bytes> Encrypt(const Bytes& plaintext) override;
  StatusOr<Bytes> Decrypt(const Bytes& ciphertext) override;
  std::string name() const override { return "aes-ctr"; }

 private:
  AesCtrCipher(Aes aes, uint64_t iv_seed) : aes_(aes), iv_rng_(iv_seed) {}

  Bytes Crypt(const Bytes& input, const uint8_t nonce[Aes::kBlockSize]) const;

  Aes aes_;
  Mutex mu_;
  Random iv_rng_ GUARDED_BY(mu_);
};

// Encrypt-then-MAC wrapper: appends an HMAC-SHA256 tag over the inner
// ciphertext and verifies it (in constant time) before decrypting. Guards
// cached/stored ciphertext against tampering.
class AuthenticatedCipher : public Cipher {
 public:
  AuthenticatedCipher(std::unique_ptr<Cipher> inner, Bytes mac_key)
      : inner_(std::move(inner)), mac_key_(std::move(mac_key)) {}

  StatusOr<Bytes> Encrypt(const Bytes& plaintext) override;
  StatusOr<Bytes> Decrypt(const Bytes& ciphertext) override;
  std::string name() const override { return inner_->name() + "+hmac"; }

 private:
  std::unique_ptr<Cipher> inner_;
  Bytes mac_key_;
};

// Derives a cipher from a passphrase: PBKDF2 stretches the passphrase into
// an AES-128 key (and a MAC key when `authenticated` is set).
StatusOr<std::unique_ptr<Cipher>> MakePassphraseCipher(
    std::string_view passphrase, bool authenticated = false);

}  // namespace dstore

#endif  // DSTORE_CRYPTO_CIPHER_H_
