#ifndef DSTORE_CRYPTO_SHA256_H_
#define DSTORE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace dstore {

// Incremental SHA-256 (FIPS 180-4). Used for key derivation (PBKDF2), HMAC
// integrity tags, and entity tags for cache revalidation.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;

  Sha256();

  // Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }

  // Finalizes and returns the digest. The object must not be reused after
  // Finish without calling Reset.
  std::array<uint8_t, kDigestSize> Finish();

  void Reset();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(const void* data, size_t len);
  static std::array<uint8_t, kDigestSize> Hash(const Bytes& data) {
    return Hash(data.data(), data.size());
  }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

// HMAC-SHA256 (RFC 2104).
std::array<uint8_t, Sha256::kDigestSize> HmacSha256(const Bytes& key,
                                                    const Bytes& message);

// PBKDF2-HMAC-SHA256 (RFC 8018). Derives `out_len` bytes from a password.
Bytes Pbkdf2HmacSha256(const Bytes& password, const Bytes& salt,
                       uint32_t iterations, size_t out_len);

}  // namespace dstore

#endif  // DSTORE_CRYPTO_SHA256_H_
