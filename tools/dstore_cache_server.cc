// Standalone remote-process cache server (the Redis-like daemon). Runs the
// RESP-like framed protocol from store/remote_cache.h on a TCP port; any
// number of clients (RemoteCache / RemoteCacheStore / RemoteCacheConnection)
// can share it — the deployment shape of paper Section III's remote-process
// caching.
//
//   dstore_cache_server [--port=N] [--capacity-mb=N]
//                       [--eviction=lru|clock|gds] [--warm-file=PATH]
//                       [--metrics-port=N]
//
// Prints "LISTENING <port>" on stdout once ready. SIGINT/SIGTERM shut down
// cleanly, saving warm state to --warm-file if given. --metrics-port starts
// an HTTP sidecar serving GET /metrics (Prometheus text), /metrics.json,
// /traces, and /healthz; the backing cache's stats are published as
// dstore_cache_* gauges.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <semaphore.h>

#include "cache/clock_cache.h"
#include "cache/gds_cache.h"
#include "cache/lru_cache.h"
#include "dscl/cache_persistence.h"
#include "net/obs_endpoint.h"
#include "store/file_store.h"
#include "store/remote_cache.h"

namespace {
sem_t g_shutdown;
void HandleSignal(int) { sem_post(&g_shutdown); }
}  // namespace

int main(int argc, char** argv) {
  using namespace dstore;

  uint16_t port = 6380;
  int metrics_port = -1;
  size_t capacity_mb = 256;
  std::string eviction = "lru";
  std::string warm_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port = std::atoi(arg.c_str() + 15);
    } else if (arg.rfind("--capacity-mb=", 0) == 0) {
      capacity_mb = static_cast<size_t>(std::atoll(arg.c_str() + 14));
    } else if (arg.rfind("--eviction=", 0) == 0) {
      eviction = arg.substr(11);
    } else if (arg.rfind("--warm-file=", 0) == 0) {
      warm_file = arg.substr(12);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--capacity-mb=N] "
                   "[--eviction=lru|clock|gds] [--warm-file=PATH] "
                   "[--metrics-port=N]\n",
                   argv[0]);
      return 2;
    }
  }

  const size_t capacity = capacity_mb << 20;
  std::unique_ptr<Cache> cache;
  if (eviction == "lru") {
    cache = std::make_unique<LruCache>(capacity);
  } else if (eviction == "clock") {
    cache = std::make_unique<ClockCache>(capacity);
  } else if (eviction == "gds") {
    cache = std::make_unique<GdsCache>(capacity);
  } else {
    std::fprintf(stderr, "unknown eviction policy: %s\n", eviction.c_str());
    return 2;
  }

  // Warm restart (paper Section III): reload entries saved at shutdown.
  std::unique_ptr<FileStore> warm_store;
  if (!warm_file.empty()) {
    auto opened = FileStore::Open(
        std::filesystem::path(warm_file).parent_path().empty()
            ? "."
            : std::filesystem::path(warm_file).parent_path());
    if (opened.ok()) {
      warm_store = *std::move(opened);
      auto loaded = LoadCacheFromStore(
          cache.get(), warm_store.get(),
          std::filesystem::path(warm_file).filename().string());
      if (loaded.ok()) {
        std::fprintf(stderr, "warm start: %zu entries restored\n", *loaded);
      }
    }
  }

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  auto server = RemoteCacheServer::Start(std::move(cache), port);
  if (!server.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ObsHttpServer> metrics_server;
  if (metrics_port >= 0) {
    auto obs = ObsHttpServer::Start(static_cast<uint16_t>(metrics_port));
    if (!obs.ok()) {
      std::fprintf(stderr, "metrics endpoint failed: %s\n",
                   obs.status().ToString().c_str());
      return 1;
    }
    metrics_server = *std::move(obs);
    std::fprintf(stderr, "metrics on http://127.0.0.1:%u/metrics\n",
                 metrics_server->port());
  }
  std::printf("LISTENING %u\n", (*server)->port());
  std::fflush(stdout);

  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }

  if (warm_store != nullptr) {
    const Status saved = SaveCacheToStore(
        (*server)->backing(), warm_store.get(),
        std::filesystem::path(warm_file).filename().string());
    std::fprintf(stderr, "warm state save: %s\n", saved.ToString().c_str());
  }
  (*server)->Stop();
  return 0;
}
