// Standalone simulated cloud object store: the HTTP/1.1 REST server from
// store/cloud_server.h with a configurable WAN latency profile, runnable as
// its own process so experiments can target it like a real remote service.
//
//   dstore_cloud_server [--port=N] [--profile=cloud1|cloud2|none]
//                       [--wan-scale=F] [--seed=N]
//
// Prints "LISTENING <port>" on stdout once ready. The data port itself
// serves GET /metrics (Prometheus text), /metrics.json, /traces, and
// /healthz without the injected WAN delay, so the server is scrapeable
// in-band: curl http://127.0.0.1:<port>/metrics

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <semaphore.h>

#include "net/latency_model.h"
#include "store/cloud_server.h"

namespace {
sem_t g_shutdown;
void HandleSignal(int) { sem_post(&g_shutdown); }
}  // namespace

int main(int argc, char** argv) {
  using namespace dstore;

  uint16_t port = 8420;
  std::string profile = "cloud2";
  double wan_scale = 1.0;
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile = arg.substr(10);
    } else if (arg.rfind("--wan-scale=", 0) == 0) {
      wan_scale = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--profile=cloud1|cloud2|none] "
                   "[--wan-scale=F] [--seed=N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::unique_ptr<LatencyModel> latency;
  if (profile == "cloud1") {
    latency = std::make_unique<WanLatency>(CloudStore1Profile(wan_scale), seed);
  } else if (profile == "cloud2") {
    latency = std::make_unique<WanLatency>(CloudStore2Profile(wan_scale), seed);
  } else if (profile == "none") {
    latency = std::make_unique<NoLatency>();
  } else {
    std::fprintf(stderr, "unknown profile: %s\n", profile.c_str());
    return 2;
  }

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  auto server = CloudStoreServer::Start(std::move(latency), port);
  if (!server.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", (*server)->port());
  std::fflush(stdout);

  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }
  (*server)->Stop();
  return 0;
}
