#!/usr/bin/env python3
"""Reactor-context blocking-call analyzer for dstore.

    python3 tools/dstore_blocking.py [options] [paths...]

Walks the static call graph from every function annotated
DSTORE_NONBLOCKING_CTX (reactor loop bodies, epoll callbacks, loop-posted
task handlers) and reports any transitively reachable call to a function
annotated DSTORE_BLOCKING (fsync paths, CondVar::Wait, ListenableFuture::Get,
blocking socket ops, Clock::SleepFor, ...). A call lexically covered by a
DSTORE_BLOCKING_OK(reason) scope in the same function is suppressed — that
is the reviewed, documented escape hatch (see docs/testing.md).

With no paths, analyzes src/. Exits non-zero when violations are found
(or, with --expect-violations, when the expected count is NOT found — the
mode scripts/check.sh uses to prove the gate still bites on the seeded
fixture in tests/analysis/).

Frontends (--frontend=auto|libclang|text, default auto):

  libclang   Parses real ASTs via the clang python bindings and a
             compile_commands.json (written by every CMake configure since
             CMAKE_EXPORT_COMPILE_COMMANDS went in). Precise: overloads and
             member functions resolve by USR, lambdas attribute to their
             enclosing function.
  text       A dependency-free lexical frontend: strips comments/strings/
             preprocessor lines, recovers function definitions by brace
             matching, and matches calls by name. Deliberately conservative
             — any call whose *name* matches an annotated-blocking function
             is flagged. Two documented blind spots: calls made through
             std::function/function-pointer values are invisible (this is
             what makes worker-pool task closures, which are dispatched
             through std::function, correctly out of scope), and lambda
             bodies are excluded from their enclosing function (a lambda's
             execution context is unknowable lexically; the repo discipline
             is that anything a loop-side lambda calls is itself annotated
             DSTORE_NONBLOCKING_CTX and therefore a root of its own — the
             runtime check in common/sync.h covers the remainder).

auto picks libclang when the bindings import AND pass an embedded smoke
test, else falls back to text with a note — so CI legs without the
bindings still gate on the text frontend instead of skipping.
"""

import argparse
import bisect
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DIRS = ["src"]
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

BLOCKING = "DSTORE_BLOCKING"
NONBLOCKING = "DSTORE_NONBLOCKING_CTX"
OK_MACRO = "DSTORE_BLOCKING_OK"

ANNOT_RE = re.compile(r"\b(DSTORE_BLOCKING|DSTORE_NONBLOCKING_CTX)\b")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
# Like CALL_RE but capturing an explicit A::B:: qualifier chain when present;
# the last component disambiguates which class's method is being called.
QCALL_RE = re.compile(r"\b((?:[A-Za-z_]\w*::)*)([A-Za-z_]\w*)\s*\(")
OK_RE = re.compile(r"\bDSTORE_BLOCKING_OK\s*\(")
CLASS_HEADER_RE = re.compile(r"\b(?:class|struct)\s+((?:\w+::)*\w+)[^;{]*$")

# Names that look like calls lexically but never are (control flow, casts,
# declaration specifiers) plus this repo's attribute-style macros, which all
# take parenthesized arguments in function headers and bodies.
NOT_A_CALL = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "throw", "new", "delete",
    "void", "int", "char", "bool", "auto", "float", "double", "short",
    "long", "unsigned", "signed", "operator", "defined", "assert",
    "alignas", "typeid", "co_await", "co_return", "co_yield",
    # thread-safety / blocking annotation macros (common/sync.h)
    "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED",
    "TRY_ACQUIRE", "EXCLUDES", "RETURN_CAPABILITY", "CAPABILITY",
    "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
    "DSTORE_THREAD_ANNOTATION_", OK_MACRO,
}

NON_FUNC_HEADER_RE = re.compile(
    r"\b(class|struct|union|enum|namespace)\s+[\w:]*\s*(final\s*)?"
    r"(:\s*[^:{].*)?$"
)

LAMBDA_INTRO_RE = re.compile(
    r"\[[^\[\]]*\]\s*(\([^()]*\))?\s*(mutable\b\s*)?(noexcept\b\s*)?"
    r"(->\s*[\w:<>,&*\s]+?)?\s*\{"
)


# ---------------------------------------------------------------------------
# Text frontend: lexical scan
# ---------------------------------------------------------------------------

def strip_code(text):
    """Blanks comments, string/char literals, and preprocessor lines with
    spaces (newlines kept) so offsets and line numbers stay valid."""
    out = list(text)
    n = len(text)
    i = 0
    state = None  # None | 'line' | 'block' | 'str' | 'chr'
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "str"
                out[i] = " "
            elif c == "'":
                state = "chr"
                out[i] = " "
        elif state == "line":
            if c == "\n":
                state = None
            else:
                out[i] = " "
        elif state == "block":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = None
                i += 2
                continue
            if c != "\n":
                out[i] = " "
        elif state in ("str", "chr"):
            if c == "\\":
                out[i] = " "
                if i + 1 < n and text[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            quote = '"' if state == "str" else "'"
            out[i] = " "
            if c == quote:
                state = None
        i += 1
    # Preprocessor lines (including backslash continuations).
    lines = "".join(out).split("\n")
    in_directive = False
    for idx, line in enumerate(lines):
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            lines[idx] = " " * len(line)
        else:
            in_directive = False
    return "\n".join(lines)


def strip_lambdas(body):
    """Blanks lambda bodies (braces included) inside a function body."""
    out = body
    while True:
        m = LAMBDA_INTRO_RE.search(out)
        if not m:
            return out
        open_brace = m.end() - 1
        end = match_brace(out, open_brace)
        out = out[:open_brace] + " " * (end - open_brace + 1) + out[end + 1:]


def match_brace(text, open_pos):
    """Offset of the '}' matching the '{' at open_pos (len-1 if unbalanced)."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def header_function_name(header):
    """(name, qualifier-or-None, offset-in-header) if `header` reads like a
    function signature, else None. The first call-like identifier wins: in
    every signature form this repo uses (free function, qualified method,
    constructor with init list, trailing annotations) that is the function's
    name; an explicit `Class::Name` prefix yields the qualifier."""
    if not header.strip():
        return None
    if re.search(r"=\s*$", header):
        return None  # brace initializer, not a body
    if NON_FUNC_HEADER_RE.search(header):
        return None
    for m in QCALL_RE.finditer(header):
        name = m.group(2)
        if name in NOT_A_CALL:
            continue
        qual = m.group(1).rstrip(":").split("::")[-1] if m.group(1) else None
        return name, qual, m.start(2)
    return None


class FuncDef:
    def __init__(self, name, qual, rel, name_off, body_start, body_end,
                 annotations):
        self.name = name
        self.qual = qual  # enclosing/explicit class name, or None
        self.rel = rel
        self.name_off = name_off
        self.body_start = body_start
        self.body_end = body_end
        self.annotations = annotations
        self.calls = []  # (qualifier-hint, callee, offset, suppressed)


def scan_file(rel, text):
    """Returns (defs, annotated_decls) for one stripped file. A stack of
    open class/struct blocks supplies the qualifier for methods defined (or
    declared) in-class, so `CondVar::Wait` and `Reactor::Loop` resolve even
    though their headers spell only `Wait` / `Loop`."""
    defs = []
    decls = []  # (name, qual, offset, annotations)
    n = len(text)
    i = 0
    header_start = 0
    blocks = []  # innermost-last: class name or None per open non-func brace
    while i < n:
        c = text[i]
        if c == ";":
            stmt = text[header_start:i]
            annots = set(ANNOT_RE.findall(stmt))
            if annots:
                found = header_function_name(stmt)
                if found:
                    name, qual, rel_off = found
                    if qual is None:
                        qual = _enclosing_class(blocks)
                    decls.append((name, qual, header_start + rel_off,
                                  annots))
            header_start = i + 1
        elif c == "}":
            if blocks:
                blocks.pop()
            header_start = i + 1
        elif c == "{":
            header = text[header_start:i]
            found = header_function_name(header)
            if found:
                name, qual, rel_off = found
                if qual is None:
                    qual = _enclosing_class(blocks)
                end = match_brace(text, i)
                annots = set(ANNOT_RE.findall(header))
                defs.append(FuncDef(name, qual, rel, header_start + rel_off,
                                    i, end, annots))
                i = end
                header_start = i + 1
            else:
                m = CLASS_HEADER_RE.search(header)
                blocks.append(m.group(1).split("::")[-1] if m else None)
                header_start = i + 1
        i += 1
    return defs, decls


def _enclosing_class(blocks):
    for name in reversed(blocks):
        if name is not None:
            return name
    return None


def extract_calls(func, text):
    """Fills func.calls with (callee, offset, suppressed) from its body.
    A DSTORE_BLOCKING_OK(...) declaration suppresses every later call while
    its enclosing brace scope is still open, mirroring the runtime
    BlockingOkScope object's lifetime."""
    body = strip_lambdas(text[func.body_start:func.body_end + 1])
    base = func.body_start
    events = []  # (offset, kind, payload); kind order breaks offset ties
    for m in re.finditer(r"[{}]", body):
        events.append((m.start(), 0, m.group(0)))
    for m in OK_RE.finditer(body):
        events.append((m.start(), 1, ("ok", None)))
    for m in QCALL_RE.finditer(body):
        if m.group(2) in NOT_A_CALL:
            continue
        qual = m.group(1).rstrip(":").split("::")[-1] if m.group(1) else None
        events.append((m.start(2), 2, (qual, m.group(2))))
    events.sort(key=lambda e: (e[0], e[1]))
    depth = 0
    ok_depths = []  # brace depths at which an OK scope is active
    for offset, kind, payload in events:
        if kind == 0:
            if payload == "{":
                depth += 1
            else:
                depth -= 1
                while ok_depths and ok_depths[-1] > depth:
                    ok_depths.pop()
        elif kind == 1:
            ok_depths.append(depth)
        else:
            qual, name = payload
            func.calls.append((qual, name, base + offset, bool(ok_depths)))


def _quals_compatible(a, b):
    """Qualifier match with conservative unknowns: None (unknown) matches
    anything; known qualifiers must agree."""
    return a is None or b is None or a == b


class TextModel:
    """Whole-program model: name -> defs, plus annotation records."""

    def __init__(self):
        self.defs = {}            # name -> [FuncDef]
        self.blocking = {}        # name -> [(qual, rel, offset)]
        self.nonblocking = {}     # name -> [(qual, rel, offset)]
        self.line_index = {}      # rel -> newline offsets (for line numbers)

    def line_of(self, rel, offset):
        return bisect.bisect_right(self.line_index[rel], offset) + 1

    def add_file(self, rel, raw_text):
        text = strip_code(raw_text)
        self.line_index[rel] = [m.start() for m in re.finditer(r"\n", text)]
        defs, decls = scan_file(rel, text)
        for func in defs:
            extract_calls(func, text)
            self.defs.setdefault(func.name, []).append(func)
            self._record_annotations(func.name, func.qual, rel,
                                     func.name_off, func.annotations)
        for name, qual, offset, annots in decls:
            self._record_annotations(name, qual, rel, offset, annots)

    def _record_annotations(self, name, qual, rel, offset, annots):
        if BLOCKING in annots:
            self.blocking.setdefault(name, []).append((qual, rel, offset))
        if NONBLOCKING in annots:
            self.nonblocking.setdefault(name, []).append((qual, rel, offset))

    def blocking_record(self, hint, name):
        """The annotation record a call (hint, name) resolves to, or None."""
        for qual, rel, offset in self.blocking.get(name, []):
            if _quals_compatible(hint, qual):
                return (qual, rel, offset)
        return None

    def is_nonblocking(self, func):
        if NONBLOCKING in func.annotations:
            return True
        return any(_quals_compatible(func.qual, qual)
                   for qual, _, _ in self.nonblocking.get(func.name, []))

    def is_blocking(self, func):
        if BLOCKING in func.annotations:
            return True
        return any(_quals_compatible(func.qual, qual)
                   for qual, _, _ in self.blocking.get(func.name, []))

    def callee_defs(self, hint, name):
        """Defs a call may target. A qualifier hint filters when it matches
        at least one candidate; a hint no candidate carries (a namespace
        prefix, say) falls back to every candidate — conservative."""
        candidates = self.defs.get(name, [])
        if hint is not None:
            filtered = [d for d in candidates
                        if d.qual is not None and d.qual == hint]
            if filtered:
                return filtered
        return candidates


def analyze_text(file_texts):
    """file_texts: {relpath: source}. Returns a list of violation dicts."""
    model = TextModel()
    for rel in sorted(file_texts):
        model.add_file(rel, file_texts[rel])

    # BFS over function definitions from every nonblocking-context root.
    # Blocking-annotated defs are never traversed into: a call reaching one
    # is the violation itself (reported at the call site).
    roots = [func for funcs in model.defs.values() for func in funcs
             if model.is_nonblocking(func) and not model.is_blocking(func)]
    violations = []
    seen = set()
    parent = {}  # id(def) -> (parent def, callsite rel, callsite offset)
    visited = {id(func) for func in roots}
    queue = list(roots)
    while queue:
        func = queue.pop(0)
        for hint, callee, offset, suppressed in func.calls:
            if suppressed:
                continue
            record = model.blocking_record(hint, callee)
            if record is not None:
                key = (callee, func.rel, offset)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(_make_violation(
                    model, parent, func, callee, record, offset))
                continue
            for target in model.callee_defs(hint, callee):
                if id(target) in visited or model.is_blocking(target):
                    continue
                visited.add(id(target))
                parent[id(target)] = (func, func.rel, offset)
                queue.append(target)
    violations.sort(key=lambda v: (v["call_site"], v["callee"]))
    return violations


def _display(func):
    return "%s::%s" % (func.qual, func.name) if func.qual else func.name


def _make_violation(model, parent, caller, callee, record, offset):
    # Reconstruct the root -> ... -> caller chain for the report.
    chain = [caller]
    hops = {}
    node = caller
    while id(node) in parent:
        prev, site_rel, site_off = parent[id(node)]
        hops[_display(node)] = "%s:%d" % (
            site_rel, model.line_of(site_rel, site_off))
        chain.append(prev)
        node = prev
    chain.reverse()
    root = chain[0]
    qual, blk_rel, blk_off = record
    callee_display = "%s::%s" % (qual, callee) if qual else callee
    return {
        "root": _display(root),
        "root_site": "%s:%d" % (root.rel, model.line_of(root.rel,
                                                        root.name_off)),
        "chain": [_display(f) for f in chain],
        "hops": hops,
        "callee": callee_display,
        "callee_site": "%s:%d" % (blk_rel, model.line_of(blk_rel, blk_off)),
        "call_site": "%s:%d" % (caller.rel,
                                model.line_of(caller.rel, offset)),
    }


def print_violation(v, out=sys.stdout):
    print("dstore-blocking: blocking call reachable from reactor context",
          file=out)
    print("  root:  %s (%s) [%s]" % (v["root"], v["root_site"], NONBLOCKING),
          file=out)
    for i in range(1, len(v["chain"])):
        name = v["chain"][i]
        print("    -> %s (called at %s)" % (name, v["hops"].get(name, "?")),
              file=out)
    print("  call:  %s at %s -> %s (%s) [%s]" %
          (v["callee"], v["call_site"], v["callee"], v["callee_site"],
           BLOCKING), file=out)
    print("  fix:   move the work to the ThreadPool, defer it with "
          "Reactor::RunAfter,", file=out)
    print("         or wrap a reviewed exception in "
          "DSTORE_BLOCKING_OK(\"reason\")", file=out)


# ---------------------------------------------------------------------------
# libclang frontend (optional; auto-falls back to text when unavailable)
# ---------------------------------------------------------------------------

def _libclang_args_for(path, build_dir):
    cc_path = os.path.join(build_dir, "compile_commands.json")
    if os.path.isfile(cc_path):
        with open(cc_path, encoding="utf-8") as f:
            for entry in json.load(f):
                if os.path.realpath(entry["file"]) == os.path.realpath(path):
                    args = entry.get("arguments")
                    if args is None:
                        args = entry["command"].split()
                    # Drop compiler, -c/-o pairs, and the source file itself.
                    cleaned = []
                    skip = False
                    for a in args[1:]:
                        if skip:
                            skip = False
                            continue
                        if a in ("-c", "-o"):
                            skip = (a == "-o")
                            continue
                        if os.path.realpath(a) == os.path.realpath(path):
                            continue
                        cleaned.append(a)
                    return cleaned
    return ["-std=c++20", "-I" + os.path.join(REPO_ROOT, "src")]


def analyze_libclang(files, build_dir, unsaved=None):
    """AST-precise analysis. `files` is a list of paths; `unsaved` maps
    path -> contents for self-test sources that exist only in memory.
    Raises on any bindings/parse failure — callers fall back to text."""
    import clang.cindex as ci  # noqa: deferred, optional dependency

    if os.environ.get("DSTORE_LIBCLANG"):
        ci.Config.set_library_file(os.environ["DSTORE_LIBCLANG"])
    index = ci.Index.create()

    FUNC_KINDS = {
        ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
        ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }

    blocking = {}      # usr -> (display, "file:line")
    nonblocking = {}   # usr -> (display, "file:line")
    calls = {}         # usr -> [(callee usr, "file:line", suppressed)]
    names = {}         # usr -> display name

    def annotations_of(cursor):
        out = set()
        for child in cursor.get_children():
            if child.kind == ci.CursorKind.ANNOTATE_ATTR:
                out.add(child.spelling)
        return out

    def site(cursor):
        loc = cursor.location
        fname = loc.file.name if loc.file else "?"
        return "%s:%d" % (os.path.relpath(fname, REPO_ROOT), loc.line)

    def record_function(cursor):
        usr = cursor.get_usr()
        if not usr:
            return
        names.setdefault(usr, cursor.spelling)
        annots = annotations_of(cursor)
        if "dstore_blocking" in annots:
            blocking.setdefault(usr, (cursor.spelling, site(cursor)))
        if "dstore_nonblocking_ctx" in annots:
            nonblocking.setdefault(usr, (cursor.spelling, site(cursor)))
        if not cursor.is_definition():
            return
        out = calls.setdefault(usr, [])
        ok_offsets = []  # offsets of BlockingOkScope declarations

        def walk(node, in_lambda):
            for child in node.get_children():
                kind = child.kind
                if kind == ci.CursorKind.LAMBDA_EXPR:
                    walk(child, True)
                    continue
                if kind == ci.CursorKind.DECL_STMT:
                    for d in child.get_children():
                        if (d.kind == ci.CursorKind.VAR_DECL and
                                "BlockingOkScope" in d.type.spelling):
                            ok_offsets.append(child.extent.start.offset)
                if kind == ci.CursorKind.CALL_EXPR and not in_lambda:
                    ref = child.referenced
                    if ref is not None and ref.kind in FUNC_KINDS:
                        callee_usr = ref.get_usr()
                        if callee_usr:
                            names.setdefault(callee_usr, ref.spelling)
                            ref_annots = annotations_of(ref)
                            if "dstore_blocking" in ref_annots:
                                blocking.setdefault(
                                    callee_usr, (ref.spelling, site(ref)))
                            if "dstore_nonblocking_ctx" in ref_annots:
                                nonblocking.setdefault(
                                    callee_usr, (ref.spelling, site(ref)))
                            suppressed = any(
                                o <= child.extent.start.offset
                                for o in ok_offsets)
                            out.append((callee_usr, site(child), suppressed))
                walk(child, in_lambda)

        walk(cursor, False)

    unsaved_list = [(p, s) for p, s in (unsaved or {}).items()]
    for path in files:
        tu = index.parse(path, args=_libclang_args_for(path, build_dir),
                         unsaved_files=unsaved_list or None)
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind in FUNC_KINDS and \
                    cursor.location.file is not None:
                record_function(cursor)

    violations = []
    seen = set()
    parent = {}
    queue = [u for u in sorted(nonblocking) if u in calls]
    visited = set(queue) | set(nonblocking)
    while queue:
        current = queue.pop(0)
        for callee_usr, call_site, suppressed in calls.get(current, []):
            if suppressed:
                continue
            if callee_usr in blocking:
                key = (callee_usr, call_site)
                if key in seen:
                    continue
                seen.add(key)
                chain = [names[current]]
                node = current
                hops = {}
                while node in parent:
                    prev, prev_site = parent[node]
                    hops[names[node]] = prev_site
                    chain.append(names[prev])
                    node = prev
                chain.reverse()
                root_usr = node
                violations.append({
                    "root": names[root_usr],
                    "root_site": nonblocking[root_usr][1],
                    "chain": chain,
                    "hops": hops,
                    "callee": blocking[callee_usr][0],
                    "callee_site": blocking[callee_usr][1],
                    "call_site": call_site,
                })
            elif callee_usr in calls and callee_usr not in visited:
                visited.add(callee_usr)
                parent[callee_usr] = (current, call_site)
                queue.append(callee_usr)
    return violations


# ---------------------------------------------------------------------------
# Self-test fixtures (shared by --self-test and the auto-frontend smoke test)
# ---------------------------------------------------------------------------

SELF_TEST_SOURCE = """
#define DSTORE_BLOCKING __attribute__((annotate("dstore_blocking")))
#define DSTORE_NONBLOCKING_CTX \\
    __attribute__((annotate("dstore_nonblocking_ctx")))
struct BlockingOkScope { BlockingOkScope(const char*); ~BlockingOkScope(); };
#define DSTORE_BLOCKING_OK(reason) BlockingOkScope ok_scope(reason)

void PretendFsync() DSTORE_BLOCKING;
void PretendFsync() {}

void Helper() { PretendFsync(); }

void SuppressedHelper() {
  { DSTORE_BLOCKING_OK("reviewed: bounded and rare");
    PretendFsync(); }
  int after_scope = 0; (void)after_scope;
}

void EscapedScope() {
  { DSTORE_BLOCKING_OK("only covers this block"); }
  PretendFsync();  // OK scope closed: must be reported
}

void LoopCallback() DSTORE_NONBLOCKING_CTX;
void LoopCallback() {
  Helper();
  SuppressedHelper();
  EscapedScope();
}
"""

# Expected: Helper -> PretendFsync and EscapedScope -> PretendFsync; the
# suppressed call inside SuppressedHelper's OK scope must NOT appear.
SELF_TEST_EXPECT = 2


def run_self_test(frontend, build_dir):
    if frontend == "libclang":
        path = os.path.join(REPO_ROOT, "dstore_blocking_selftest.cc")
        violations = analyze_libclang([path], build_dir,
                                      unsaved={path: SELF_TEST_SOURCE})
    else:
        violations = analyze_text({"selftest.cc": SELF_TEST_SOURCE})
    callers = sorted(v["chain"][-1] for v in violations)
    ok = (len(violations) == SELF_TEST_EXPECT and
          callers == ["EscapedScope", "Helper"] and
          all(v["callee"] == "PretendFsync" for v in violations))
    return ok, violations


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for root, dirs, entries in os.walk(p):
            dirs[:] = [d for d in dirs if not d.startswith(("build", "."))]
            for name in entries:
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(root, name))
    return sorted(files)


def pick_frontend(requested, build_dir):
    """Resolves 'auto' by smoke-testing libclang; returns (frontend, note)."""
    if requested != "auto":
        return requested, None
    try:
        ok, _ = run_self_test("libclang", build_dir)
        if ok:
            return "libclang", None
        return "text", "libclang bindings present but failed the smoke test"
    except Exception as e:  # ImportError, LibclangError, parse failures
        return "text", "libclang unavailable (%s: %s)" % (
            type(e).__name__, str(e).split("\n")[0][:100])


def main(argv):
    parser = argparse.ArgumentParser(
        prog="dstore_blocking.py",
        description="Static blocking-call analysis for reactor contexts.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--frontend", choices=["auto", "libclang", "text"],
                        default="auto")
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT,
                                                            "build"),
                        help="build dir holding compile_commands.json "
                             "(libclang frontend only)")
    parser.add_argument("--expect-violations", type=int, default=None,
                        metavar="N",
                        help="exit 0 iff exactly N violations are found "
                             "(fixture gate mode)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded analyzer self-test and exit")
    args = parser.parse_args(argv)

    frontend, note = pick_frontend(args.frontend, args.build_dir)
    if note:
        print("dstore_blocking: note: %s; using text frontend" % note,
              file=sys.stderr)

    if args.self_test:
        ok, violations = run_self_test(frontend, args.build_dir)
        if not ok:
            print("dstore_blocking: SELF-TEST FAILED (%s frontend): "
                  "expected %d violations (Helper, EscapedScope), got:" %
                  (frontend, SELF_TEST_EXPECT), file=sys.stderr)
            for v in violations:
                print_violation(v, out=sys.stderr)
            return 1
        print("dstore_blocking: self-test passed (%s frontend, %d/%d "
              "expected violations)" % (frontend, len(violations),
                                        SELF_TEST_EXPECT))
        return 0

    paths = args.paths or [os.path.join(REPO_ROOT, d) for d in DEFAULT_DIRS]
    files = collect_files(paths)
    if not files:
        print("dstore_blocking: no C++ files under %s" % paths,
              file=sys.stderr)
        return 2

    if frontend == "libclang":
        try:
            # Headers are reached through the .cc files that include them.
            tu_files = [f for f in files if f.endswith((".cc", ".cpp"))] \
                or files
            violations = analyze_libclang(tu_files, args.build_dir)
        except Exception as e:
            print("dstore_blocking: libclang frontend failed (%s); "
                  "falling back to text" % e, file=sys.stderr)
            frontend = "text"
    if frontend == "text":
        file_texts = {}
        for path in files:
            rel = os.path.relpath(path, REPO_ROOT)
            with open(path, encoding="utf-8", errors="replace") as f:
                file_texts[rel] = f.read()
        violations = analyze_text(file_texts)

    for v in violations:
        print_violation(v)

    if args.expect_violations is not None:
        if len(violations) == args.expect_violations:
            print("dstore_blocking: gate OK — found the %d expected "
                  "violation(s) (%s frontend)" %
                  (len(violations), frontend))
            return 0
        print("dstore_blocking: GATE FAILED TO BITE — expected %d "
              "violation(s), found %d (%s frontend)" %
              (args.expect_violations, len(violations), frontend),
              file=sys.stderr)
        return 1

    if violations:
        print("dstore_blocking: %d violation(s) (%s frontend)" %
              (len(violations), frontend), file=sys.stderr)
        return 1
    print("dstore_blocking: clean — no blocking calls reachable from "
          "reactor contexts (%s frontend, %d files)" %
          (frontend, len(files)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
