#!/usr/bin/env python3
"""Repo lint gate for dstore. Run from anywhere:

    python3 tools/dstore_lint.py [--list-rules] [paths...]

With no paths, lints src/, tests/, bench/, examples/, and tools/. Exits
non-zero when any finding is reported, printing one finding per line in
the familiar file:line: message format.

Rules (suppress a single line with a trailing `// NOLINT(dstore-<rule>)`
or a bare `// NOLINT` comment):

  raw-sync          std::mutex / std::lock_guard / std::condition_variable
                    and friends outside src/common/sync.h|.cc. Everything
                    else must use the annotated wrappers in common/sync.h so
                    clang -Wthread-safety and the runtime lock-order
                    validator see every acquisition.
  naked-new         `x = new T` / `return new T` outside a smart-pointer
                    wrapper. `std::unique_ptr<T>(new T)` (private ctors)
                    and `static T* x = new T` (leaked singletons) are
                    allowed idioms.
  naked-delete      `delete expr;` statements. Deleted functions
                    (`= delete`) are of course fine.
  include-guard     Headers must open with a matching #ifndef/#define
                    include guard and close with #endif.
  discarded-status  A known fallible call (Put, Delete, AddShard, ...)
                    used as a bare statement. Write `(void)call(...)` or
                    `call(...).ok()` for an intentional discard; the
                    [[nodiscard]] attribute on Status/StatusOr makes the
                    compiler flag the rest.
  raw-sleep         ::sleep / usleep / std::this_thread::sleep_for|until
                    outside src/common/clock.cc. Everything else must go
                    through Clock::SleepFor, which is DSTORE_BLOCKING-
                    annotated — a raw sleep is invisible to the reactor
                    blocking-context check and to SimulatedClock tests.

`--self-test` runs the embedded rule fixtures (each rule must fire on its
positive snippet and stay quiet on its negative/suppressed one) and exits.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_DIRS = ["src", "tests", "bench", "examples", "tools"]
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# The one place raw standard-library primitives are allowed: the annotated
# wrappers themselves (sync.cc's validator graph also needs an
# uninstrumented mutex).
RAW_SYNC_ALLOWED = {
    os.path.join("src", "common", "sync.h"),
    os.path.join("src", "common", "sync.cc"),
}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)

# The one place a raw sleep is the implementation, not a bug: the real
# clock. (The annotated Clock::SleepFor wrapper lives there.)
RAW_SLEEP_ALLOWED = {
    os.path.join("src", "common", "clock.cc"),
}

RAW_SLEEP_RE = re.compile(
    r"this_thread::sleep_(for|until)\b|(?<![\w.])(::)?u?sleep\s*\(")

NAKED_NEW_RE = re.compile(r"(=|return)\s+new\b")
SMART_WRAP_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<")
NAKED_DELETE_RE = re.compile(r"^\s*delete(\[\])?\s+[^;=]+;")

# Status/StatusOr-returning methods whose result must not be silently
# dropped. Kept to names that are unambiguous in this codebase (AddShard /
# RemoveShard are omitted: HashRing has void methods of the same name, and
# [[nodiscard]] already catches discards of the Status-returning ones).
FALLIBLE_METHODS = (
    "Put|PutString|PutWithTtl|MultiPut|Delete|RegisterStore|"
    "UnregisterStore|Checkpoint|SaveTo|LoadFrom|AppendWal|FlushWal"
)
DISCARDED_STATUS_RE = re.compile(
    r"^\s*(?P<recv>[A-Za-z_][\w]*)(\.|->)(" + FALLIBLE_METHODS +
    r")\(.*\);\s*(//.*)?$"
)
# MultiStoreTransaction::Put/Delete stage writes and return void; the
# conventional receiver names identify them.
VOID_STAGING_RECEIVERS = {"txn", "transaction"}

# A significant line ending in one of these continues onto the next line
# (assignment RHS, open argument list, binary operator, return expression),
# so the next line is not a statement of its own.
CONTINUATION_END_RE = re.compile(r"([=+\-*/%<>&|^?,(]|::|\breturn)\s*$")

NOLINT_RE = re.compile(r"//\s*NOLINT(\(([^)]*)\))?")

COMMENT_LINE_RE = re.compile(r"^\s*(//|\*)")


def suppressed(line, rule):
    m = NOLINT_RE.search(line)
    if not m:
        return False
    rules = m.group(2)
    return rules is None or ("dstore-" + rule) in rules


def strip_strings(line):
    """Blanks out string and char literals so their contents can't match."""
    return re.sub(r'"(\\.|[^"\\])*"|\'(\\.|[^\'\\])*\'', '""', line)


def lint_file(path, rel, findings):
    with open(path, encoding="utf-8", errors="replace") as f:
        lint_text(rel, f.read(), findings)


def lint_text(rel, text, findings):
    lines = text.split("\n")
    is_header = rel.endswith((".h", ".hpp"))
    if is_header:
        lint_include_guard(rel, lines, findings)

    raw_sync_ok = rel in RAW_SYNC_ALLOWED
    raw_sleep_ok = rel in RAW_SLEEP_ALLOWED
    depth = 0  # unbalanced-paren depth from preceding lines
    prev_continues = False  # previous line left a statement unfinished
    for i, raw in enumerate(lines, start=1):
        if COMMENT_LINE_RE.match(raw):
            continue
        line = strip_strings(raw)
        # Statement-level rules only fire at paren depth 0 and when the
        # previous line completed its statement, so continuation lines of a
        # multi-line call or assignment RHS are not mistaken for statements.
        at_statement_start = depth == 0 and not prev_continues
        depth = max(0, depth + line.count("(") - line.count(")"))
        code = NOLINT_RE.sub("", line).split("//")[0].rstrip()
        if code:
            prev_continues = bool(CONTINUATION_END_RE.search(code))

        if not raw_sync_ok and RAW_SYNC_RE.search(line):
            if not suppressed(raw, "raw-sync"):
                findings.append(
                    (rel, i, "raw-sync: use the annotated wrappers in "
                     "common/sync.h instead of raw std synchronization"))

        if not raw_sleep_ok and RAW_SLEEP_RE.search(line):
            if not suppressed(raw, "raw-sleep"):
                findings.append(
                    (rel, i, "raw-sleep: use Clock::SleepFor (annotated "
                     "DSTORE_BLOCKING, simulated-clock aware) instead of a "
                     "raw sleep"))

        if NAKED_NEW_RE.search(line) and not SMART_WRAP_RE.search(line) \
                and "static" not in line:
            if not suppressed(raw, "naked-new"):
                findings.append(
                    (rel, i, "naked-new: wrap in std::make_unique / "
                     "std::unique_ptr (or a static leaked singleton)"))

        if NAKED_DELETE_RE.match(line):
            if not suppressed(raw, "naked-delete"):
                findings.append(
                    (rel, i, "naked-delete: owning pointers should be "
                     "smart pointers"))

        m = DISCARDED_STATUS_RE.match(line) if at_statement_start else None
        if m and ".ok()" not in line \
                and m.group("recv") not in VOID_STAGING_RECEIVERS:
            if not suppressed(raw, "discarded-status"):
                findings.append(
                    (rel, i, "discarded-status: result of a fallible call "
                     "is ignored; use (void)call(...) or check .ok()"))


def lint_include_guard(rel, lines, findings):
    ifndef = None
    for i, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        m = re.match(r"#ifndef\s+(\w+)", stripped)
        if m:
            ifndef = m.group(1)
            # The guard's #define must follow immediately.
            if i + 1 < len(lines):
                d = re.match(r"#define\s+(\w+)", lines[i + 1].strip())
                if d and d.group(1) == ifndef:
                    return
            findings.append(
                (rel, i + 2, "include-guard: #ifndef %s not followed by "
                 "matching #define" % ifndef))
            return
        if stripped == "#pragma once":
            findings.append(
                (rel, i + 1, "include-guard: use an #ifndef guard, not "
                 "#pragma once"))
            return
        break
    findings.append((rel, 1, "include-guard: header has no include guard"))


# Each fixture: (filename, source, rule names that must fire — and no
# others). Exercises every rule's positive, negative, and NOLINT
# suppression path.
SELF_TEST_FIXTURES = [
    ("fx_raw_sync.cc", "std::mutex mu;\n", ["raw-sync"]),
    ("fx_raw_sync_ok.cc",
     "std::mutex mu;  // NOLINT(dstore-raw-sync)\n", []),
    ("fx_raw_sleep.cc",
     "void F() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n"
     "void G() { usleep(100); }\n"
     "void H() { ::sleep(1); }\n",
     ["raw-sleep", "raw-sleep", "raw-sleep"]),
    ("fx_raw_sleep_ok.cc",
     "void F() { clock->SleepFor(1000); }\n"
     "void G() { usleep(100); }  // NOLINT(dstore-raw-sleep)\n", []),
    ("fx_naked_new.cc", "void F() { auto* p = new Widget(); }\n",
     ["naked-new"]),
    ("fx_naked_new_ok.cc",
     "void F() { auto p = std::unique_ptr<W>(new W()); }\n"
     "void G() { static W* w = new W(); }\n", []),
    ("fx_naked_delete.cc", "void F(W* p) {\n  delete p;\n}\n",
     ["naked-delete"]),
    ("fx_guard.h", "int x;\n", ["include-guard"]),
    ("fx_guard_ok.h",
     "#ifndef FX_GUARD_OK_H_\n#define FX_GUARD_OK_H_\n#endif\n", []),
    ("fx_discard.cc", "void F() {\n  store->Put(key, value);\n}\n",
     ["discarded-status"]),
    ("fx_discard_ok.cc",
     "void F() {\n  (void)store->Put(key, value);\n"
     "  if (!store->Put(key, value).ok()) return;\n}\n", []),
]


def run_self_test():
    failures = []
    for name, source, expected in SELF_TEST_FIXTURES:
        findings = []
        lint_text(name, source, findings)
        got = sorted(f[2].split(":")[0] for f in findings)
        want = sorted(expected)
        if got != want:
            failures.append("%s: expected rules %s, got %s" %
                            (name, want or "none", got or "none"))
    if failures:
        print("dstore_lint: SELF-TEST FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("dstore_lint: self-test passed (%d fixtures)" %
          len(SELF_TEST_FIXTURES))
    return 0


def collect_files(argv):
    paths = argv or [os.path.join(REPO_ROOT, d) for d in DEFAULT_DIRS]
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for root, dirs, names in os.walk(p):
            dirs[:] = [d for d in dirs if not d.startswith(("build", "."))]
            for name in names:
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(root, name))
    return sorted(files)


def main(argv):
    if "--list-rules" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return run_self_test()
    findings = []
    for path in collect_files([a for a in argv if not a.startswith("-")]):
        rel = os.path.relpath(path, REPO_ROOT)
        lint_file(path, rel, findings)
    for rel, line, message in findings:
        print("%s:%d: %s" % (rel, line, message))
    if findings:
        print("dstore_lint: %d finding(s)" % len(findings), file=sys.stderr)
        return 1
    print("dstore_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
