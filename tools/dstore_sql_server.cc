// Standalone SQL server: the embedded relational engine behind the framed
// wire protocol (the MySQL-like deployment shape — a separate process
// reached over a local socket).
//
//   dstore_sql_server [--port=N] [--db=PATH] [--no-fsync] [--metrics-port=N]
//
// An empty --db keeps the database in memory (no durability). Prints
// "LISTENING <port>" on stdout once ready. --metrics-port starts an HTTP
// sidecar serving GET /metrics, /metrics.json, /traces, and /healthz.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <semaphore.h>

#include "net/obs_endpoint.h"
#include "store/sql_server.h"

namespace {
sem_t g_shutdown;
void HandleSignal(int) { sem_post(&g_shutdown); }
}  // namespace

int main(int argc, char** argv) {
  using namespace dstore;

  uint16_t port = 3307;
  int metrics_port = -1;
  std::string db_path;
  sql::Database::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port = std::atoi(arg.c_str() + 15);
    } else if (arg.rfind("--db=", 0) == 0) {
      db_path = arg.substr(5);
    } else if (arg == "--no-fsync") {
      options.sync_commits = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port=N] [--db=PATH] [--no-fsync] "
                   "[--metrics-port=N]\n",
                   argv[0]);
      return 2;
    }
  }

  sem_init(&g_shutdown, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  auto server = SqlServer::Start(db_path, port, options);
  if (!server.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ObsHttpServer> metrics_server;
  if (metrics_port >= 0) {
    auto obs = ObsHttpServer::Start(static_cast<uint16_t>(metrics_port));
    if (!obs.ok()) {
      std::fprintf(stderr, "metrics endpoint failed: %s\n",
                   obs.status().ToString().c_str());
      return 1;
    }
    metrics_server = *std::move(obs);
    std::fprintf(stderr, "metrics on http://127.0.0.1:%u/metrics\n",
                 metrics_server->port());
  }
  std::printf("LISTENING %u\n", (*server)->port());
  std::fflush(stdout);

  while (sem_wait(&g_shutdown) != 0 && errno == EINTR) {
  }
  (*server)->Stop();
  return 0;
}
